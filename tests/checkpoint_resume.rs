//! Crash-safe resume contract: a run killed at a minibatch boundary and
//! resumed from its checkpoint produces the same curve, parameters, best
//! placement and final measurement as the uninterrupted run with the same
//! seed, for every algorithm and worker count. Discrete outcomes (placements,
//! sample counts) must match exactly; float curves and parameters are compared
//! under the documented ULP budgets in `tests/common` (observed distance
//! today: 0 — the budget only licenses mathematically neutral float
//! reorderings inside the update path, not different results).
//!
//! The "kill" is simulated by training only the first *k* minibatches with
//! auto-checkpointing on: the checkpoint written at minibatch *k* is exactly
//! what a `kill -9` after that save would leave behind (the writes are atomic,
//! so nothing torn exists), and the resumed process rebuilds its agent and
//! environment from scratch exactly like a restarted binary would.

use eagle::core::{
    load_checkpoint, AgentScale, Algo, CheckpointError, EagleAgent, GraphSource, TrainResult,
    Trainer, TrainerConfig, CHECKPOINT_FILE,
};
use eagle::devsim::{Machine, MeasureConfig};
use eagle::opgraph::{builders, GraphGenConfig};
use eagle::tensor::Params;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

mod common;
use common::{assert_f32_close, assert_f64_close, assert_opt_f64_close, CURVE_ULPS, PARAM_ULPS};

const MINIBATCH: usize = 10;

fn tiny_graph() -> (eagle::opgraph::OpGraph, Machine) {
    let g = builders::try_gnmt(&builders::GnmtConfig {
        batch: 2,
        hidden: 4,
        layers: 2,
        seq_len: 3,
        vocab: 20,
    })
    .expect("valid GNMT config");
    (g, Machine::paper_machine())
}

fn tiny_trainer(cfg: TrainerConfig) -> (eagle::opgraph::OpGraph, Machine, Trainer) {
    let (g, m) = tiny_graph();
    let trainer = Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
        .config(cfg)
        .measure(MeasureConfig::default()) // noisy protocol: the RNG position matters
        .env_seed(17)
        .build()
        .expect("valid tiny trainer config");
    (g, m, trainer)
}

fn config(algo: Algo, workers: usize, total: usize) -> TrainerConfig {
    let mut cfg = TrainerConfig::paper(algo, total);
    cfg.ce_interval = 20; // exercise CE inside short runs
    cfg.workers = workers;
    cfg
}

/// Fresh agent + params, deterministic in the seed (a restarted process
/// rebuilds exactly this before restoring the checkpoint over it).
fn build_agent(g: &eagle::opgraph::OpGraph, m: &Machine) -> (Params, EagleAgent) {
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let agent = EagleAgent::new(&mut params, g, m, AgentScale::tiny(), &mut rng);
    (params, agent)
}

fn straight_run(algo: Algo, workers: usize, total: usize) -> (TrainResult, Params) {
    let (g, m, trainer) = tiny_trainer(config(algo, workers, total));
    let (mut params, agent) = build_agent(&g, &m);
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    (result, params)
}

/// Trains `kill_after` minibatches with checkpointing on, then resumes from
/// the checkpoint in a fresh process image (new env, new agent, new params).
fn killed_and_resumed(
    algo: Algo,
    workers: usize,
    kill_after: usize,
    total: usize,
    dir: &std::path::Path,
) -> (TrainResult, Params) {
    std::fs::remove_dir_all(dir).ok();
    // First life: dies (stops) right after the checkpoint at minibatch `kill_after`.
    {
        let mut cfg = config(algo, workers, kill_after * MINIBATCH);
        cfg.checkpoint_dir = Some(dir.to_path_buf());
        cfg.checkpoint_every = Some(1);
        let (g, m, trainer) = tiny_trainer(cfg);
        let (mut params, agent) = build_agent(&g, &m);
        trainer.train(&agent, &mut params).expect("first life trains");
    }
    // Second life: a brand-new process image resumes from disk.
    let state = load_checkpoint(dir.join(CHECKPOINT_FILE)).expect("checkpoint readable");
    assert_eq!(state.samples as usize, kill_after * MINIBATCH);
    let (g, m, trainer) = tiny_trainer(config(algo, workers, total));
    let (mut params, agent) = build_agent(&g, &m);
    let result = trainer.train_from(&agent, &mut params, state).expect("resume accepted");
    (result, params)
}

/// Discrete outcomes match exactly; floats match within the documented
/// ULP budgets ([`CURVE_ULPS`] for curve values, [`PARAM_ULPS`] for trained
/// parameters).
fn assert_run_matches(a: &(TrainResult, Params), b: &(TrainResult, Params), ctx: &str) {
    let ((ra, pa), (rb, pb)) = (a, b);
    assert_eq!(ra.samples, rb.samples, "{ctx}: samples");
    assert_eq!(ra.num_invalid, rb.num_invalid, "{ctx}: num_invalid");
    assert_eq!(ra.curve.points.len(), rb.curve.points.len(), "{ctx}: curve length");
    for (i, (x, y)) in ra.curve.points.iter().zip(&rb.curve.points).enumerate() {
        assert_eq!(x.sample, y.sample, "{ctx}: point {i} sample");
        assert_f64_close(
            x.wall_clock,
            y.wall_clock,
            CURVE_ULPS,
            &format!("{ctx}: point {i} wall_clock"),
        );
        assert_opt_f64_close(
            x.measured,
            y.measured,
            CURVE_ULPS,
            &format!("{ctx}: point {i} measured"),
        );
        assert_opt_f64_close(
            x.best_so_far,
            y.best_so_far,
            CURVE_ULPS,
            &format!("{ctx}: point {i} best_so_far"),
        );
    }
    assert_eq!(ra.best_placement, rb.best_placement, "{ctx}: best placement");
    assert_opt_f64_close(
        ra.final_step_time,
        rb.final_step_time,
        CURVE_ULPS,
        &format!("{ctx}: final step time"),
    );
    assert_eq!(pa.len(), pb.len(), "{ctx}: param tensor count");
    for id in pa.ids() {
        let (ta, tb) = (pa.get(id), pb.get(id));
        assert_eq!(ta.shape(), tb.shape(), "{ctx}: shape of {}", pa.name(id));
        for (j, (va, vb)) in ta.data().iter().zip(tb.data()).enumerate() {
            assert_f32_close(*va, *vb, PARAM_ULPS, &format!("{ctx}: param {}[{j}]", pa.name(id)));
        }
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join("eagle-resume-tests").join(name)
}

#[test]
fn kill_and_resume_is_bit_identical_for_every_algo_and_worker_count() {
    const TOTAL: usize = 60;
    const KILL_AFTER: usize = 3; // of 6 minibatches
    for algo in [Algo::Reinforce, Algo::Ppo, Algo::PpoCe] {
        for workers in [1usize, 0] {
            let ctx = format!("{algo:?}/workers={workers}");
            let dir = tmp(&format!("{algo:?}-w{workers}").to_lowercase());
            let straight = straight_run(algo, workers, TOTAL);
            let resumed = killed_and_resumed(algo, workers, KILL_AFTER, TOTAL, &dir);
            assert_run_matches(&straight, &resumed, &ctx);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn corrupt_checkpoint_fails_typed_and_fresh_file_survives_interrupted_save() {
    let dir = tmp("corrupt");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(Algo::Ppo, 1, 20);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = Some(1);
    let (g, m, trainer) = tiny_trainer(cfg);
    let (mut params, agent) = build_agent(&g, &m);
    trainer.train(&agent, &mut params).expect("training run succeeds");

    let path = dir.join(CHECKPOINT_FILE);
    let good = std::fs::read(&path).unwrap();
    // Truncate mid-payload, as a torn non-atomic write would.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    // No stray temp files from the atomic-writer protocol.
    let stray: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "temp litter: {stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Resume is exact no matter *which* minibatch boundary the run died at.
    #[test]
    fn resume_at_any_minibatch_boundary_is_exact(kill_after in 1usize..6) {
        const TOTAL: usize = 60;
        let dir = tmp(&format!("boundary-{kill_after}"));
        let straight = straight_run(Algo::PpoCe, 0, TOTAL);
        let resumed = killed_and_resumed(Algo::PpoCe, 0, kill_after, TOTAL, &dir);
        assert_run_matches(&straight, &resumed, &format!("boundary {kill_after}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Multi-graph trainer over a tiny GraphGen distribution with a held-out
/// graph and probes on — the full generalist checkpoint surface (GraphSource
/// RNG position, per-graph environment pool, retired snapshot, probe points).
fn multi_trainer(cfg: TrainerConfig) -> (eagle::opgraph::OpGraph, Machine, Trainer) {
    let m = Machine::paper_machine();
    let source = GraphSource::generated(GraphGenConfig::with_target(48), 99)
        .expect("valid generated source");
    let seed_graph = source.build(&source.holdout_origins(1)[0]);
    let trainer = Trainer::builder(source, m.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(17)
        .holdout(1)
        .probe_every(2)
        .probe_candidates(2)
        .build()
        .expect("valid multi-graph trainer config");
    (seed_graph, m, trainer)
}

fn multi_straight_run(total: usize) -> (TrainResult, Params) {
    let (g, m, trainer) = multi_trainer(config(Algo::Ppo, 1, total));
    let (mut params, agent) = build_agent(&g, &m);
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    (result, params)
}

fn multi_killed_and_resumed(
    kill_after: usize,
    total: usize,
    dir: &std::path::Path,
) -> (TrainResult, Params) {
    std::fs::remove_dir_all(dir).ok();
    {
        let mut cfg = config(Algo::Ppo, 1, kill_after * MINIBATCH);
        cfg.checkpoint_dir = Some(dir.to_path_buf());
        cfg.checkpoint_every = Some(1);
        let (g, m, trainer) = multi_trainer(cfg);
        let (mut params, agent) = build_agent(&g, &m);
        trainer.train(&agent, &mut params).expect("first life trains");
    }
    let state = load_checkpoint(dir.join(CHECKPOINT_FILE)).expect("checkpoint readable");
    assert_eq!(state.samples as usize, kill_after * MINIBATCH);
    assert!(!state.entries.is_empty(), "multi-graph checkpoint carries the env pool");
    let (g, m, trainer) = multi_trainer(config(Algo::Ppo, 1, total));
    let (mut params, agent) = build_agent(&g, &m);
    let result = trainer.train_from(&agent, &mut params, state).expect("resume accepted");
    (result, params)
}

#[test]
fn multi_graph_kill_and_resume_is_bit_identical() {
    const TOTAL: usize = 60;
    for kill_after in [1usize, 3, 5] {
        let dir = tmp(&format!("multi-{kill_after}"));
        let straight = multi_straight_run(TOTAL);
        let resumed = multi_killed_and_resumed(kill_after, TOTAL, &dir);
        let ctx = format!("multi-graph boundary {kill_after}");
        assert_run_matches(&straight, &resumed, &ctx);
        // Zero-shot probe points must replay identically through the resume:
        // the probe RNG is derived from (config seed, minibatch index), never
        // from training state lost in the kill.
        assert_eq!(straight.0.curve.probes, resumed.0.curve.probes, "{ctx}: probes");
        assert!(!straight.0.curve.probes.is_empty(), "{ctx}: probes were requested");
        // The pool itself restores: same graphs drawn, same per-graph counts.
        let names = |r: &TrainResult| {
            r.graphs.iter().map(|g| (g.name.clone(), g.samples)).collect::<Vec<_>>()
        };
        assert_eq!(names(&straight.0), names(&resumed.0), "{ctx}: graph summaries");
        std::fs::remove_dir_all(&dir).ok();
    }
}
