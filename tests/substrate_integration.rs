//! Integration tests across the substrate crates: graphs -> features -> partitions
//! -> placements -> simulation, all through the public umbrella API.

use eagle::devsim::{Benchmark, DeviceId, Machine, Placement, SimOutcome};
use eagle::opgraph::{features, OpGraph};
use eagle::partition::{
    fluid::FluidCommunities, metis_like::MetisLike, metrics, Partitioner, WeightedGraph,
};

fn all_graphs() -> Vec<OpGraph> {
    let machine = Machine::paper_machine();
    Benchmark::ALL.iter().map(|b| b.graph_for(&machine)).collect()
}

#[test]
fn features_cover_every_benchmark_graph() {
    for g in all_graphs() {
        let f = features::node_features(&g);
        assert_eq!(f.len(), g.len());
        for row in &f {
            assert_eq!(row.len(), features::FEATURE_DIM);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn heuristic_partitions_beat_random_cut_on_benchmarks() {
    use rand::{Rng, SeedableRng};
    let k = 16;
    for g in all_graphs() {
        let w = WeightedGraph::from_op_graph(&g);
        let metis = MetisLike::default().partition(&g, k);
        let fluid = FluidCommunities::default().partition(&g, k);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let random: Vec<usize> = (0..g.len()).map(|_| rng.gen_range(0..k)).collect();
        let (cm, cf, cr) = (
            metrics::edge_cut(&w, &metis),
            metrics::edge_cut(&w, &fluid),
            metrics::edge_cut(&w, &random),
        );
        assert!(cm < cr, "{}: METIS {cm} !< random {cr}", g.model_name);
        assert!(cf < cr, "{}: fluid {cf} !< random {cr}", g.model_name);
    }
}

#[test]
fn partition_striping_produces_valid_placements_for_large_models() {
    // Grouping + round-robin striping must dodge OOM for GNMT and BERT: the whole
    // point of grouping is to make the memory spread controllable.
    let machine = Machine::paper_machine();
    for b in [Benchmark::Gnmt, Benchmark::BertBase] {
        let g = b.graph_for(&machine);
        let k = 32;
        let assign = MetisLike::default().partition(&g, k);
        let gpus = machine.gpu_ids();
        let devices: Vec<DeviceId> = (0..k).map(|gi| gpus[gi % gpus.len()]).collect();
        let placement = Placement::from_groups(&assign, &devices);
        match eagle::devsim::simulate(&g, &machine, &placement) {
            SimOutcome::Valid(stats) => assert!(stats.step_time > 0.0),
            SimOutcome::Oom { device, required, capacity } => panic!(
                "{}: striped METIS grouping should fit, but {device:?} needs {required} of {capacity}",
                b.name()
            ),
        }
    }
}

#[test]
fn graph_json_roundtrip_preserves_simulation() {
    let machine = Machine::paper_machine();
    let g = Benchmark::InceptionV3.graph_for(&machine);
    let restored = OpGraph::from_json(&g.to_json()).expect("roundtrip");
    let p = eagle::devsim::predefined::single_gpu(&g, &machine);
    let t1 = eagle::devsim::simulate(&g, &machine, &p).step_time().unwrap();
    let t2 = eagle::devsim::simulate(&restored, &machine, &p).step_time().unwrap();
    assert_eq!(t1, t2, "serialization must not change simulated behaviour");
}

#[test]
fn group_embeddings_work_on_partitioned_benchmarks() {
    let machine = Machine::paper_machine();
    let g = Benchmark::Gnmt.graph_for(&machine);
    let k = 24;
    let assign = MetisLike::default().partition(&g, k);
    let emb = eagle::nn::embedding::group_features(&g, &assign, k);
    assert_eq!(emb.shape(), (k, eagle::nn::embedding::group_feature_dim(k)));
    assert!(emb.all_finite());
    // Non-empty groups must have non-zero rows.
    let used = metrics::used_groups(&assign, k);
    let nonzero_rows = (0..k).filter(|&r| emb.row(r).iter().any(|&v| v != 0.0)).count();
    assert!(nonzero_rows >= used);
}

#[test]
fn smaller_machines_are_usable_end_to_end() {
    // The machine model is not hard-coded to 4 GPUs: a 2-GPU machine works, and the
    // BERT graph (~32 GiB) cannot fit its 2x16 GiB even when split evenly.
    let machine = Machine::small_machine();
    assert_eq!(machine.gpu_ids().len(), 2);
    let g = Benchmark::BertBase.raw_graph();
    let gpus = machine.gpu_ids();
    let half = g.len() / 2;
    let devices: Vec<DeviceId> =
        (0..g.len()).map(|i| if i < half { gpus[0] } else { gpus[1] }).collect();
    match eagle::devsim::simulate(&g, &machine, &Placement::new(devices)) {
        SimOutcome::Oom { .. } => {}
        SimOutcome::Valid(_) => panic!("~32 GiB cannot fit 2x16 GiB"),
    }
    // GNMT (~17 GiB), by contrast, fits a 2-GPU split once balanced by groups.
    let gnmt = Benchmark::Gnmt.raw_graph();
    let assign = MetisLike::default().partition(&gnmt, 16);
    let gd: Vec<DeviceId> = (0..16).map(|gi| gpus[gi % 2]).collect();
    assert!(eagle::devsim::simulate(&gnmt, &machine, &Placement::from_groups(&assign, &gd))
        .step_time()
        .is_some());
}
