//! The batched policy API's central contract: `sample_batch`, `score_batch`
//! and `decode_batch` are *bit-identical* to the per-episode methods for every
//! agent, batch size, and seed — actions, log-probabilities, entropies,
//! auxiliary losses, decoded placements, and accumulated gradients all match
//! exactly. On top of the per-call equivalence, a full training run through
//! the batched trainer must stay identical across worker counts and
//! checkpoint resumes (discrete outcomes exactly, curve floats within the
//! documented ULP budgets in `tests/common`).
//!
//! The *single-backward* update path (sum per-episode losses with `add_n`,
//! traverse the shared tape once) is a genuine float reordering relative to
//! the per-episode backward loop, so its gradients are compared under the
//! mixed absolute/relative tolerance `assert_grad_close` rather than
//! bitwise — see `tests/common` for the budget rationale.

use eagle::core::{
    AgentScale, Algo, EagleAgent, FixedGroupAgent, GraphSource, HpAgent, PlacementAgent,
    PlacerKind, Trainer, TrainerConfig, CHECKPOINT_FILE,
};
use eagle::devsim::{Machine, MeasureConfig};
use eagle::opgraph::{builders, OpGraph};
use eagle::rl::fork_streams;
use eagle::tensor::{Grads, Params};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

mod common;
use common::{assert_curves_close, assert_grad_close, assert_opt_f64_close, CURVE_ULPS};

fn tiny_graph() -> OpGraph {
    builders::try_gnmt(&builders::GnmtConfig {
        batch: 2,
        hidden: 4,
        layers: 2,
        seq_len: 3,
        vocab: 20,
    })
    .expect("valid GNMT config")
}

/// Asserts the three batched methods reproduce the per-episode methods
/// bit-for-bit for one agent at one batch size.
fn assert_batched_matches_serial(
    agent: &impl PlacementAgent,
    params: &Params,
    bsz: usize,
    seed: u64,
) {
    // --- sample: a serial per-episode loop over one master RNG...
    let mut serial_rng = ChaCha8Rng::seed_from_u64(seed);
    let serial: Vec<(Vec<usize>, f32)> =
        (0..bsz).map(|_| agent.sample(params, &mut serial_rng)).collect();

    // ...versus one batched call over forked per-episode streams.
    let mut master = ChaCha8Rng::seed_from_u64(seed);
    let mut streams = fork_streams(&mut master, agent.rng_draws_per_sample(), bsz);
    let mut refs: Vec<&mut dyn RngCore> =
        streams.iter_mut().map(|r| r as &mut dyn RngCore).collect();
    let batched = agent.sample_batch(params, &mut refs);

    assert_eq!(batched.len(), bsz);
    for (b, ((sa, slp), (ba, blp))) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(sa, ba, "episode {b}: actions diverge");
        assert_eq!(slp.to_bits(), blp.to_bits(), "episode {b}: log-prob diverges");
    }
    // The master RNG must end where the serial loop left its RNG, so
    // checkpointed RNG accounting is oblivious to batching.
    assert_eq!(master.next_u32(), serial_rng.next_u32(), "master RNG position diverges");

    // --- decode
    let actions: Vec<Vec<usize>> = batched.into_iter().map(|(a, _)| a).collect();
    let placements = agent.decode_batch(params, &actions);
    assert_eq!(placements.len(), bsz);
    for (a, p) in actions.iter().zip(&placements) {
        assert_eq!(agent.decode(params, a), *p, "decode_batch diverges from decode");
    }

    // --- score: per-episode heads on the shared tape...
    let mut h = agent.score_batch(params, &actions);
    assert_eq!(h.episodes.len(), bsz);
    for (a, ep) in actions.iter().zip(h.episodes.clone()) {
        let ref_h = agent.score(params, a);
        assert_eq!(
            h.tape.value(ep.log_prob).item().to_bits(),
            ref_h.tape.value(ref_h.log_prob).item().to_bits(),
            "scored log-prob diverges"
        );
        assert_eq!(
            h.tape.value(ep.entropy).item().to_bits(),
            ref_h.tape.value(ref_h.entropy).item().to_bits(),
            "scored entropy diverges"
        );
        match (ep.aux_loss, ref_h.aux_loss) {
            (Some(b), Some(s)) => assert_eq!(
                h.tape.value(b).item().to_bits(),
                ref_h.tape.value(s).item().to_bits(),
                "aux loss diverges"
            ),
            (None, None) => {}
            _ => panic!("aux_loss presence differs between batch and serial"),
        }
    }

    // --- gradients: per-episode backward on the shared tape, in episode
    // order, must deposit exactly what separate per-episode tapes deposit.
    let mut batch_params = params.clone();
    for ep in h.episodes.clone() {
        let neg = h.tape.neg(ep.log_prob);
        let loss = match ep.aux_loss {
            Some(aux) => h.tape.add(neg, aux),
            None => neg,
        };
        h.tape.backward(loss, &mut batch_params);
    }
    let mut serial_params = params.clone();
    for a in &actions {
        let mut sh = agent.score(&serial_params, a);
        let neg = sh.tape.neg(sh.log_prob);
        let loss = match sh.aux_loss {
            Some(aux) => sh.tape.add(neg, aux),
            None => neg,
        };
        sh.tape.backward(loss, &mut serial_params);
    }
    for id in batch_params.ids() {
        let bg = batch_params.grad(id);
        let sg = serial_params.grad(id);
        for (i, (x, y)) in bg.data().iter().zip(sg.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "gradient of '{}' entry {i} diverges",
                batch_params.name(id)
            );
        }
    }
}

/// Asserts the single-backward update path (sum per-episode losses with
/// `add_n`, one `backward_into` traversal of the shared tape) produces the
/// same gradients as the legacy per-episode backward loop, within the
/// documented tolerance. The losses mirror the RL update shape:
/// advantage-weighted log-probs, an entropy bonus, and the aux head where
/// the agent has one.
fn assert_single_backward_matches_per_episode(
    agent: &impl PlacementAgent,
    params: &Params,
    bsz: usize,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let actions: Vec<Vec<usize>> = (0..bsz).map(|_| agent.sample(params, &mut rng).0).collect();
    let mut h = agent.score_batch(params, &actions);

    let mut ep_losses = Vec::with_capacity(bsz);
    for (e, ep) in h.episodes.clone().into_iter().enumerate() {
        // Signed, episode-varying advantages so the summed gradient mixes
        // magnitudes and signs like a real REINFORCE/PPO minibatch does.
        let adv = 0.7 * (e as f32 - 0.5 * (bsz as f32 - 1.0)) + 0.3;
        let weighted = h.tape.scale(ep.log_prob, -adv);
        let ent = h.tape.scale(ep.entropy, -0.01);
        let mut loss = h.tape.add(weighted, ent);
        if let Some(aux) = ep.aux_loss {
            loss = h.tape.add(loss, aux);
        }
        ep_losses.push(loss);
    }
    let total = h.tape.add_n(&ep_losses);

    // Path A: the legacy per-episode backward loop (one traversal per episode).
    let mut per_episode = params.clone();
    for &loss in &ep_losses {
        h.tape.backward(loss, &mut per_episode);
    }
    // Path B: one traversal of the summed loss into detached buffers.
    let mut grads = Grads::for_params(params);
    h.tape.backward_into(total, &mut grads);

    for id in per_episode.ids() {
        let pe = per_episode.grad(id);
        let sb = grads.get(id);
        let scale = pe.data().iter().chain(sb.data()).fold(0.0f32, |m, v| m.max(v.abs()));
        for (i, (a, b)) in pe.data().iter().zip(sb.data()).enumerate() {
            assert_grad_close(
                *a,
                *b,
                scale,
                &format!("gradient of '{}' entry {i}", per_episode.name(id)),
            );
        }
    }
}

fn eagle_agent(seed: u64) -> (Params, EagleAgent) {
    let g = tiny_graph();
    let m = Machine::paper_machine();
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
    (params, agent)
}

fn hp_agent(seed: u64) -> (Params, HpAgent) {
    let g = tiny_graph();
    let m = Machine::paper_machine();
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let agent = HpAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
    (params, agent)
}

fn fixed_agent(seed: u64, kind: PlacerKind) -> (Params, FixedGroupAgent) {
    let g = tiny_graph();
    let m = Machine::paper_machine();
    let k = 5;
    let group_of: Vec<usize> = (0..g.len()).map(|i| i * k / g.len()).collect();
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let agent = FixedGroupAgent::new(
        &mut params,
        "fg",
        &g,
        &m,
        group_of,
        k,
        kind,
        AgentScale::tiny(),
        &mut rng,
    );
    (params, agent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn eagle_batched_equals_serial(seed in 0u64..1_000, bidx in 0usize..3) {
        let bsz = [1usize, 3, 8][bidx];
        let (params, agent) = eagle_agent(seed.wrapping_mul(31) + 1);
        assert_batched_matches_serial(&agent, &params, bsz, seed);
    }

    #[test]
    fn hp_batched_equals_serial(seed in 0u64..1_000, bidx in 0usize..3) {
        let bsz = [1usize, 3, 8][bidx];
        let (params, agent) = hp_agent(seed.wrapping_mul(17) + 2);
        assert_batched_matches_serial(&agent, &params, bsz, seed);
    }

    #[test]
    fn fixed_group_batched_equals_serial(seed in 0u64..1_000, bidx in 0usize..3) {
        // Rotate through all four placer kinds so every placer's batched path
        // is exercised behind the agent API.
        let bsz = [1usize, 3, 8][bidx];
        let kind = [PlacerKind::Seq2SeqBefore, PlacerKind::Seq2SeqAfter, PlacerKind::Gcn, PlacerKind::Simple]
            [(seed % 4) as usize];
        let (params, agent) = fixed_agent(seed.wrapping_mul(13) + 3, kind);
        assert_batched_matches_serial(&agent, &params, bsz, seed);
    }

    #[test]
    fn eagle_single_backward_matches_per_episode(seed in 0u64..1_000, bidx in 0usize..3) {
        let bsz = [1usize, 3, 8][bidx];
        let (params, agent) = eagle_agent(seed.wrapping_mul(29) + 5);
        assert_single_backward_matches_per_episode(&agent, &params, bsz, seed);
    }

    #[test]
    fn hp_single_backward_matches_per_episode(seed in 0u64..1_000, bidx in 0usize..3) {
        let bsz = [1usize, 3, 8][bidx];
        let (params, agent) = hp_agent(seed.wrapping_mul(19) + 6);
        assert_single_backward_matches_per_episode(&agent, &params, bsz, seed);
    }

    #[test]
    fn fixed_group_single_backward_matches_per_episode(seed in 0u64..1_000, bidx in 0usize..3) {
        let bsz = [1usize, 3, 8][bidx];
        let kind = [PlacerKind::Seq2SeqBefore, PlacerKind::Seq2SeqAfter, PlacerKind::Gcn, PlacerKind::Simple]
            [(seed % 4) as usize];
        let (params, agent) = fixed_agent(seed.wrapping_mul(23) + 7, kind);
        assert_single_backward_matches_per_episode(&agent, &params, bsz, seed);
    }
}

fn train_hp(workers: usize) -> eagle::core::TrainResult {
    let g = tiny_graph();
    let m = Machine::paper_machine();
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let agent = HpAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::PpoCe, 40);
    cfg.ce_interval = 20;
    cfg.workers = workers;
    let trainer = Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(11)
        .build()
        .expect("valid trainer config");
    trainer.train(&agent, &mut params).expect("training run succeeds")
}

#[test]
fn batched_training_curve_identical_across_worker_counts() {
    let serial = train_hp(1);
    let auto = train_hp(0);
    assert_curves_close(&serial.curve, &auto.curve, "serial vs auto workers");
    assert_eq!(serial.best_placement, auto.best_placement);
    assert_opt_f64_close(
        serial.final_step_time,
        auto.final_step_time,
        CURVE_ULPS,
        "serial vs auto workers: final step time",
    );
    assert_eq!(serial.num_invalid, auto.num_invalid);
}

#[test]
fn batched_training_resumes_bit_identically() {
    // A run killed mid-way and resumed must replay the exact same curve the
    // uninterrupted run produces — the batched sampler's RNG accounting feeds
    // straight into the checkpointed trainer RNG.
    let g = tiny_graph();
    let m = Machine::paper_machine();
    let build_trainer = |cfg: TrainerConfig| {
        Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
            .config(cfg)
            .measure(MeasureConfig::default())
            .env_seed(23)
            .build()
            .expect("valid trainer config")
    };
    let build_agent = |params: &mut Params| {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        EagleAgent::new(params, &g, &m, AgentScale::tiny(), &mut rng)
    };

    let dir = std::env::temp_dir().join("eagle-batched-policy-resume-test");
    std::fs::create_dir_all(&dir).unwrap();

    // Uninterrupted reference: 60 samples.
    let mut cfg = TrainerConfig::paper(Algo::Ppo, 60);
    let mut full_params = Params::new();
    let full_agent = build_agent(&mut full_params);
    let full =
        build_trainer(cfg.clone()).train(&full_agent, &mut full_params).expect("full run trains");

    // Interrupted: stop after 30 (checkpointing every minibatch), resume to 60.
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = Some(1);
    cfg.total_samples = 30;
    let mut part_params = Params::new();
    let part_agent = build_agent(&mut part_params);
    build_trainer(cfg.clone()).train(&part_agent, &mut part_params).expect("partial run trains");

    let state = eagle::core::load_checkpoint(dir.join(CHECKPOINT_FILE)).unwrap();
    cfg.total_samples = 60;
    let mut resumed_params = Params::new();
    let resumed_agent = build_agent(&mut resumed_params);
    let resumed = build_trainer(cfg)
        .train_from(&resumed_agent, &mut resumed_params, state)
        .expect("resume succeeds");

    assert_curves_close(&full.curve, &resumed.curve, "full vs resumed");
    assert_eq!(full.best_placement, resumed.best_placement);
    assert_opt_f64_close(
        full.final_step_time,
        resumed.final_step_time,
        CURVE_ULPS,
        "full vs resumed: final step time",
    );
    std::fs::remove_dir_all(&dir).ok();
}
