//! The rollout engine's central contract: training results are bit-identical
//! for every worker count. Sampling and noise stay serial and seeded; only the
//! pure per-episode work (decode + simulation) fans out, so the curve, the
//! trained policy's best placement and every counter must match exactly
//! between a serial run and a parallel one.

use eagle::core::{train, AgentScale, Algo, EagleAgent, TrainResult, TrainerConfig};
use eagle::devsim::{Benchmark, Environment, Machine, MeasureConfig};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run_with_workers(workers: usize) -> TrainResult {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let mut env =
        Environment::new(graph.clone(), machine.clone(), MeasureConfig::default(), 42);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, 40);
    cfg.workers = workers;
    train(&agent, &mut params, &mut env, &cfg)
}

#[test]
fn same_seed_same_curve_for_any_worker_count() {
    let serial = run_with_workers(1);
    let parallel = run_with_workers(4);

    // Curve points carry the measured values, the noise realization (through
    // `measured`) and the simulated wall-clock — all must match bit-for-bit.
    assert_eq!(serial.curve.points, parallel.curve.points);
    assert_eq!(serial.best_placement, parallel.best_placement);
    assert_eq!(serial.final_step_time, parallel.final_step_time);
    assert_eq!(serial.num_invalid, parallel.num_invalid);
    assert_eq!(serial.samples, parallel.samples);

    // Cache behavior is part of the contract too: hit/miss classification may
    // not depend on how the minibatch was scheduled.
    assert_eq!(serial.rollout.cache_hits, parallel.rollout.cache_hits);
    assert_eq!(serial.rollout.cache_misses, parallel.rollout.cache_misses);
    assert_eq!(serial.rollout.workers, 1);
    assert_eq!(parallel.rollout.workers, 4);
}

#[test]
fn auto_worker_count_matches_serial_too() {
    let serial = run_with_workers(1);
    let auto = run_with_workers(0);
    assert_eq!(serial.curve.points, auto.curve.points);
    assert_eq!(serial.best_placement, auto.best_placement);
    assert!(auto.rollout.workers >= 1);
}
