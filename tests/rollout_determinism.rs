//! The rollout engine's central contract: training results are identical
//! for every worker count. Sampling and noise stay serial and seeded; only the
//! pure per-episode work (decode + simulation) fans out, so the curve, the
//! trained policy's best placement and every counter must match between a
//! serial run and a parallel one. Discrete outcomes (placements, counters,
//! sample counts) match exactly; curve floats are compared under the
//! documented ULP budgets in `tests/common` (observed distance today: 0 —
//! the budget only licenses mathematically neutral float reorderings inside
//! the single-backward update path, not different results).

use eagle::core::{AgentScale, Algo, EagleAgent, GraphSource, TrainResult, Trainer, TrainerConfig};
use eagle::devsim::{Benchmark, Machine, MeasureConfig};
use eagle::obs::Recorder;
use eagle::opgraph::GraphGenConfig;
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

mod common;
use common::{assert_curves_close, assert_opt_f64_close, CURVE_ULPS};

fn run_with_workers(workers: usize) -> TrainResult {
    run_with_workers_and_recorder(workers, Recorder::disabled())
}

fn run_with_workers_and_recorder(workers: usize, recorder: Recorder) -> TrainResult {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, 40);
    cfg.workers = workers;
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(42)
        .recorder(recorder)
        .build()
        .expect("inception trainer config is valid");
    trainer.train(&agent, &mut params).expect("training run succeeds")
}

/// Multi-graph run: a GraphGen distribution with a held-out graph and
/// zero-shot probes on, so worker-count independence is asserted over the
/// whole generalist path (per-graph environments, probe RNG, pool bookkeeping).
fn run_multi_with_workers(workers: usize) -> (TrainResult, Params) {
    let machine = Machine::paper_machine();
    let source = GraphSource::generated(GraphGenConfig::with_target(48), 99)
        .expect("valid generated source");
    let seed_graph = source.build(&source.holdout_origins(1)[0]);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let agent = EagleAgent::new(&mut params, &seed_graph, &machine, AgentScale::tiny(), &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, 40);
    cfg.workers = workers;
    let trainer = Trainer::builder(source, machine)
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(7)
        .holdout(1)
        .probe_every(2)
        .probe_candidates(2)
        .build()
        .expect("valid generalist trainer config");
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    (result, params)
}

#[test]
fn same_seed_same_curve_for_any_worker_count() {
    let serial = run_with_workers(1);
    let parallel = run_with_workers(4);

    // Curve points carry the measured values, the noise realization (through
    // `measured`) and the simulated wall-clock — sample indices exactly,
    // floats within the curve ULP budget.
    assert_curves_close(&serial.curve, &parallel.curve, "serial vs parallel");
    assert_eq!(serial.best_placement, parallel.best_placement);
    assert_opt_f64_close(
        serial.final_step_time,
        parallel.final_step_time,
        CURVE_ULPS,
        "serial vs parallel: final step time",
    );
    assert_eq!(serial.num_invalid, parallel.num_invalid);
    assert_eq!(serial.samples, parallel.samples);

    // Cache behavior is part of the contract too: hit/miss classification may
    // not depend on how the minibatch was scheduled.
    assert_eq!(serial.telemetry.cache_hits, parallel.telemetry.cache_hits);
    assert_eq!(serial.telemetry.cache_misses, parallel.telemetry.cache_misses);
    assert_eq!(serial.telemetry.cache_evictions, parallel.telemetry.cache_evictions);
    assert_eq!(serial.telemetry.evals, parallel.telemetry.evals);
    assert_eq!(serial.telemetry.workers, 1);
    assert_eq!(parallel.telemetry.workers, 4);
}

#[test]
fn telemetry_recording_never_changes_the_curve() {
    // Instrumentation must be observation-only: an enabled recorder may not
    // perturb sampling, caching, simulated wall-clock or the trained policy.
    let silent = run_with_workers(2);
    let recorder = Recorder::new();
    let recorded = run_with_workers_and_recorder(2, recorder.clone());
    assert_curves_close(&silent.curve, &recorded.curve, "silent vs recorded");
    assert_eq!(silent.best_placement, recorded.best_placement);
    assert_opt_f64_close(
        silent.final_step_time,
        recorded.final_step_time,
        CURVE_ULPS,
        "silent vs recorded: final step time",
    );
    assert_eq!(silent.telemetry.evals, recorded.telemetry.evals);
    assert_eq!(silent.telemetry.cache_hits, recorded.telemetry.cache_hits);
    // And the recorder actually saw the run: 40 samples in minibatches of 10.
    assert_eq!(recorder.counter_value("trainer.minibatches"), 4);
    assert_eq!(recorder.counter_value("devsim.evals"), 40);
    assert_eq!(recorder.counter_value("rl.updates"), 4);
    assert_eq!(recorder.histogram("trainer.sample_us").unwrap().count, 4);
    assert_eq!(recorder.histogram("trainer.decode_us").unwrap().count, 4);
    assert_eq!(recorder.histogram("trainer.evaluate_us").unwrap().count, 4);
    assert_eq!(recorder.histogram("trainer.update_us").unwrap().count, 4);
    assert_eq!(recorder.histogram("rl.ppo.update_us").unwrap().count, 4);
}

#[test]
fn auto_worker_count_matches_serial_too() {
    let serial = run_with_workers(1);
    let auto = run_with_workers(0);
    assert_curves_close(&serial.curve, &auto.curve, "serial vs auto");
    assert_eq!(serial.best_placement, auto.best_placement);
    assert!(auto.telemetry.workers >= 1);
}

#[test]
fn multi_graph_training_is_worker_count_independent() {
    let (serial, serial_params) = run_multi_with_workers(1);
    let (parallel, parallel_params) = run_multi_with_workers(4);

    assert_curves_close(&serial.curve, &parallel.curve, "multi-graph serial vs parallel");
    // Zero-shot probes are part of the contract: identical graphs, identical
    // best-of-K step times, at identical sample indices.
    assert_eq!(serial.curve.probes, parallel.curve.probes, "probe points diverged");
    assert!(!serial.curve.probes.is_empty(), "probes were requested");
    assert_eq!(serial.samples, parallel.samples);
    assert_eq!(serial.num_invalid, parallel.num_invalid);
    assert_eq!(serial.telemetry.cache_hits, parallel.telemetry.cache_hits);
    assert_eq!(serial.telemetry.evals, parallel.telemetry.evals);
    // The trained generalist policy itself must match bit-for-bit.
    assert_eq!(serial_params.len(), parallel_params.len());
    for id in serial_params.ids() {
        assert_eq!(
            serial_params.get(id).data(),
            parallel_params.get(id).data(),
            "param {} diverged across worker counts",
            serial_params.name(id)
        );
    }
    // Per-graph summaries (which graphs were drawn, how often) are discrete.
    let names =
        |r: &TrainResult| r.graphs.iter().map(|g| (g.name.clone(), g.samples)).collect::<Vec<_>>();
    assert_eq!(names(&serial), names(&parallel));
}
