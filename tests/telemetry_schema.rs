//! Golden test pinning the telemetry JSONL schema (version 1).
//!
//! Downstream tooling parses these files, so the line types, their field names
//! and their JSON types are a public contract: any change must bump
//! `eagle::obs::SCHEMA_VERSION` and update this test deliberately.

use eagle::core::{AgentScale, Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle::devsim::{Benchmark, Environment, Machine, MeasureConfig};
use eagle::obs::{write_jsonl, Recorder, SCHEMA_VERSION};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;

/// Runs a short instrumented training run and returns its recorder.
fn instrumented_run() -> Recorder {
    let recorder = Recorder::new();
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(TrainerConfig::paper(Algo::Ppo, 20))
        .measure(MeasureConfig::default())
        .env_seed(5)
        .recorder(recorder.clone())
        .build()
        .expect("inception trainer config is valid");
    trainer.train(&agent, &mut params).expect("training run succeeds");
    // Re-evaluating a fixed placement twice guarantees the cache-hit counter
    // exists even when the short training run never repeats a placement.
    let mut env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::default())
        .seed(5)
        .recorder(recorder.clone())
        .build()
        .expect("inception environment is valid");
    let single = eagle::devsim::predefined::single_gpu(&graph, &machine);
    env.evaluate(&single);
    env.evaluate(&single);
    recorder
}

/// The exact field names of an object line, in serialization order.
fn keys(line: &Value) -> Vec<&str> {
    match line {
        Value::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("every JSONL line is an object, got {other:?}"),
    }
}

#[test]
fn jsonl_schema_v1_is_pinned() {
    let recorder = instrumented_run();
    let path = std::env::temp_dir().join("eagle_telemetry_schema_golden.jsonl");
    write_jsonl(&recorder, &path, "golden").expect("write JSONL");
    let text = std::fs::read_to_string(&path).expect("read JSONL back");
    std::fs::remove_file(&path).ok();

    let lines: Vec<Value> =
        text.lines().map(|l| serde_json::from_str(l).expect("every line is valid JSON")).collect();
    assert!(lines.len() > 1, "an instrumented run must emit metric lines");

    // Line 1 is the meta header carrying the pinned schema version.
    assert_eq!(keys(&lines[0]), vec!["type", "schema_version", "run"]);
    assert_eq!(lines[0]["schema_version"].as_u64(), Some(SCHEMA_VERSION));
    assert_eq!(SCHEMA_VERSION, 1, "schema changes must update this golden test");
    assert_eq!(lines[0]["run"].as_str(), Some("golden"));

    // Every line type carries exactly its pinned fields with pinned JSON types.
    for line in &lines[1..] {
        let t = line["type"].as_str().expect("type is a string");
        match t {
            "span" => {
                assert_eq!(keys(line), vec!["type", "name", "seq", "us"]);
                assert!(line["name"].as_str().is_some(), "span name is a string");
                assert!(line["seq"].as_u64().is_some(), "span seq is an integer");
                assert!(line["us"].as_f64().is_some(), "span us is a number");
            }
            "counter" => {
                assert_eq!(keys(line), vec!["type", "name", "value"]);
                assert!(line["value"].as_u64().is_some(), "counter value is an integer");
            }
            "gauge" => {
                assert_eq!(keys(line), vec!["type", "name", "value"]);
                assert!(line["value"].as_f64().is_some(), "gauge value is a number");
            }
            "histogram" => {
                assert_eq!(
                    keys(line),
                    vec![
                        "type", "name", "count", "sum", "min", "max", "p50", "p90",
                        "p99", "buckets"
                    ]
                );
                assert!(line["count"].as_u64().is_some());
                for f in ["sum", "min", "max", "p50", "p90", "p99"] {
                    assert!(line[f].as_f64().is_some(), "histogram {f} is a number");
                }
                let buckets = line["buckets"].as_array().expect("buckets is an array");
                for b in buckets {
                    let pair = b.as_array().expect("bucket is a [bound, count] pair");
                    assert_eq!(pair.len(), 2);
                    assert!(pair[0].as_f64().is_some(), "bucket bound is a number");
                    assert!(pair[1].as_u64().is_some(), "bucket count is an integer");
                }
            }
            other => panic!("unknown line type {other:?} — schema v1 has exactly meta/span/counter/gauge/histogram"),
        }
    }

    // The instrumented training loop emits the documented metric families.
    let names: Vec<&str> = lines[1..].iter().filter_map(|l| l["name"].as_str()).collect();
    for expected in [
        "trainer.sample_us",
        "trainer.decode_us",
        "trainer.evaluate_us",
        "trainer.update_us",
        "trainer.minibatches",
        "devsim.evals",
        "devsim.cache.hits",
        "devsim.cache.misses",
        "devsim.sim_us",
        "devsim.wall_clock_s",
        "rl.ppo.update_us",
        "rl.updates",
        "rl.grad_norm",
        "rl.entropy",
        "rl.loss",
    ] {
        assert!(names.contains(&expected), "missing metric {expected}");
    }
}

#[test]
fn disabled_recorder_writes_only_the_meta_line() {
    let path = std::env::temp_dir().join("eagle_telemetry_schema_disabled.jsonl");
    write_jsonl(&Recorder::disabled(), &path, "off").expect("write JSONL");
    let text = std::fs::read_to_string(&path).expect("read JSONL back");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1);
    let meta: Value = serde_json::from_str(lines[0]).expect("meta parses");
    assert_eq!(meta["type"].as_str(), Some("meta"));
}
