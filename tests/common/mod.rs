//! Shared tolerance helpers for the integration suites.
//!
//! # Tolerance policy (ULP budgets)
//!
//! The determinism suites compare two *runs of the same update path* (different
//! worker counts, straight vs checkpoint-resumed, telemetry on vs off). That
//! path is serial and deterministic, so the observed distance today is exactly
//! 0 ULPs everywhere. The comparisons still go through these budgeted helpers
//! rather than `to_bits()` equality because the minibatch update performs a
//! *summed-loss single backward*: per-episode gradient contributions combine in
//! tape-node order, a float reduction whose order is an implementation detail
//! of the tensor core. The budgets below bound how far a mathematically
//! neutral reordering (a future kernel or traversal change) may drift before
//! we treat it as a regression:
//!
//! * [`CURVE_ULPS`] — `f64` training-curve values (measured step times,
//!   simulated wall-clock, running best). Budget 8 ULPs ≈ 1.8e-15 relative.
//! * [`PARAM_ULPS`] — `f32` trained parameters after tens of Adam steps.
//!   Budget 64 ULPs ≈ 7.6e-6 relative; parameters integrate gradient noise,
//!   so they get more headroom than curve points.
//!
//! Integer-valued outcomes (argmax placements, sample counts, cache counters,
//! RNG positions) stay under exact `assert_eq!` — no budget excuses a
//! different decision.
//!
//! Gradient comparisons between the *single-backward* and *per-episode
//! backward* paths compare genuinely reordered `f32` reductions; those use the
//! mixed absolute/relative bound [`assert_grad_close`] ([`GRAD_ATOL`],
//! [`GRAD_RTOL`]) instead of ULPs, since cancellation in advantage-weighted
//! sums makes per-element ULP distances unbounded in principle.

#![allow(dead_code)] // each integration test binary uses a subset

use eagle::core::Curve;

/// ULP budget for `f64` curve values (see module docs).
pub const CURVE_ULPS: u64 = 8;
/// ULP budget for `f32` trained-parameter values (see module docs).
pub const PARAM_ULPS: u32 = 64;
/// Absolute floor for single-backward vs per-episode gradient agreement.
pub const GRAD_ATOL: f32 = 1e-6;
/// Relative bound for single-backward vs per-episode gradient agreement:
/// a reordered sum of `B <= 16` f32 terms keeps well under 1e-4 relative
/// error unless the sum is cancellation-dominated (covered by `GRAD_ATOL`
/// scaled by the largest term, below).
pub const GRAD_RTOL: f32 = 1e-3;

/// Distance in units-in-the-last-place between two `f64`s, treating the pair
/// as points on the monotone integer number line (sign-folded). NaNs never
/// compare close; `+0.0` and `-0.0` are 0 apart.
pub fn ulp_distance_f64(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let fold = |x: f64| -> i128 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            (i64::MIN as i128) - (bits as i128)
        } else {
            bits as i128
        }
    };
    fold(a).abs_diff(fold(b)) as u64
}

/// `f32` version of [`ulp_distance_f64`].
pub fn ulp_distance_f32(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let fold = |x: f32| -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            (i32::MIN as i64) - (bits as i64)
        } else {
            bits as i64
        }
    };
    fold(a).abs_diff(fold(b)) as u32
}

/// Asserts two `f64`s are within `budget` ULPs.
pub fn assert_f64_close(a: f64, b: f64, budget: u64, ctx: &str) {
    let d = ulp_distance_f64(a, b);
    assert!(d <= budget, "{ctx}: {a} vs {b} differ by {d} ULPs (budget {budget})");
}

/// Asserts two `f32`s are within `budget` ULPs.
pub fn assert_f32_close(a: f32, b: f32, budget: u32, ctx: &str) {
    let d = ulp_distance_f32(a, b);
    assert!(d <= budget, "{ctx}: {a} vs {b} differ by {d} ULPs (budget {budget})");
}

/// Asserts two `Option<f64>`s agree in presence and, when present, within
/// `budget` ULPs.
pub fn assert_opt_f64_close(a: Option<f64>, b: Option<f64>, budget: u64, ctx: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_f64_close(x, y, budget, ctx),
        _ => panic!("{ctx}: presence differs ({a:?} vs {b:?})"),
    }
}

/// Asserts two training curves agree: identical sample indices (exact) and all
/// float fields within [`CURVE_ULPS`].
pub fn assert_curves_close(a: &Curve, b: &Curve, ctx: &str) {
    assert_eq!(a.points.len(), b.points.len(), "{ctx}: curve length");
    for (i, (x, y)) in a.points.iter().zip(&b.points).enumerate() {
        assert_eq!(x.sample, y.sample, "{ctx}: point {i} sample index");
        assert_f64_close(
            x.wall_clock,
            y.wall_clock,
            CURVE_ULPS,
            &format!("{ctx}: point {i} wall_clock"),
        );
        assert_opt_f64_close(
            x.measured,
            y.measured,
            CURVE_ULPS,
            &format!("{ctx}: point {i} measured"),
        );
        assert_opt_f64_close(
            x.best_so_far,
            y.best_so_far,
            CURVE_ULPS,
            &format!("{ctx}: point {i} best_so_far"),
        );
    }
}

/// Asserts two gradient values from differently-ordered reductions agree:
/// `|a - b| <= GRAD_ATOL * scale + GRAD_RTOL * max(|a|, |b|)`, where `scale`
/// is the largest gradient magnitude in the tensor being compared (it anchors
/// the absolute floor to the tensor's dynamic range, which is what
/// cancellation error is proportional to).
pub fn assert_grad_close(a: f32, b: f32, scale: f32, ctx: &str) {
    let tol = GRAD_ATOL * scale.max(1.0) + GRAD_RTOL * a.abs().max(b.abs());
    assert!(
        (a - b).abs() <= tol,
        "{ctx}: gradient {a} vs {b} differ by {} (tolerance {tol}, scale {scale})",
        (a - b).abs()
    );
}
