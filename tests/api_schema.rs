//! Golden test pinning the serving wire schema (version 1).
//!
//! Clients in other languages speak this protocol by constructing JSON lines
//! by hand, so each message's `type` tag, its field names, and their JSON
//! types are a public contract: any change must bump
//! `eagle::api::API_SCHEMA_VERSION` and update this test deliberately.

use eagle::api::{
    self, ApiError, ErrorCode, PlaceRequest, PlaceResponse, RegisterGraphRequest,
    RegisterGraphResponse, Request, Response, API_SCHEMA_VERSION,
};
use eagle::devsim::Machine;
use eagle::opgraph::{OpGraph, OpKind, OpNode, Phase};
use eagle::EagleError;
use serde_json::Value;

/// The exact field names of a JSON object, in serialization order.
fn keys(v: &Value) -> Vec<&str> {
    match v {
        Value::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("every wire message is an object, got {other:?}"),
    }
}

/// A two-op graph exercising the inline-graph wire path.
fn tiny_graph() -> OpGraph {
    let mut g = OpGraph::new("wire_test");
    let a = g.add_node(OpNode::new("a", OpKind::MatMul, Phase::Forward));
    let b = g.add_node(OpNode::new("b", OpKind::Softmax, Phase::Forward));
    g.add_edge(a, b);
    g
}

#[test]
fn wire_schema_v1_is_pinned() {
    assert_eq!(API_SCHEMA_VERSION, 1, "schema changes must update this golden test");

    // `place` request: every field present on the wire, `null` for unset.
    let mut req = PlaceRequest::inline(7, "inception_v3", tiny_graph());
    req.machine = Some(Machine::small_machine());
    let line = api::encode_request(&Request::Place(req));
    let v: Value = serde_json::from_str(&line).expect("wire line is JSON");
    assert_eq!(
        keys(&v),
        vec![
            "type",
            "schema_version",
            "id",
            "family",
            "graph",
            "graph_key",
            "machine",
            "candidates",
            "seed",
            "deadline_ms"
        ]
    );
    assert_eq!(v["type"].as_str(), Some("place"));
    assert_eq!(v["schema_version"].as_u64(), Some(API_SCHEMA_VERSION));
    assert_eq!(v["id"].as_u64(), Some(7));
    assert_eq!(v["family"].as_str(), Some("inception_v3"));
    assert!(matches!(v["graph_key"], Value::Null), "unset optionals serialize as null");
    // The embedded machine's shape is part of the contract too.
    assert_eq!(keys(&v["machine"]), vec!["devices", "link_bandwidth", "transfer_latency"]);
    let device = &v["machine"]["devices"][0];
    assert_eq!(keys(device), vec!["name", "kind", "peak_flops", "mem_bytes", "launch_overhead"]);
    // And the embedded graph's top level.
    assert_eq!(keys(&v["graph"]), vec!["model_name", "nodes", "succs", "preds"]);

    // `place_result` reply (success shape).
    let resp = Response::Place(PlaceResponse {
        schema_version: API_SCHEMA_VERSION,
        id: 7,
        placement: Some(vec![0, 1]),
        predicted_step_time: Some(0.25),
        policy_version: Some("00ff00ff00ff00ff".into()),
        error: None,
    });
    let v: Value = serde_json::from_str(&api::encode_response(&resp)).unwrap();
    assert_eq!(
        keys(&v),
        vec![
            "type",
            "schema_version",
            "id",
            "placement",
            "predicted_step_time",
            "policy_version",
            "error"
        ]
    );
    assert_eq!(v["type"].as_str(), Some("place_result"));
    assert!(matches!(v["error"], Value::Null));
    assert!(v["predicted_step_time"].as_f64().is_some());

    // `place_result` reply (error shape): result fields null, error typed.
    let resp =
        Response::Place(PlaceResponse::failure(3, &EagleError::UnknownFamily("gnmt".into())));
    let v: Value = serde_json::from_str(&api::encode_response(&resp)).unwrap();
    assert!(matches!(v["placement"], Value::Null));
    assert_eq!(keys(&v["error"]), vec!["code", "message", "retry_after_ms"]);
    assert_eq!(v["error"]["code"].as_str(), Some("UnknownFamily"));
    assert!(matches!(v["error"]["retry_after_ms"], Value::Null), "hint is null off Overloaded");

    // `place_result` overload shape: the one error that carries a retry hint.
    let resp = Response::Place(PlaceResponse::failure(
        4,
        &EagleError::Overloaded { queued: 8, capacity: 8, retry_after_ms: 12 },
    ));
    let v: Value = serde_json::from_str(&api::encode_response(&resp)).unwrap();
    assert_eq!(v["error"]["code"].as_str(), Some("Overloaded"));
    assert_eq!(v["error"]["retry_after_ms"].as_u64(), Some(12));

    // `register_graph` request and reply.
    let req = Request::RegisterGraph(RegisterGraphRequest {
        schema_version: API_SCHEMA_VERSION,
        id: 11,
        graph: tiny_graph(),
    });
    let v: Value = serde_json::from_str(&api::encode_request(&req)).unwrap();
    assert_eq!(keys(&v), vec!["type", "schema_version", "id", "graph"]);
    assert_eq!(v["type"].as_str(), Some("register_graph"));

    let resp = Response::RegisterGraph(RegisterGraphResponse {
        schema_version: API_SCHEMA_VERSION,
        id: 11,
        graph_key: Some("5088e3825edbfbd1".into()),
        error: None,
    });
    let v: Value = serde_json::from_str(&api::encode_response(&resp)).unwrap();
    assert_eq!(keys(&v), vec!["type", "schema_version", "id", "graph_key", "error"]);
    assert_eq!(v["type"].as_str(), Some("register_graph_result"));
}

#[test]
fn error_codes_are_pinned() {
    // The `code` strings clients branch on; renaming any is a schema break.
    let pinned = [
        (ErrorCode::Protocol, "Protocol"),
        (ErrorCode::SchemaVersion, "SchemaVersion"),
        (ErrorCode::BadRequest, "BadRequest"),
        (ErrorCode::UnknownFamily, "UnknownFamily"),
        (ErrorCode::UnknownGraphKey, "UnknownGraphKey"),
        (ErrorCode::PolicyMismatch, "PolicyMismatch"),
        (ErrorCode::Infeasible, "Infeasible"),
        (ErrorCode::Overloaded, "Overloaded"),
        (ErrorCode::DeadlineExceeded, "DeadlineExceeded"),
        (ErrorCode::Internal, "Internal"),
    ];
    for (code, name) in pinned {
        let err = ApiError { code, message: "m".into(), retry_after_ms: None };
        let v = serde_json::to_value(&err);
        assert_eq!(v["code"].as_str(), Some(name), "ErrorCode::{name} wire string");
    }
}

#[test]
fn optional_v1_fields_stay_backward_compatible() {
    // A pre-admission-control v1 client omits `deadline_ms` entirely (and an
    // old server's error object omits `retry_after_ms`); both must decode.
    let line = r#"{"type":"place","schema_version":1,"id":5,"family":"f","graph":null,
        "graph_key":"00ff00ff00ff00ff","machine":null,"candidates":0,"seed":9}"#
        .replace('\n', "");
    match api::decode_request(&line).expect("legacy place line decodes") {
        Request::Place(req) => {
            assert_eq!(req.id, 5);
            assert_eq!(req.deadline_ms, None);
        }
        other => panic!("expected place, got {other:?}"),
    }
    let line = r#"{"type":"place_result","schema_version":1,"id":5,"placement":null,
        "predicted_step_time":null,"policy_version":null,
        "error":{"code":"Internal","message":"m"}}"#
        .replace('\n', "");
    match api::decode_response(&line).expect("legacy error reply decodes") {
        Response::Place(resp) => {
            assert_eq!(resp.error.expect("carries the error").retry_after_ms, None);
        }
        other => panic!("expected place_result, got {other:?}"),
    }

    // And a deadline-carrying request round-trips through encode/decode.
    let req = PlaceRequest::by_key(6, "f", "00ff00ff00ff00ff").with_deadline_ms(250);
    let line = api::encode_request(&Request::Place(req));
    match api::decode_request(&line).expect("decodes") {
        Request::Place(req) => assert_eq!(req.deadline_ms, Some(250)),
        other => panic!("expected place, got {other:?}"),
    }
}

#[test]
fn family_is_optional_on_the_wire() {
    // `family: null` and a missing `family` key both decode to "no preference"
    // — the server answers such requests with its generalist policy. Clients
    // written against the original v1 schema (family always a string) keep
    // working unchanged, so this is an additive, non-breaking relaxation.
    for line in [
        r#"{"type":"place","schema_version":1,"id":5,"family":null,
            "graph_key":"00ff00ff00ff00ff","candidates":0,"seed":9}"#,
        r#"{"type":"place","schema_version":1,"id":5,
            "graph_key":"00ff00ff00ff00ff","candidates":0,"seed":9}"#,
    ] {
        match api::decode_request(&line.replace('\n', "")).expect("no-family line decodes") {
            Request::Place(req) => assert_eq!(req.family, None),
            other => panic!("expected place, got {other:?}"),
        }
    }

    // The zero-shot constructor round-trips, with `family` null on the wire.
    let req = PlaceRequest::zero_shot(8, tiny_graph());
    let line = api::encode_request(&Request::Place(req));
    let v: Value = serde_json::from_str(&line).unwrap();
    assert!(matches!(v["family"], Value::Null), "no preference serializes as null");
    match api::decode_request(&line).expect("zero-shot line decodes") {
        Request::Place(req) => {
            assert_eq!(req.family, None);
            assert!(req.graph.is_some());
            assert_eq!(api::encode_request(&Request::Place(req)), line);
        }
        other => panic!("expected place, got {other:?}"),
    }
}

#[test]
fn wire_roundtrip_is_stable() {
    // Encoding a decoded line reproduces it byte for byte, pinning the full
    // nested OpGraph / Machine serialization (not just the top-level keys).
    let mut req = PlaceRequest::inline(42, "bert_base", tiny_graph());
    req.machine = Some(Machine::paper_machine());
    req.candidates = 4;
    let line = api::encode_request(&Request::Place(req));
    let decoded = api::decode_request(&line).expect("decodes");
    assert_eq!(api::encode_request(&decoded), line);

    let resp = Response::Place(PlaceResponse::failure(0, &EagleError::Protocol("bad".into())));
    let line = api::encode_response(&resp);
    let decoded = api::decode_response(&line).expect("decodes");
    assert_eq!(api::encode_response(&decoded), line);
}

#[test]
fn version_skew_is_rejected_symmetrically() {
    // A v2 client line is refused by this build's decoder on both sides.
    let line = r#"{"type":"place","schema_version":2,"id":1}"#;
    assert!(matches!(
        api::decode_request(line),
        Err(EagleError::SchemaVersion { found: 2, expected: 1 })
    ));
    let line = r#"{"type":"place_result","schema_version":2,"id":1}"#;
    assert!(matches!(
        api::decode_response(line),
        Err(EagleError::SchemaVersion { found: 2, expected: 1 })
    ));
}
