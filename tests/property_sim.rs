//! Property-based tests of the simulator and placement invariants over random DAGs
//! and random placements.

use eagle::devsim::{DeviceId, Machine, Placement, SimOutcome};
use eagle::opgraph::{OpGraph, OpKind, OpNode, Phase};
use proptest::prelude::*;

/// Builds a random DAG: `n` ops, each with edges from up to 3 earlier ops
/// (guaranteeing acyclicity by construction).
fn arb_graph() -> impl Strategy<Value = OpGraph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let kinds = [
            OpKind::Conv2d,
            OpKind::MatMul,
            OpKind::Elementwise,
            OpKind::Softmax,
            OpKind::Input,
            OpKind::Concat,
        ];
        let mut g = OpGraph::new("random");
        for i in 0..n {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let id = g.add_node(
                OpNode::new(format!("op{i}"), kind, Phase::Forward)
                    .with_flops(rng.gen_range(0.0..1e9))
                    .with_out_bytes(rng.gen_range(0..4u64 << 20))
                    .with_act_bytes(rng.gen_range(0..1u64 << 20)),
            );
            let preds = rng.gen_range(0..=3usize.min(i));
            for _ in 0..preds {
                let p = rng.gen_range(0..i);
                g.add_edge(eagle::opgraph::OpId(p as u32), id);
            }
        }
        g
    })
}

fn arb_placement(n: usize) -> impl Strategy<Value = Placement> {
    proptest::collection::vec(0u8..5, n).prop_map(|v| {
        Placement::new(v.into_iter().map(DeviceId).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn makespan_bounds_hold((g, p) in arb_graph().prop_flat_map(|g| {
        let n = g.len();
        (Just(g), arb_placement(n))
    })) {
        let m = Machine::paper_machine();
        match eagle::devsim::simulate(&g, &m, &p) {
            SimOutcome::Valid(stats) => {
                // Makespan at least the busiest device's compute time.
                let busiest = stats.device_busy.iter().cloned().fold(0.0, f64::max);
                prop_assert!(stats.step_time + 1e-12 >= busiest);
                // Makespan at least any single op's execution time.
                for id in g.ids() {
                    let node = g.node(id);
                    let t = m.exec_time(node.kind, node.flops, p.device(id));
                    prop_assert!(stats.step_time + 1e-12 >= t);
                }
                // Comm accounting consistent with transfer count.
                if stats.num_transfers == 0 {
                    prop_assert!(stats.comm_time == 0.0);
                } else {
                    prop_assert!(stats.comm_time > 0.0);
                }
            }
            SimOutcome::Oom { device, required, capacity } => {
                prop_assert!(required > capacity);
                let mem = p.memory_per_device(&g, &m);
                prop_assert_eq!(mem[device.index()], required);
            }
        }
    }

    #[test]
    fn memory_accounting_partitions_total(g in arb_graph(), devs in proptest::collection::vec(0u8..5, 0..40)) {
        let m = Machine::paper_machine();
        let n = g.len();
        let p = Placement::new((0..n).map(|i| DeviceId(devs.get(i).copied().unwrap_or(1))).collect());
        let mem = p.memory_per_device(&g, &m);
        let total: u64 = mem.iter().sum();
        prop_assert_eq!(total, g.total_bytes());
    }

    #[test]
    fn colocated_placement_beats_or_equals_scatter_on_chains(n in 3usize..20, flops in 1e6f64..1e9) {
        // On a pure chain with non-trivial tensors, any placement that scatters
        // ops across devices pays transfers a single-device placement avoids.
        let mut g = OpGraph::new("chain");
        let mut prev = None;
        for i in 0..n {
            let id = g.add_node(
                OpNode::new(format!("c{i}"), OpKind::MatMul, Phase::Forward)
                    .with_flops(flops)
                    .with_out_bytes(1 << 20),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        let together = eagle::devsim::simulate(&g, &m, &Placement::uniform(n, gpu))
            .step_time()
            .unwrap();
        let gpus = m.gpu_ids();
        let scattered = Placement::new((0..n).map(|i| gpus[i % gpus.len()]).collect());
        let apart = eagle::devsim::simulate(&g, &m, &scattered).step_time().unwrap();
        prop_assert!(apart >= together);
    }

    #[test]
    fn cached_and_uncached_evaluation_agree((g, p) in arb_graph().prop_flat_map(|g| {
        let n = g.len();
        (Just(g), arb_placement(n))
    }), seed in any::<u64>()) {
        use eagle::devsim::{Environment, MeasureConfig};
        let m = Machine::paper_machine();
        // Noise-free protocol isolates what the cache stores: the OOM verdict
        // and the noiseless step time must be identical with and without it.
        let cfg = MeasureConfig {
            noise_sigma: 0.0,
            ..MeasureConfig::default()
        };
        let mut cached = Environment::builder(g.clone(), m.clone())
            .measure(cfg.clone())
            .seed(seed)
            .build()
            .expect("valid cached environment");
        let mut uncached = Environment::builder(g.clone(), m.clone())
            .measure(cfg)
            .seed(seed)
            .cache_capacity(0)
            .build()
            .expect("valid uncached environment");
        // Evaluate twice: the second cached evaluation is a guaranteed hit.
        for round in 0..2 {
            let a = cached.evaluate(&p);
            let b = uncached.evaluate(&p);
            prop_assert_eq!(a.step_time.is_some(), b.step_time.is_some(),
                "round {}: validity must not depend on the cache", round);
            prop_assert_eq!(a.step_time, b.step_time,
                "round {}: noiseless step time must not depend on the cache", round);
        }
        prop_assert_eq!(cached.snapshot().cache.hits, 1);
        prop_assert_eq!(uncached.snapshot().cache.hits, 0);
        // And the pure simulation agrees with what the hit returned.
        let base = cached.simulate_base(&p);
        prop_assert_eq!(base.step_time(), cached.evaluate(&p).step_time);
    }

    #[test]
    fn group_decode_is_consistent(n in 1usize..50, k in 1usize..8) {
        // Placement::from_groups assigns exactly group_devices[group_of[i]].
        let group_of: Vec<usize> = (0..n).map(|i| i % k).collect();
        let group_devices: Vec<DeviceId> = (0..k).map(|g| DeviceId((g % 5) as u8)).collect();
        let p = Placement::from_groups(&group_of, &group_devices);
        for i in 0..n {
            prop_assert_eq!(p.devices()[i], group_devices[group_of[i]]);
        }
    }
}
