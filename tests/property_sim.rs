//! Property-based tests of the simulator and placement invariants over random DAGs
//! and random placements — including the differential-testing oracle that
//! cross-checks the event engine ([`eagle::devsim::simulate`]) against the
//! trace scheduler ([`eagle::devsim::trace::trace`]) and an independent
//! brute-force reference, plus the causal per-link booking properties.

use eagle::devsim::{DeviceId, Machine, Placement, SimOutcome};
use eagle::opgraph::{GraphGen, GraphGenConfig, OpGraph, OpId, OpKind, OpNode, Phase};
use proptest::prelude::*;

/// Case count for the differential-oracle slices. The default 256 is the fast
/// PR-gating slice; the nightly CI job sets `EAGLE_ORACLE_CASES=10000` (and
/// runs in release mode) to sweep a 10k+-case corpus.
fn oracle_cases() -> u32 {
    std::env::var("EAGLE_ORACLE_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(256)
}

/// Builds a random DAG: `n` ops, each with edges from up to 3 earlier ops
/// (guaranteeing acyclicity by construction).
fn arb_graph() -> impl Strategy<Value = OpGraph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let kinds = [
            OpKind::Conv2d,
            OpKind::MatMul,
            OpKind::Elementwise,
            OpKind::Softmax,
            OpKind::Input,
            OpKind::Concat,
        ];
        let mut g = OpGraph::new("random");
        for i in 0..n {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let id = g.add_node(
                OpNode::new(format!("op{i}"), kind, Phase::Forward)
                    .with_flops(rng.gen_range(0.0..1e9))
                    .with_out_bytes(rng.gen_range(0..4u64 << 20))
                    .with_act_bytes(rng.gen_range(0..1u64 << 20)),
            );
            let preds = rng.gen_range(0..=3usize.min(i));
            for _ in 0..preds {
                let p = rng.gen_range(0..i);
                g.add_edge(eagle::opgraph::OpId(p as u32), id);
            }
        }
        g
    })
}

fn arb_placement(n: usize) -> impl Strategy<Value = Placement> {
    proptest::collection::vec(0u8..5, n)
        .prop_map(|v| Placement::new(v.into_iter().map(DeviceId).collect()))
}

/// Builds a random machine: the paper CPU plus 1–4 GPUs, with randomized link
/// bandwidth/latency and launch overheads (memory kept at paper scale so the
/// small random graphs never OOM and the differential check always schedules).
fn arb_machine() -> impl Strategy<Value = Machine> {
    (1usize..=4, 1u64..=24, 1u64..=1000, 0u64..=100).prop_map(
        |(gpus, gb_per_s, latency_us, launch_us)| {
            let gib = 1u64 << 30;
            let mut b = Machine::builder().cpu(0.6e12, 125 * gib, 10e-6);
            for _ in 0..gpus {
                b = b.gpu(9.3e12, 16 * gib, launch_us as f64 * 1e-6);
            }
            b.link_bandwidth(gb_per_s as f64 * 1e9)
                .transfer_latency(latency_us as f64 * 1e-6)
                .build()
                .expect("randomized machine stays in the builder's valid range")
        },
    )
}

/// (graph, machine, placement) triple for the differential oracle.
fn arb_case() -> impl Strategy<Value = (OpGraph, Machine, Placement)> {
    (arb_graph(), arb_machine()).prop_flat_map(|(g, m)| {
        let n = g.len();
        let nd = m.num_devices() as u8;
        (
            Just(g),
            Just(m),
            proptest::collection::vec(0..nd, n)
                .prop_map(|v| Placement::new(v.into_iter().map(DeviceId).collect())),
        )
    })
}

/// GraphGen-backed oracle case: a realistic generated *training* graph
/// (backward mirroring, colocation, wide fan-outs, shared variables — none of
/// which `arb_graph` produces) well beyond its 40-op cap, on a random machine
/// with a random placement.
fn arb_graphgen_case() -> impl Strategy<Value = (OpGraph, Machine, Placement)> {
    ((48usize..=160), any::<u64>(), arb_machine()).prop_flat_map(|(target, seed, m)| {
        let cfg = GraphGenConfig {
            target_ops: target,
            fan_out: (2, 4),
            depth: (1, 2),
            batch: (1, 4),
            // Spans OOM-inducing pressures too: the oracle checks the OOM
            // gate agreement as well as valid schedules.
            memory_pressure: (0.25, 64.0),
            ..GraphGenConfig::default()
        };
        let g = GraphGen::new(cfg).expect("oracle generator config is valid").sample(seed);
        let n = g.len();
        let nd = m.num_devices() as u8;
        (
            Just(g),
            Just(m),
            proptest::collection::vec(0..nd, n)
                .prop_map(|v| Placement::new(v.into_iter().map(DeviceId).collect())),
        )
    })
}

/// A transfer booked by the brute-force reference scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RefTransfer {
    producer: u32,
    src: u8,
    dst: u8,
    start: f64,
    finish: f64,
}

/// Brute-force reference scheduler: no event queue, no heaps — a fixpoint scan
/// over op states at each timestamp, advancing time by a linear search for the
/// next compute finish or transfer arrival. Deliberately structured nothing
/// like `eagle::devsim::engine` so a shared bug is unlikely; semantics are the
/// documented contract (DESIGN.md "Simulator event model"): finishes before
/// arrivals at equal times, finishes in op-index order, causal link bookings,
/// per-destination shipment dedup, idle devices picking min `(ready, index)`.
fn reference_schedule(g: &OpGraph, m: &Machine, p: &Placement) -> (f64, Vec<RefTransfer>) {
    #[derive(Debug, Clone, Copy)]
    enum St {
        Waiting,
        Ready(f64),
        Running(f64),
        Done,
    }
    let n = g.len();
    let nd = m.num_devices();
    let mut st: Vec<St> = (0..n)
        .map(|i| if g.preds(OpId(i as u32)).is_empty() { St::Ready(0.0) } else { St::Waiting })
        .collect();
    let mut delivered = vec![0usize; n];
    let mut arrival = vec![0.0f64; n];
    let mut busy: Vec<bool> = vec![false; nd];
    let mut link_free = vec![0.0f64; nd * nd];
    // (producer, dst, arrive time, consumed?)
    let mut inflight: Vec<(u32, usize, f64, bool)> = Vec::new();
    let mut transfers: Vec<RefTransfer> = Vec::new();
    let mut makespan = 0.0f64;
    let mut now = 0.0f64;
    let mut done = 0usize;

    let deliver = |s: OpId, t: f64, st: &mut [St], delivered: &mut [usize], arrival: &mut [f64]| {
        let i = s.index();
        delivered[i] += 1;
        arrival[i] = arrival[i].max(t);
        if delivered[i] == g.preds(s).len() {
            st[i] = St::Ready(arrival[i]);
        }
    };

    while done < n {
        // Fixpoint at `now`: finishes (ascending op index), arrivals, starts.
        loop {
            let mut changed = false;
            let finishing: Vec<usize> =
                (0..n).filter(|&i| matches!(st[i], St::Running(f) if f == now)).collect();
            for o in finishing {
                // (0..n) iteration order is already ascending op index.
                st[o] = St::Done;
                done += 1;
                changed = true;
                let id = OpId(o as u32);
                let dev = p.device(id);
                busy[dev.index()] = false;
                let mut sent_to = vec![false; nd];
                for &succ in g.succs(id) {
                    let sdev = p.device(succ);
                    if sdev == dev {
                        deliver(succ, now, &mut st, &mut delivered, &mut arrival);
                    } else if !sent_to[sdev.index()] {
                        sent_to[sdev.index()] = true;
                        let link = &mut link_free[dev.index() * nd + sdev.index()];
                        let start = now.max(*link);
                        let dur = m.transfer_time(g.node(id).out_bytes);
                        *link = start + dur;
                        transfers.push(RefTransfer {
                            producer: id.0,
                            src: dev.0,
                            dst: sdev.0,
                            start,
                            finish: start + dur,
                        });
                        inflight.push((id.0, sdev.index(), start + dur, false));
                    }
                }
            }
            for entry in inflight.iter_mut() {
                let (producer, dst, arrive, consumed) = *entry;
                if consumed || arrive != now {
                    continue;
                }
                entry.3 = true;
                changed = true;
                for &succ in g.succs(OpId(producer)) {
                    if p.device(succ).index() == dst {
                        deliver(succ, now, &mut st, &mut delivered, &mut arrival);
                    }
                }
            }
            for (d, busy_d) in busy.iter_mut().enumerate() {
                if *busy_d {
                    continue;
                }
                // Min (ready time, op index) among startable ops on device d.
                let pick = (0..n)
                    .filter_map(|i| match st[i] {
                        St::Ready(rt) if p.device(OpId(i as u32)).index() == d && rt <= now => {
                            Some((rt, i))
                        }
                        _ => None,
                    })
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                if let Some((_, o)) = pick {
                    let id = OpId(o as u32);
                    let node = g.node(id);
                    let exec = m.exec_time(node.kind, node.flops, p.device(id));
                    st[o] = St::Running(now + exec);
                    *busy_d = true;
                    makespan = makespan.max(now + exec);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut next = f64::INFINITY;
        for s in &st {
            if let St::Running(f) = s {
                next = next.min(*f);
            }
        }
        for &(_, _, arrive, consumed) in &inflight {
            if !consumed {
                next = next.min(arrive);
            }
        }
        if !next.is_finite() {
            break;
        }
        now = next;
    }
    assert_eq!(done, n, "reference scheduler must complete the DAG");
    (makespan, transfers)
}

/// Shared body of the differential oracle: the event engine, its trace
/// projection, and the brute-force reference must agree exactly — same OOM
/// verdict, same makespan (bitwise), same booked transfers.
fn differential_check(g: &OpGraph, m: &Machine, p: &Placement) -> Result<(), TestCaseError> {
    let sim = eagle::devsim::simulate(g, m, p);
    let tr = eagle::devsim::trace::trace(g, m, p);
    match sim {
        SimOutcome::Oom { .. } => prop_assert!(tr.is_none(), "OOM gates must agree"),
        SimOutcome::Valid(stats) => {
            let tr = tr.expect("trace exists whenever simulate is valid");
            // Engine projections agree bit-for-bit.
            prop_assert_eq!(tr.step_time, stats.step_time);
            prop_assert_eq!(tr.transfers.len(), stats.num_transfers);
            prop_assert_eq!(tr.ops.len(), g.len());
            let comm: f64 = tr.transfers.iter().map(|t| t.finish - t.start).sum();
            prop_assert!((comm - stats.comm_time).abs() <= 1e-12 * comm.max(1.0));

            // The independent brute-force reference agrees exactly.
            let (ref_makespan, ref_transfers) = reference_schedule(g, m, p);
            prop_assert_eq!(ref_makespan, stats.step_time, "engine vs reference makespan");
            prop_assert_eq!(ref_transfers.len(), tr.transfers.len());
            let mut a: Vec<(u32, u8, u8, u64, u64)> = tr
                .transfers
                .iter()
                .map(|t| (t.producer, t.src, t.dst, t.start.to_bits(), t.finish.to_bits()))
                .collect();
            let mut b: Vec<(u32, u8, u8, u64, u64)> = ref_transfers
                .iter()
                .map(|t| (t.producer, t.src, t.dst, t.start.to_bits(), t.finish.to_bits()))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "engine vs reference booked transfers");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn makespan_bounds_hold((g, p) in arb_graph().prop_flat_map(|g| {
        let n = g.len();
        (Just(g), arb_placement(n))
    })) {
        let m = Machine::paper_machine();
        match eagle::devsim::simulate(&g, &m, &p) {
            SimOutcome::Valid(stats) => {
                // Makespan at least the busiest device's compute time.
                let busiest = stats.device_busy.iter().cloned().fold(0.0, f64::max);
                prop_assert!(stats.step_time + 1e-12 >= busiest);
                // Makespan at least any single op's execution time.
                for id in g.ids() {
                    let node = g.node(id);
                    let t = m.exec_time(node.kind, node.flops, p.device(id));
                    prop_assert!(stats.step_time + 1e-12 >= t);
                }
                // Comm accounting consistent with transfer count.
                if stats.num_transfers == 0 {
                    prop_assert!(stats.comm_time == 0.0);
                } else {
                    prop_assert!(stats.comm_time > 0.0);
                }
            }
            SimOutcome::Oom { device, required, capacity } => {
                prop_assert!(required > capacity);
                let mem = p.memory_per_device(&g, &m);
                prop_assert_eq!(mem[device.index()], required);
            }
        }
    }

    #[test]
    fn memory_accounting_partitions_total(g in arb_graph(), devs in proptest::collection::vec(0u8..5, 0..40)) {
        let m = Machine::paper_machine();
        let n = g.len();
        let p = Placement::new((0..n).map(|i| DeviceId(devs.get(i).copied().unwrap_or(1))).collect());
        let mem = p.memory_per_device(&g, &m);
        let total: u64 = mem.iter().sum();
        prop_assert_eq!(total, g.total_bytes());
    }

    #[test]
    fn colocated_placement_beats_or_equals_scatter_on_chains(n in 3usize..20, flops in 1e6f64..1e9) {
        // On a pure chain with non-trivial tensors, any placement that scatters
        // ops across devices pays transfers a single-device placement avoids.
        let mut g = OpGraph::new("chain");
        let mut prev = None;
        for i in 0..n {
            let id = g.add_node(
                OpNode::new(format!("c{i}"), OpKind::MatMul, Phase::Forward)
                    .with_flops(flops)
                    .with_out_bytes(1 << 20),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        let together = eagle::devsim::simulate(&g, &m, &Placement::uniform(n, gpu))
            .step_time()
            .unwrap();
        let gpus = m.gpu_ids();
        let scattered = Placement::new((0..n).map(|i| gpus[i % gpus.len()]).collect());
        let apart = eagle::devsim::simulate(&g, &m, &scattered).step_time().unwrap();
        prop_assert!(apart >= together);
    }

    #[test]
    fn cached_and_uncached_evaluation_agree((g, p) in arb_graph().prop_flat_map(|g| {
        let n = g.len();
        (Just(g), arb_placement(n))
    }), seed in any::<u64>()) {
        use eagle::devsim::{Environment, MeasureConfig};
        let m = Machine::paper_machine();
        // Noise-free protocol isolates what the cache stores: the OOM verdict
        // and the noiseless step time must be identical with and without it.
        let cfg = MeasureConfig {
            noise_sigma: 0.0,
            ..MeasureConfig::default()
        };
        let mut cached = Environment::builder(g.clone(), m.clone())
            .measure(cfg.clone())
            .seed(seed)
            .build()
            .expect("valid cached environment");
        let mut uncached = Environment::builder(g.clone(), m.clone())
            .measure(cfg)
            .seed(seed)
            .cache_capacity(0)
            .build()
            .expect("valid uncached environment");
        // Evaluate twice: the second cached evaluation is a guaranteed hit.
        for round in 0..2 {
            let a = cached.evaluate(&p);
            let b = uncached.evaluate(&p);
            prop_assert_eq!(a.step_time.is_some(), b.step_time.is_some(),
                "round {}: validity must not depend on the cache", round);
            prop_assert_eq!(a.step_time, b.step_time,
                "round {}: noiseless step time must not depend on the cache", round);
        }
        prop_assert_eq!(cached.snapshot().cache.hits, 1);
        prop_assert_eq!(uncached.snapshot().cache.hits, 0);
        // And the pure simulation agrees with what the hit returned.
        let base = cached.simulate_base(&p);
        prop_assert_eq!(base.step_time(), cached.evaluate(&p).step_time);
    }

    #[test]
    fn group_decode_is_consistent(n in 1usize..50, k in 1usize..8) {
        // Placement::from_groups assigns exactly group_devices[group_of[i]].
        let group_of: Vec<usize> = (0..n).map(|i| i % k).collect();
        let group_devices: Vec<DeviceId> = (0..k).map(|g| DeviceId((g % 5) as u8)).collect();
        let p = Placement::from_groups(&group_of, &group_devices);
        for i in 0..n {
            prop_assert_eq!(p.devices()[i], group_devices[group_of[i]]);
        }
    }
}

// The differential-testing oracle: the event engine, the trace scheduler, and
// the brute-force reference must agree exactly — same makespan, same booked
// transfers — and every schedule must satisfy the causal-ordering contract.
// 256 cases as required by the oracle's acceptance bar.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sim_trace_and_reference_agree((g, m, p) in arb_case()) {
        differential_check(&g, &m, &p)?;
    }

    #[test]
    fn per_link_bookings_are_causal_and_fifo((g, m, p) in arb_case()) {
        let Some(tr) = eagle::devsim::trace::trace(&g, &m, &p) else { return Ok(()) };
        let finish_of: std::collections::HashMap<u32, f64> =
            tr.ops.iter().map(|o| (o.op, o.finish)).collect();
        let mut per_link: std::collections::HashMap<(u8, u8), Vec<(f64, f64)>> =
            Default::default();
        for t in &tr.transfers {
            // Causality: a transfer starts no earlier than its producer
            // finishes, and takes positive time.
            prop_assert!(t.start >= finish_of[&t.producer], "non-causal booking: {:?}", t);
            prop_assert!(t.finish > t.start);
            prop_assert!(t.src != t.dst, "same-device data never ships");
            // Booking order (vector order) is per-link FIFO: the engine books
            // each link at causal start times, so within a link the intervals
            // appear sorted and disjoint without re-sorting.
            per_link.entry((t.src, t.dst)).or_default().push((t.start, t.finish));
        }
        for ((src, dst), intervals) in per_link {
            for w in intervals.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].0,
                    "link {}->{} starts must be non-decreasing: {:?}",
                    src, dst, w
                );
                prop_assert!(
                    w[1].0 >= w[0].1,
                    "link {}->{} bookings must not overlap: {:?}",
                    src, dst, w
                );
            }
        }
    }

    #[test]
    fn engine_paths_agree_on_the_paper_machine((g, p) in arb_graph().prop_flat_map(|g| {
        let n = g.len();
        (Just(g), arb_placement(n))
    })) {
        // Same differential check pinned to the paper machine (the one every
        // training run uses), complementing the random machines above.
        let m = Machine::paper_machine();
        if let SimOutcome::Valid(stats) = eagle::devsim::simulate(&g, &m, &p) {
            let (ref_makespan, ref_transfers) = reference_schedule(&g, &m, &p);
            prop_assert_eq!(ref_makespan, stats.step_time);
            prop_assert_eq!(ref_transfers.len(), stats.num_transfers);
        }
    }
}

// The scaled-up GraphGen-backed oracle: the same exact-agreement contract over
// realistic generated training graphs (48-160 target ops, backward mirroring,
// wide fan-outs, shared variables) far beyond arb_graph's 40-op cap.
// `EAGLE_ORACLE_CASES` tunes the sweep: 256 by default (PR-gating), 10000+ in
// the nightly job.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(oracle_cases()))]

    #[test]
    fn graphgen_sim_trace_and_reference_agree((g, m, p) in arb_graphgen_case()) {
        differential_check(&g, &m, &p)?;
    }
}

// GraphGen's own contract, property-tested across random configs and seeds:
// determinism (same seed → bit-identical serialized graph) and validity
// (every invariant of `GraphGen::validate` holds on every sample).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graphgen_is_seed_deterministic_and_valid(
        seed in any::<u64>(),
        target in 32usize..=512,
        fan_lo in 1usize..=3,
        fan_span in 0usize..=4,
        depth_lo in 1usize..=2,
        depth_span in 0usize..=3,
        training in any::<bool>(),
    ) {
        let cfg = GraphGenConfig {
            target_ops: target,
            fan_out: (fan_lo, fan_lo + fan_span),
            depth: (depth_lo, depth_lo + depth_span),
            training,
            ..GraphGenConfig::default()
        };
        let gen = GraphGen::new(cfg).expect("constructed config is valid");
        let a = gen.sample(seed);
        let b = gen.sample(seed);
        prop_assert_eq!(a.to_json(), b.to_json(), "same seed must be bit-identical");
        if let Err(e) = GraphGen::validate(&a) {
            return Err(TestCaseError::fail(format!("seed {seed}: invalid sample: {e}")));
        }
        // Spot-check downstream usability: topo order exists and features are
        // finite for every sampled graph, not just the unit-test sweep.
        prop_assert_eq!(a.topo_order().len(), a.len());
    }
}

/// Regression corpus: minimized (graph, machine, placement) shapes that once
/// disagreed or crashed somewhere in the engine/trace/reference triangle, kept
/// alive as plain unit checks independent of the random sweeps.
#[test]
fn oracle_regression_corpus() {
    // Shared-variable fan-out: one variable read by two consumers placed on
    // two different devices — exercises per-destination shipment dedup on the
    // smallest graph that has it.
    let mut g = OpGraph::new("regress/shared-var");
    let v = g.add_node(
        OpNode::new("w", OpKind::Variable, Phase::Forward).with_out_bytes(1 << 20).with_flops(0.0),
    );
    let a = g.add_node(
        OpNode::new("a", OpKind::MatMul, Phase::Forward).with_flops(1e8).with_out_bytes(1 << 10),
    );
    let b = g.add_node(
        OpNode::new("b", OpKind::MatMul, Phase::Forward).with_flops(1e8).with_out_bytes(1 << 10),
    );
    g.add_edge(v, a);
    g.add_edge(v, b);
    let m = Machine::paper_machine();
    let gpus = m.gpu_ids();
    let p = Placement::new(vec![gpus[0], gpus[0], gpus[1]]);
    differential_check(&g, &m, &p).unwrap();

    // Zero-cost ops at time 0: every op free, everything placed on one device,
    // makespans degenerate to launch overheads only.
    let mut g = OpGraph::new("regress/zero-cost");
    let x = g.add_node(OpNode::new("x", OpKind::Input, Phase::Forward));
    let y = g.add_node(OpNode::new("y", OpKind::Reshape, Phase::Forward));
    g.add_edge(x, y);
    let p = Placement::new(vec![gpus[0], gpus[1]]);
    differential_check(&g, &m, &p).unwrap();
}
