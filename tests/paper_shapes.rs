//! Cross-crate assertions of the paper's qualitative claims ("shapes"): which
//! placements fit, who must beat whom, and how the calibrated benchmarks behave.
//! These are the invariants EXPERIMENTS.md relies on.

use eagle::devsim::{predefined, Benchmark, Environment, Machine, MeasureConfig, SimOutcome};

#[test]
fn table4_static_columns() {
    let machine = Machine::paper_machine();

    // Inception-V3: fits one GPU, single-GPU == expert == 0.071 by calibration.
    let inception = Benchmark::InceptionV3.graph_for(&machine);
    let single = eagle::devsim::simulate(
        &inception,
        &machine,
        &predefined::single_gpu(&inception, &machine),
    )
    .step_time()
    .expect("inception fits one GPU");
    assert!((single - 0.071).abs() < 0.002, "calibrated to the paper's 0.071, got {single}");
    let expert = predefined::human_expert(&inception, &machine).expect("expert exists");
    let expert_t = eagle::devsim::simulate(&inception, &machine, &expert).step_time().unwrap();
    assert!((expert_t - single).abs() < 0.002, "expert == single GPU for inception");

    // GNMT: single GPU OOM, expert valid at the paper's 1.661.
    let gnmt = Benchmark::Gnmt.graph_for(&machine);
    assert!(matches!(
        eagle::devsim::simulate(&gnmt, &machine, &predefined::single_gpu(&gnmt, &machine)),
        SimOutcome::Oom { .. }
    ));
    let gnmt_expert = predefined::human_expert(&gnmt, &machine).expect("expert exists");
    let gnmt_t = eagle::devsim::simulate(&gnmt, &machine, &gnmt_expert).step_time().unwrap();
    assert!((gnmt_t - 1.661).abs() < 0.05, "calibrated to 1.661, got {gnmt_t}");

    // BERT: single GPU OOM, no expert, layer split valid.
    let bert = Benchmark::BertBase.graph_for(&machine);
    assert!(matches!(
        eagle::devsim::simulate(&bert, &machine, &predefined::single_gpu(&bert, &machine)),
        SimOutcome::Oom { .. }
    ));
    assert!(predefined::human_expert(&bert, &machine).is_none());
    let split = predefined::bert_layer_split(&bert, &machine);
    assert!(eagle::devsim::simulate(&bert, &machine, &split).step_time().is_some());
}

#[test]
fn better_placements_exist_below_the_expert() {
    // The RL headroom the paper exploits (EAGLE beats the GNMT expert by 17%) must
    // exist in the calibrated landscape. Certify it with a short deterministic
    // hill-climb over (name-scope, phase)-structured groups seeded from the expert.
    use eagle::devsim::{DeviceId, Placement};
    use rand::{Rng, SeedableRng};

    let machine = Machine::paper_machine();
    let graph = Benchmark::Gnmt.graph_for(&machine);
    let expert = predefined::human_expert(&graph, &machine).unwrap();
    let expert_t = eagle::devsim::simulate(&graph, &machine, &expert).step_time().unwrap();

    // Groups: (scope hash bucket, phase) — mirrors what the learned grouper can
    // express from its name-scope features.
    let mut scope_ids: std::collections::HashMap<String, usize> = Default::default();
    let mut group_of = Vec::with_capacity(graph.len());
    for id in graph.ids() {
        let node = graph.node(id);
        let name = node
            .name
            .strip_prefix("grad/")
            .or_else(|| node.name.strip_prefix("update/"))
            .unwrap_or(&node.name);
        let scope = name.rsplit_once('/').map(|(s, _)| s).unwrap_or(name).to_string();
        let next = scope_ids.len();
        let sid = *scope_ids.entry(scope).or_insert(next);
        let phase = match node.phase {
            eagle::opgraph::Phase::Forward => 0usize,
            eagle::opgraph::Phase::Backward => 1,
            eagle::opgraph::Phase::Update => 2,
        };
        group_of.push(sid * 3 + phase);
    }
    let k = group_of.iter().max().unwrap() + 1;

    // Initialize each group's device from the expert's majority vote.
    let nd = machine.num_devices();
    let mut votes = vec![vec![0usize; nd]; k];
    for (i, &g) in group_of.iter().enumerate() {
        votes[g][expert.devices()[i].index()] += 1;
    }
    let mut gd: Vec<DeviceId> = votes
        .iter()
        .map(|v| DeviceId(v.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0 as u8))
        .collect();

    let eval = |gd: &[DeviceId]| -> f64 {
        eagle::devsim::simulate(&graph, &machine, &Placement::from_groups(&group_of, gd))
            .step_time()
            .unwrap_or(f64::INFINITY)
    };
    let mut best = eval(&gd);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    for _ in 0..3000 {
        let gi = rng.gen_range(0..k);
        let old = gd[gi];
        gd[gi] = DeviceId(rng.gen_range(0..nd as u8));
        let t = eval(&gd);
        if t < best {
            best = t;
        } else {
            gd[gi] = old;
        }
    }
    assert!(
        best < expert_t * 0.95,
        "scope-structured search must find >5% headroom below the expert: {best} vs {expert_t}"
    );
}

#[test]
fn environment_wall_clock_reflects_measurement_cost() {
    // The paper: "the average time of evaluating a random placement with 10 steps
    // of the NMT model is about 1 minute". Our simulated wall-clock must be in
    // that order of magnitude for good GNMT placements.
    let machine = Machine::paper_machine();
    let graph = Benchmark::Gnmt.graph_for(&machine);
    let mut env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::default())
        .seed(9)
        .build()
        .expect("gnmt environment is valid");
    let expert = predefined::human_expert(&graph, &machine).unwrap();
    let m = env.evaluate(&expert);
    assert!(m.step_time.is_some());
    assert!(
        (30.0..600.0).contains(&m.wall_cost),
        "one evaluation should cost minutes of simulated wall-clock, got {}",
        m.wall_cost
    );
}

#[test]
fn benchmark_graphs_have_paper_scale() {
    // Op counts grow small -> large as in the paper's "small, large, very large".
    let machine = Machine::paper_machine();
    let i = Benchmark::InceptionV3.graph_for(&machine).len();
    let g = Benchmark::Gnmt.graph_for(&machine).len();
    let b = Benchmark::BertBase.graph_for(&machine);
    assert!(i < g, "inception ({i}) smaller than gnmt ({g})");
    assert!(g < 10 * b.len(), "same order of magnitude");
    // BERT's memory demands exceed a single GPU by a wide margin (paper: needs
    // more than 16 GB even at batch 1 for BERT-Large; our BERT-Base at batch 24).
    assert!(b.total_bytes() > 20 * (1u64 << 30));
}
