//! End-to-end training runs through the public API of the umbrella crate: every
//! agent kind trains on a calibrated benchmark graph, finds a valid placement, and
//! behaves deterministically under a fixed seed.

use eagle::core::{
    AgentScale, Algo, EagleAgent, FixedGroupAgent, GraphSource, HpAgent, PlacerKind, Trainer,
    TrainerConfig,
};
use eagle::devsim::{Benchmark, Machine, MeasureConfig};
use eagle::partition::{metis_like::MetisLike, Partitioner};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn inception_trainer(seed: u64, cfg: TrainerConfig) -> (eagle::opgraph::OpGraph, Machine, Trainer) {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(seed)
        .build()
        .expect("inception trainer config is valid");
    (graph, machine, trainer)
}

#[test]
fn eagle_trains_on_calibrated_inception() {
    let (graph, machine, trainer) = inception_trainer(1, TrainerConfig::paper(Algo::Ppo, 60));
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    let t = result.final_step_time.expect("valid placement found");
    // Single GPU is calibrated to 0.071; anything within 3x certifies the agent is
    // producing sane placements (random scatter costs ~0.3s+).
    assert!(t < 0.21, "per-step time {t} too far from the single-GPU band");
    assert_eq!(result.curve.points.len(), 60);
}

#[test]
fn hp_trains_and_reports_grouping_actions() {
    let (graph, machine, trainer) = inception_trainer(2, TrainerConfig::paper(Algo::Ppo, 30));
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let agent = HpAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    assert!(result.final_step_time.is_some());
    assert_eq!(result.samples, 30);
}

#[test]
fn post_trains_with_ppo_ce() {
    let mut cfg = TrainerConfig::paper(Algo::PpoCe, 60);
    cfg.ce_interval = 20;
    let (graph, machine, trainer) = inception_trainer(3, cfg);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let k = AgentScale::tiny().num_groups;
    let group_of = MetisLike::default().partition(&graph, k);
    let agent = FixedGroupAgent::post(
        &mut params,
        &graph,
        &machine,
        group_of,
        k,
        AgentScale::tiny(),
        &mut rng,
    );
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    assert!(result.final_step_time.is_some());
}

#[test]
fn fixed_group_agent_with_gcn_placer_trains() {
    let (graph, machine, trainer) = inception_trainer(4, TrainerConfig::paper(Algo::Ppo, 30));
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let k = AgentScale::tiny().num_groups;
    let group_of = MetisLike::default().partition(&graph, k);
    let agent = FixedGroupAgent::new(
        &mut params,
        "gcn",
        &graph,
        &machine,
        group_of,
        k,
        PlacerKind::Gcn,
        AgentScale::tiny(),
        &mut rng,
    );
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    assert!(result.final_step_time.is_some());
}

#[test]
fn training_is_deterministic_for_fixed_seeds() {
    let run = || {
        let (graph, machine, trainer) = inception_trainer(5, TrainerConfig::paper(Algo::Ppo, 30));
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
        let result = trainer.train(&agent, &mut params).expect("training run succeeds");
        (result.final_step_time, result.num_invalid, result.curve.points.last().unwrap().wall_clock)
    };
    assert_eq!(run(), run(), "same seeds must reproduce bit-identical runs");
}

#[test]
fn eagle_curve_tracks_environment_bookkeeping() {
    let (graph, machine, trainer) = inception_trainer(6, TrainerConfig::paper(Algo::Ppo, 40));
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    // One eval per training sample, all visible through the run telemetry.
    assert_eq!(result.telemetry.evals, 40);
    assert!(result.telemetry.sim_wall_clock > 0.0);
    assert_eq!(result.curve.num_invalid(), result.num_invalid);
}
