//! End-to-end test of the placement daemon: a real TCP server, concurrent
//! clients, wave coalescing, bit-identical results vs the direct in-process
//! decode path, typed error replies, and policy hot-reload.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eagle::api::{ErrorCode, PlaceRequest, API_SCHEMA_VERSION};
use eagle::core::{AgentScale, EagleAgent, PlacementAgent};
use eagle::devsim::{simulate, Benchmark, Machine};
use eagle::obs::Recorder;
use eagle::opgraph::OpGraph;
use eagle::rl::{fork_streams, StochasticPolicy};
use eagle::serve::{publish_state, untrained_state, Client, PolicyStore, Server, ServerConfig};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;

/// A fresh store directory seeded with one tiny-scale inception policy.
fn seeded_store(name: &str, graph: &OpGraph, machine: &Machine) -> (std::path::PathBuf, String) {
    let root = std::env::temp_dir().join("eagle-serve-e2e").join(name);
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let state = untrained_state(graph, machine, AgentScale::tiny(), 1).expect("fabricate state");
    let version = publish_state(&root, "inception_v3", "tiny", &state).expect("publish");
    (root, version)
}

fn start_server(root: &std::path::Path) -> Server {
    start_server_with(root, ServerConfig::default())
}

fn start_server_with(root: &std::path::Path, config: ServerConfig) -> Server {
    // One recorder across store and router, as the daemon binary wires it, so
    // `serve.policy_*` and `serve.requests` land in the same place.
    let recorder = Recorder::new();
    let store = Arc::new(PolicyStore::open(root, recorder.clone()));
    Server::start(config, store, recorder).expect("server starts")
}

/// The router's decode path, replicated in-process: one agent rebuild around
/// the stored parameters, per-request forked RNG streams, batched sample +
/// decode, simulate, best valid candidate (ties to the lowest index).
fn direct_placement(
    root: &std::path::Path,
    graph: &OpGraph,
    machine: &Machine,
    seed: u64,
    candidates: usize,
) -> (Vec<u8>, f64) {
    let store = PolicyStore::open(root, Recorder::new());
    let entry = store.get("inception_v3").expect("policy loads");
    let mut scratch = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let agent = EagleAgent::new_for_inference(&mut scratch, graph, machine, entry.scale, &mut rng);
    let mut master = ChaCha8Rng::seed_from_u64(seed);
    let mut streams = fork_streams(&mut master, agent.rng_draws_per_sample(), candidates);
    let mut refs: Vec<&mut dyn rand::RngCore> =
        streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
    let actions: Vec<Vec<usize>> =
        agent.sample_batch(&entry.params, &mut refs).into_iter().map(|(a, _)| a).collect();
    let placements = agent.decode_batch(&entry.params, &actions);
    let best = placements
        .iter()
        .filter_map(|p| simulate(graph, machine, p).step_time().map(|t| (t, p)))
        .fold(None::<(f64, &eagle::devsim::Placement)>, |best, (t, p)| match best {
            Some((bt, _)) if bt <= t => best,
            _ => Some((t, p)),
        })
        .expect("some candidate is feasible");
    (best.1.devices().iter().map(|d| d.0).collect(), best.0)
}

#[test]
fn daemon_serves_concurrent_clients_with_coalescing() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let (root, version) = seeded_store("concurrent", &graph, &machine);
    let server = start_server(&root);
    let addr = server.local_addr();

    let mut setup = Client::connect(addr).expect("connect");
    let key = setup.register_graph(&graph).expect("register");

    // 8 closed-loop clients, 10 requests each: every reply valid, versioned,
    // and placing every op.
    let ops = graph.len();
    std::thread::scope(|s| {
        for c in 0..8u64 {
            let (key, version) = (key.clone(), version.clone());
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..10u64 {
                    let id = c * 100 + i;
                    let resp = client
                        .place(PlaceRequest::by_key(id, "inception_v3", &key))
                        .expect("place");
                    assert_eq!(resp.schema_version, API_SCHEMA_VERSION);
                    assert_eq!(resp.id, id);
                    assert!(resp.error.is_none(), "unexpected error: {:?}", resp.error);
                    assert_eq!(resp.placement.as_ref().unwrap().len(), ops);
                    assert!(resp.predicted_step_time.unwrap() > 0.0);
                    assert_eq!(resp.policy_version.as_deref(), Some(version.as_str()));
                }
            });
        }
    });

    // Coalescing: 80 requests from 8 concurrent clients must share waves, so
    // the daemon runs strictly fewer forwards (2 per wave) than requests.
    let rec = server.recorder();
    let requests = rec.counter_value("serve.requests");
    let forwards = rec.counter_value("serve.forwards");
    let waves = rec.counter_value("serve.waves");
    assert_eq!(requests, 80);
    assert_eq!(rec.counter_value("serve.errors"), 0);
    assert!(waves < requests, "80 concurrent requests must not get 1 wave each ({waves} waves)");
    assert!(
        forwards < requests,
        "wave batching must keep forwards ({forwards}) below requests ({requests})"
    );
    assert!(rec.histogram("serve.latency_us").is_some());
    assert!(rec.histogram("serve.wave_size").unwrap().max > 1.0, "some wave held > 1 request");

    // Bit-identity: the daemon's reply equals the direct in-process decode
    // path, regardless of what shared its wave above.
    for seed in [3u64, 17] {
        let mut req = PlaceRequest::by_key(seed, "inception_v3", &key);
        req.seed = seed;
        req.candidates = 3;
        let resp = setup.place(req).expect("place");
        let (want_placement, want_time) = direct_placement(&root, &graph, &machine, seed, 3);
        assert_eq!(resp.placement.unwrap(), want_placement, "seed {seed} placement drifted");
        assert_eq!(resp.predicted_step_time.unwrap(), want_time, "seed {seed} time drifted");
    }

    // Shutdown must complete while clients are still connected (handlers are
    // blocked in `read`); a hang here is the regression this pins.
    server.shutdown();
}

#[test]
fn daemon_replies_with_typed_errors() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let (root, _) = seeded_store("errors", &graph, &machine);
    let server = start_server(&root);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let key = client.register_graph(&graph).expect("register");

    // Unknown policy family.
    let resp = client.place(PlaceRequest::by_key(1, "resnet_slim", &key)).expect("reply");
    assert_eq!(resp.error.as_ref().unwrap().code, ErrorCode::UnknownFamily);
    assert!(resp.placement.is_none());

    // Unknown graph key.
    let resp =
        client.place(PlaceRequest::by_key(2, "inception_v3", "ffffffffffffffff")).expect("reply");
    assert_eq!(resp.error.as_ref().unwrap().code, ErrorCode::UnknownGraphKey);

    // Both graph and graph_key set.
    let mut req = PlaceRequest::by_key(3, "inception_v3", &key);
    req.graph = Some(graph.clone());
    let resp = client.place(req).expect("reply");
    assert_eq!(resp.error.as_ref().unwrap().code, ErrorCode::BadRequest);

    // Raw protocol-level garbage: the server answers (never disconnects) with
    // a `place_result` carrying id 0 and a `Protocol` error.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(b"this is not json\n").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).expect("error reply is JSON");
    assert_eq!(v["type"].as_str(), Some("place_result"));
    assert_eq!(v["id"].as_u64(), Some(0));
    assert_eq!(v["error"]["code"].as_str(), Some("Protocol"));

    // Wrong schema version on an otherwise plausible line.
    raw.write_all(b"{\"type\":\"place\",\"schema_version\":2,\"id\":9}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v["error"]["code"].as_str(), Some("SchemaVersion"));

    // The connection survived all of the above, and every error reply —
    // routed (unknown family) or boundary (validation, protocol) — counted.
    let resp = client.place(PlaceRequest::by_key(4, "inception_v3", &key)).expect("reply");
    assert!(resp.error.is_none());
    assert_eq!(server.recorder().counter_value("serve.errors"), 5);
    server.shutdown();
}

#[test]
fn daemon_hot_reloads_policies_without_dropping_requests() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let (root, v1) = seeded_store("reload", &graph, &machine);
    let server = start_server(&root);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let key = client.register_graph(&graph).expect("register");

    let resp = client.place(PlaceRequest::by_key(1, "inception_v3", &key)).expect("place");
    assert_eq!(resp.policy_version.as_deref(), Some(v1.as_str()));

    // Republish from different weights; the checkpoint's content hash changes,
    // so the store reloads on the next `get` (mtime granularity is irrelevant
    // to the content-identity check).
    let state2 = untrained_state(&graph, &machine, AgentScale::tiny(), 2).unwrap();
    let v2 = publish_state(&root, "inception_v3", "tiny", &state2).unwrap();
    assert_ne!(v1, v2, "different weights must yield a different content version");

    // In-flight service continues; within a bounded window replies switch to
    // the new version and never to anything else.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut id = 100u64;
    loop {
        let resp = client.place(PlaceRequest::by_key(id, "inception_v3", &key)).expect("place");
        assert!(resp.error.is_none(), "no request may fail across the swap");
        let got = resp.policy_version.unwrap();
        assert!(got == v1 || got == v2, "unexpected version {got}");
        if got == v2 {
            break;
        }
        assert!(Instant::now() < deadline, "daemon never picked up the republished policy");
        id += 1;
    }
    assert!(server.recorder().counter_value("serve.policy_reloads") >= 1);
    server.shutdown();
}

#[test]
fn daemon_sheds_overload_with_typed_replies_and_bounded_queue() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let (root, _) = seeded_store("overload", &graph, &machine);
    // A deliberately tiny daemon: 4 queue slots, 2-request waves — 16 closed-
    // loop clients are 4x over capacity, so admission must shed.
    let queue_capacity = 4;
    let config = ServerConfig {
        router: eagle::serve::RouterConfig {
            queue_capacity,
            max_wave: 2,
            coalesce: Duration::from_millis(10),
            ..eagle::serve::RouterConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = start_server_with(&root, config);
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).expect("connect");
    let key = setup.register_graph(&graph).expect("register");

    // Every (seed -> placement) a client got back, plus shed/error tallies.
    let outcomes =
        std::sync::Mutex::new((Vec::<(u64, Vec<u8>)>::new(), 0u64, Vec::<String>::new()));
    std::thread::scope(|s| {
        for c in 0..16u64 {
            let (key, outcomes) = (key.clone(), &outcomes);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..6u64 {
                    let seed = c * 100 + i;
                    let mut req = PlaceRequest::by_key(seed, "inception_v3", &key);
                    req.seed = seed;
                    // Transport-level failure = dropped connection = bug; every
                    // outcome must arrive as a typed reply on the same socket.
                    let resp = client.place(req).expect("overload must not drop connections");
                    assert_eq!(resp.id, seed);
                    let mut o = outcomes.lock().unwrap();
                    match resp.error {
                        None => o.0.push((seed, resp.placement.expect("success has placement"))),
                        Some(err) if err.code == ErrorCode::Overloaded => {
                            assert!(
                                err.retry_after_ms.unwrap_or(0) >= 1,
                                "Overloaded reply must carry a usable retry hint"
                            );
                            o.1 += 1;
                        }
                        Some(err) => o.2.push(format!("{:?}: {}", err.code, err.message)),
                    }
                }
            });
        }
    });
    let (successes, shed, unexpected) = outcomes.into_inner().unwrap();
    assert!(unexpected.is_empty(), "non-overload errors under burst: {unexpected:?}");
    assert!(shed > 0, "16 clients against 4 queue slots must shed something");
    assert!(!successes.is_empty(), "admitted requests must still be served under burst");

    // Bounded memory: the queue depth at every wave cut stayed within the
    // admission bound.
    let depth = server.recorder().histogram("serve.queue_depth").expect("depth histogram");
    assert!(
        depth.max <= queue_capacity as f64,
        "queue depth {} exceeded capacity {queue_capacity}",
        depth.max
    );
    assert_eq!(server.recorder().counter_value("serve.shed"), shed);
    assert_eq!(server.recorder().counter_value("serve.overloaded"), shed);

    // A zero deadline budget is shed with the *other* typed code.
    let req = PlaceRequest::by_key(9999, "inception_v3", &key).with_deadline_ms(0);
    let resp = setup.place(req).expect("reply");
    assert_eq!(resp.error.as_ref().unwrap().code, ErrorCode::DeadlineExceeded);
    assert!(resp.error.unwrap().retry_after_ms.is_none());

    // Degradation, not corruption: replies served during the burst are
    // bit-identical to the same requests served at idle.
    for (seed, placement) in successes.iter().take(5) {
        let mut req = PlaceRequest::by_key(*seed, "inception_v3", &key);
        req.seed = *seed;
        let resp = setup.place(req).expect("idle replay");
        assert!(resp.error.is_none(), "idle replay failed: {:?}", resp.error);
        assert_eq!(
            resp.placement.as_ref().unwrap(),
            placement,
            "seed {seed}: burst-time reply differs from idle reply"
        );
    }
    server.shutdown();
}

#[test]
fn daemon_answers_unknown_families_and_zero_shot_via_generalist() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    // The store publishes ONLY a generalist policy — no per-benchmark families.
    let root = std::env::temp_dir().join("eagle-serve-e2e").join("generalist");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let state = untrained_state(&graph, &machine, AgentScale::tiny(), 7).expect("fabricate state");
    let version =
        publish_state(&root, eagle::serve::GENERALIST_FAMILY, "tiny", &state).expect("publish");

    let server = start_server(&root);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let key = client.register_graph(&graph).expect("register");

    // A family the store has never heard of is answered by the generalist —
    // a valid placement, stamped with the generalist's policy version.
    let resp = client.place(PlaceRequest::by_key(1, "resnet_slim", &key)).expect("reply");
    assert!(resp.error.is_none(), "unknown family must fall back, got {:?}", resp.error);
    assert_eq!(resp.placement.as_ref().unwrap().len(), graph.len());
    assert_eq!(resp.policy_version.as_deref(), Some(version.as_str()));

    // Zero-shot: no family preference, inline graph the server has never seen
    // (GraphGen-sampled, not a benchmark). Parameters are graph-independent by
    // construction, so the generalist answers without any retraining.
    let novel = eagle::opgraph::GraphGen::new(eagle::opgraph::GraphGenConfig::with_target(48))
        .expect("valid generator config")
        .sample(5);
    let resp = client.place(PlaceRequest::zero_shot(2, novel.clone())).expect("reply");
    assert!(resp.error.is_none(), "zero-shot request failed: {:?}", resp.error);
    assert_eq!(resp.placement.as_ref().unwrap().len(), novel.len());
    assert!(resp.predicted_step_time.unwrap() > 0.0);

    // Only the unknown-family rescue counts as a fallback; asking for the
    // generalist (implicitly, via no preference) is a direct hit.
    assert_eq!(server.recorder().counter_value("serve.generalist_fallbacks"), 1);
    assert_eq!(server.recorder().counter_value("serve.errors"), 0);
    server.shutdown();
}
