//! Generalist-trainer contracts: the held-out split and zero-shot probes.
//!
//! Two properties make "zero-shot makespan on held-out graphs" a trustworthy
//! number rather than a leaky one:
//!
//! 1. **Split hygiene** — property-tested over [`GraphSource`] configurations:
//!    the held-out origins never appear in the training stream, and the split
//!    is a pure function of the source configuration (re-building the same
//!    source yields the same split, independent of any training progress).
//! 2. **Probe purity** — enabling probes must not perturb training: curve
//!    points, counters, and final parameters are bit-identical with probes on
//!    and off. Probes draw from their own seeded RNG, never the training
//!    stream's.

use eagle::core::{AgentScale, Algo, EagleAgent, GraphSource, TrainResult, Trainer, TrainerConfig};
use eagle::devsim::{Machine, MeasureConfig};
use eagle::opgraph::{GraphGenConfig, OpGraph, OpKind, OpNode, Phase};
use eagle::tensor::Params;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A minimal two-op graph for roster sources; `name` keeps entries distinct.
fn tiny_graph(name: &str) -> OpGraph {
    let mut g = OpGraph::new(name);
    let a = g.add_node(OpNode::new("a", OpKind::MatMul, Phase::Forward));
    let b = g.add_node(OpNode::new("b", OpKind::Softmax, Phase::Forward));
    g.add_edge(a, b);
    g
}

proptest! {
    /// Generated sources: holdout origins are seed-deterministic and no
    /// training draw ever collides with one (training seeds are even, holdout
    /// seeds odd — but the test asserts the *behavior*, not the encoding).
    #[test]
    fn generated_holdout_is_disjoint_and_deterministic(
        seed in any::<u64>(),
        target in 8usize..64,
        holdout in 1usize..5,
        draws in 1usize..64,
    ) {
        let cfg = GraphGenConfig::with_target(target);
        let source = GraphSource::generated(cfg.clone(), seed).expect("valid generator config");
        let held = source.holdout_origins(holdout);
        prop_assert_eq!(held.len(), holdout);

        // Pure function of the configuration: an identically-built source
        // (fresh cursor, no training history) produces the identical split.
        let rebuilt = GraphSource::generated(cfg, seed).expect("valid generator config");
        prop_assert_eq!(&held, &rebuilt.holdout_origins(holdout));

        // Disjoint: the training stream never leaks a held-out graph.
        let mut cursor = source.initial_cursor();
        for _ in 0..draws {
            let origin = source.draw_train(&mut cursor, holdout);
            prop_assert!(
                !held.contains(&origin),
                "training origin {:?} collides with the holdout", origin
            );
        }
    }

    /// Roster sources (uniform and weighted): the holdout is the roster tail,
    /// and training draws stay strictly inside the head.
    #[test]
    fn roster_holdout_is_disjoint_and_deterministic(
        len in 2usize..8,
        holdout_frac in 1usize..4,
        weighted in any::<bool>(),
        seed in any::<u64>(),
        draws in 1usize..32,
    ) {
        let holdout = holdout_frac.min(len - 1);
        let source = if weighted {
            let graphs = (0..len)
                .map(|i| (format!("g{i}"), tiny_graph(&format!("g{i}")), 1.0 + i as f64))
                .collect();
            GraphSource::weighted(graphs, seed).expect("valid weighted roster")
        } else {
            let graphs =
                (0..len).map(|i| (format!("g{i}"), tiny_graph(&format!("g{i}")))).collect();
            GraphSource::roster(graphs).expect("valid roster")
        };
        let held = source.holdout_origins(holdout);
        prop_assert_eq!(held.len(), holdout);
        prop_assert_eq!(&held, &source.holdout_origins(holdout), "split must be stable");
        let mut cursor = source.initial_cursor();
        for _ in 0..draws {
            let origin = source.draw_train(&mut cursor, holdout);
            prop_assert!(
                !held.contains(&origin),
                "training origin {:?} collides with the holdout", origin
            );
        }
    }
}

/// One short generalist run over a GraphGen distribution, probes on or off.
/// Everything else — seeds, config, agent initialization — is held fixed.
fn run_generalist(probes: bool) -> (TrainResult, Params) {
    let machine = Machine::paper_machine();
    let source = GraphSource::generated(GraphGenConfig::with_target(48), 12)
        .expect("valid generated source");
    let seed_graph = source.build(&source.holdout_origins(1)[0]);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let agent = EagleAgent::new(&mut params, &seed_graph, &machine, AgentScale::tiny(), &mut rng);
    let mut builder = Trainer::builder(source, machine)
        .config(TrainerConfig::paper(Algo::Ppo, 30))
        .measure(MeasureConfig::default())
        .env_seed(9)
        .holdout(1);
    if probes {
        builder = builder.probe_every(2).probe_candidates(2);
    }
    let trainer = builder.build().expect("valid generalist trainer config");
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    (result, params)
}

/// Probes are observation-only: the training trajectory with probes enabled
/// is bit-identical to the same run without them.
#[test]
fn zero_shot_probes_do_not_perturb_training() {
    let (with, with_params) = run_generalist(true);
    let (without, without_params) = run_generalist(false);

    assert!(!with.curve.probes.is_empty(), "probes were requested every 2 samples");
    assert!(without.curve.probes.is_empty(), "no probes were requested");

    // Bit-identical curve points — not a ULP budget: the two runs execute the
    // same float operations in the same order, probes merely interleave reads.
    assert_eq!(with.curve.points, without.curve.points, "probes perturbed the training curve");
    assert_eq!(with.samples, without.samples);
    assert_eq!(with.num_invalid, without.num_invalid);
    assert_eq!(with.telemetry.cache_hits, without.telemetry.cache_hits);

    // And the trained policy itself matches bit-for-bit.
    assert_eq!(with_params.len(), without_params.len());
    for id in with_params.ids() {
        assert_eq!(
            with_params.get(id).data(),
            without_params.get(id).data(),
            "param {} diverged when probes were enabled",
            with_params.name(id)
        );
    }

    // The probe stream itself is well-formed: sample indices are multiples of
    // the probe interval and every probe names the held-out graph.
    let held_name = {
        let source = GraphSource::generated(GraphGenConfig::with_target(48), 12).unwrap();
        source.name(&source.holdout_origins(1)[0])
    };
    for p in &with.curve.probes {
        assert_eq!(p.graph, held_name);
        assert_eq!(p.sample % 2, 0, "probe at sample {} is off the interval", p.sample);
    }
}
