//! Byte-level fuzzing of the checkpoint decoder.
//!
//! Strategy: build one *valid* checkpoint (its embedded environment runs on a
//! GraphGen-generated graph, not a benchmark, so the payload shape varies with
//! the generator too), then attack `load_checkpoint` with mutations of its
//! bytes — single bit flips, truncations, checksum-preserving payload edits,
//! pure garbage, and adversarially nested JSON. The contract under test:
//! **every** load returns a typed [`CheckpointError`]/`Ok`, and never panics,
//! aborts, or misdecodes silently.
//!
//! `EAGLE_FUZZ_CASES` tunes the per-property case count (default 256, the fast
//! PR-gating slice; the nightly job runs 10000+). A failing case persists its
//! seed via `PROPTEST_FAILURE_DIR` for CI artifact upload.

use std::sync::OnceLock;

use eagle::core::{
    fnv1a64, load_checkpoint, save_checkpoint, AgentScale, CheckpointError, Curve, EagleAgent,
    TrainerState, CHECKPOINT_MAGIC, CHECKPOINT_SCHEMA_VERSION,
};
use eagle::devsim::{EnvSnapshot, Environment, Machine, MeasureConfig};
use eagle::opgraph::{GraphGen, GraphGenConfig};
use eagle::rl::EmaBaseline;
use eagle::tensor::optim::Adam;
use eagle::tensor::Params;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Case count per fuzz property: 256 default, 10k+ nightly.
fn fuzz_cases() -> u32 {
    std::env::var("EAGLE_FUZZ_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(256)
}

/// One valid checkpoint's exact on-disk bytes, built once: a full
/// [`TrainerState`] whose environment wraps a 64-op GraphGen graph.
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let machine = Machine::paper_machine();
        let cfg = GraphGenConfig {
            target_ops: 64,
            memory_pressure: (0.5, 1.0),
            ..GraphGenConfig::default()
        };
        let graph = GraphGen::new(cfg).expect("valid generator config").sample(2026);
        let mut env = Environment::builder(graph.clone(), machine.clone())
            .measure(MeasureConfig::exact())
            .seed(11)
            .build()
            .expect("valid environment");
        let p = eagle::devsim::predefined::single_gpu(&graph, &machine);
        env.evaluate(&p);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
        let mut curve = Curve::new("fuzz-corpus");
        curve.push(1, 0.5, Some(2.0));
        let mut baseline = EmaBaseline::new(0.1);
        baseline.advantage(-1.0);
        let state = TrainerState {
            samples: 1,
            minibatches: 1,
            num_invalid: 0,
            since_ce: 1,
            rng: eagle::devsim::RngState::capture(&rng),
            source: eagle::core::SourceState::initial(11),
            wall: 0.25,
            history_actions: vec![vec![0, 1, 2]],
            history_rewards: vec![-1.0],
            curve,
            params,
            opt_reinforce: Adam::new(0.01),
            opt_ppo: Adam::new(0.01),
            opt_ce: Adam::new(0.01),
            entries: vec![eagle::core::GraphEntryState {
                origin: eagle::core::GraphOrigin::fixed(),
                name: graph.model_name.clone(),
                env: env.save_state(),
                baseline,
                best: Some((2.0, p)),
                graph_samples: 1,
            }],
            retired_snapshot: EnvSnapshot::default(),
            start_snapshot: EnvSnapshot::default(),
        };
        let path = fuzz_path("corpus");
        save_checkpoint(&state, &path).expect("corpus checkpoint saves");
        std::fs::read(path).expect("corpus checkpoint reads back")
    })
}

/// Unique temp path per mutation so parallel test threads never collide.
fn fuzz_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("eagle-checkpoint-fuzz");
    std::fs::create_dir_all(&dir).expect("fuzz tmp dir");
    dir.join(format!("{}-{tag}-{}.json", std::process::id(), N.fetch_add(1, Ordering::Relaxed)))
}

/// Writes `bytes` and runs the decoder. The call returning *at all* is the
/// core property; the result lets callers additionally pin variants.
fn load_mutated(tag: &str, bytes: &[u8]) -> Result<TrainerState, CheckpointError> {
    let path = fuzz_path(tag);
    std::fs::write(&path, bytes).expect("fuzz file writes");
    let out = load_checkpoint(&path);
    let _ = std::fs::remove_file(&path);
    out
}

/// Rebuilds a structurally valid file around an arbitrary payload: correct
/// magic, schema version, and a checksum/length recomputed over `payload`.
fn wrap_payload(payload: &str) -> Vec<u8> {
    let header = format!(
        r#"{{"magic":"{CHECKPOINT_MAGIC}","schema_version":{CHECKPOINT_SCHEMA_VERSION},"checksum":{},"payload_bytes":{}}}"#,
        fnv1a64(payload.as_bytes()),
        payload.len()
    );
    let mut bytes = header.into_bytes();
    bytes.push(b'\n');
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

#[test]
fn corpus_checkpoint_is_valid() {
    let restored = load_mutated("sanity", valid_bytes()).expect("unmutated corpus loads");
    assert_eq!(restored.samples, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Flip one bit anywhere in the file: the decoder must return a typed
    /// error or — only when the flip lands in JSON the decoder tolerates —
    /// an `Ok`; a payload flip with an intact header must be caught by the
    /// checksum (or the UTF-8/header gate), never decoded.
    #[test]
    fn single_bit_flips_never_panic(pos in any::<u64>(), bit in 0u32..8) {
        let base = valid_bytes();
        let mut bytes = base.to_vec();
        let idx = (pos as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        let header_len = base.iter().position(|&b| b == b'\n').unwrap();
        match load_mutated("bitflip", &bytes) {
            Ok(_) => {
                // A flip that still loads must not have touched the payload:
                // inside the payload the checksum makes every flip fatal.
                prop_assert!(idx <= header_len, "payload flip at {idx} decoded successfully");
            }
            Err(e) => {
                if idx > header_len {
                    prop_assert!(
                        matches!(
                            e,
                            CheckpointError::Checksum { .. } | CheckpointError::Header(_)
                        ),
                        "payload flip at byte {idx} bit {bit} gave unexpected {e:?}"
                    );
                }
            }
        }
    }

    /// Truncate at every possible length: never a panic, and once the cut is
    /// inside the payload the error is specifically `Truncated`.
    #[test]
    fn truncations_are_typed_errors(pos in any::<u64>()) {
        let base = valid_bytes();
        let cut = (pos as usize) % base.len();
        let header_len = base.iter().position(|&b| b == b'\n').unwrap();
        let e = load_mutated("trunc", &base[..cut]).expect_err("truncated file must not load");
        if cut > header_len {
            prop_assert!(
                matches!(e, CheckpointError::Truncated { expected, actual }
                    if expected > actual),
                "cut at {cut} gave {e:?} instead of Truncated"
            );
        } else {
            prop_assert!(
                matches!(e, CheckpointError::Header(_)),
                "cut inside header at {cut} gave {e:?}"
            );
        }
    }

    /// Checksum-preserving payload mutation: splice random bytes into the
    /// payload, then recompute the header so length and checksum are *valid*.
    /// Integrity gates pass by construction, so the only allowed outcomes are
    /// a clean decode or `CheckpointError::Decode` — this is the test that
    /// drives the JSON parser itself over garbage.
    #[test]
    fn checksum_preserving_mutations_reach_the_decoder(
        at in any::<u64>(),
        insert in proptest::collection::vec(any::<u8>(), 1..24),
        delete in 0usize..16,
    ) {
        let base = valid_bytes();
        let header_len = base.iter().position(|&b| b == b'\n').unwrap();
        let payload = &base[header_len + 1..];
        let idx = (at as usize) % payload.len();
        let end = (idx + delete).min(payload.len());
        let mut mutated = Vec::with_capacity(payload.len() + insert.len());
        mutated.extend_from_slice(&payload[..idx]);
        mutated.extend_from_slice(&insert);
        mutated.extend_from_slice(&payload[end..]);
        // Keep it UTF-8 (the decoder's first gate) so the JSON parser is hit.
        let payload = String::from_utf8_lossy(&mutated).into_owned();
        match load_mutated("splice", &wrap_payload(&payload)) {
            Ok(_) => {}
            Err(CheckpointError::Decode(_)) => {}
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "valid-integrity mutation must reach the decoder, got {e:?}"
                )));
            }
        }
    }

    /// Arbitrary garbage files: typed error, never a panic.
    #[test]
    fn garbage_files_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(load_mutated("garbage", &bytes).is_err());
    }

    /// Garbage that starts with a plausible header prefix, probing the
    /// header-parsing edge specifically.
    #[test]
    fn header_prefix_garbage_never_panics(cut in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 0..64)) {
        let base = valid_bytes();
        let header_len = base.iter().position(|&b| b == b'\n').unwrap();
        let keep = (cut as usize) % (header_len + 1);
        let mut bytes = base[..keep].to_vec();
        bytes.extend_from_slice(&tail);
        let _ = load_mutated("hdr", &bytes);
    }
}

/// Regression (found by this fuzzer): a checksum-valid payload of deeply
/// nested JSON (`[[[[…`) used to overflow the parser's stack — a SIGSEGV
/// abort no caller could catch, because the vendored recursive-descent parser
/// had no depth limit. It must decode-fail like any other bad payload.
#[test]
fn deeply_nested_payload_is_a_decode_error_not_a_crash() {
    for payload in [
        "[".repeat(200_000),
        "{\"a\":".repeat(200_000),
        format!("{}1{}", "[".repeat(4_000), "]".repeat(4_000)),
    ] {
        let err = load_mutated("nested", &wrap_payload(&payload))
            .expect_err("nested payload must not decode");
        assert!(matches!(err, CheckpointError::Decode(_)), "expected Decode error, got {err:?}");
    }
}

/// Wrong magic and wrong schema version are each their own typed error.
#[test]
fn wrong_magic_and_version_are_typed() {
    let base = valid_bytes();
    let text = String::from_utf8(base.to_vec()).unwrap();
    let swapped = text.replacen("eagle-checkpoint", "eagle-checkpoinT", 1);
    assert!(matches!(load_mutated("magic", swapped.as_bytes()), Err(CheckpointError::Header(_))));
    let bumped = text.replacen(
        &format!("\"schema_version\":{CHECKPOINT_SCHEMA_VERSION}"),
        "\"schema_version\":999",
        1,
    );
    assert!(matches!(
        load_mutated("version", bumped.as_bytes()),
        Err(CheckpointError::SchemaVersion { found: 999, .. })
    ));
}
