//! Integration tests of configuration plumbing: trainer knobs, scales, and curve
//! export behave coherently through the public API.

use eagle::core::{AgentScale, Algo, Curve, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle::devsim::{Benchmark, Machine, MeasureConfig};
use eagle::rl::RewardTransform;
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn quick_run(mutate: impl FnOnce(&mut TrainerConfig)) -> eagle::core::TrainResult {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, 30);
    mutate(&mut cfg);
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(8)
        .build()
        .expect("inception trainer config is valid");
    trainer.train(&agent, &mut params).expect("training run succeeds")
}

#[test]
fn reward_transform_is_pluggable() {
    for tr in [RewardTransform::NegSqrt, RewardTransform::NegLinear, RewardTransform::NegLog] {
        let r = quick_run(|c| c.reward = tr);
        assert!(r.final_step_time.is_some(), "{tr:?} must still find placements");
    }
}

#[test]
fn baseline_and_normalization_toggles_run() {
    for (b, n) in [(false, false), (true, false), (false, true)] {
        let r = quick_run(|c| {
            c.use_baseline = b;
            c.normalize_adv = n;
        });
        assert_eq!(r.samples, 30);
    }
}

#[test]
fn curve_csv_exports_parse_back() {
    let r = quick_run(|_| {});
    let csv = r.curve.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 31, "header + one line per sample");
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4);
        let _: u64 = fields[0].parse().expect("sample index");
        let _: f64 = fields[1].parse().expect("wall clock");
    }
    // JSON roundtrip of the curve.
    let j = serde_json::to_string(&r.curve).unwrap();
    let c2: Curve = serde_json::from_str(&j).unwrap();
    assert_eq!(c2.points.len(), r.curve.points.len());
}

#[test]
fn paper_scale_constructs_all_agents() {
    // The paper configuration (256 groups, 512-unit LSTMs) must at least
    // construct and sample on the real BERT graph — the expensive path users hit
    // with `--scale paper`.
    use eagle::rl::StochasticPolicy;
    let machine = Machine::paper_machine();
    let graph = Benchmark::BertBase.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::paper(), &mut rng);
    assert_eq!(agent.num_groups(), 256);
    let (actions, logp) = agent.sample(&params, &mut rng);
    assert_eq!(actions.len(), 256);
    assert!(logp.is_finite());
    let placement = eagle::core::PlacementAgent::decode(&agent, &params, &actions);
    assert_eq!(placement.len(), graph.len());
}

#[test]
fn sample_budget_is_exact_even_with_partial_batches() {
    let r = quick_run(|c| c.total_samples = 27); // not a multiple of minibatch 10
    assert_eq!(r.samples, 27);
    assert_eq!(r.curve.points.len(), 27);
}
