//! Umbrella crate re-exporting the EAGLE workspace.
pub use eagle_core as core;
pub use eagle_devsim as devsim;
pub use eagle_nn as nn;
pub use eagle_obs as obs;
pub use eagle_opgraph as opgraph;
pub use eagle_partition as partition;
pub use eagle_rl as rl;
pub use eagle_serve as serve;
pub use eagle_tensor as tensor;

// The serving-era public API surface, re-exported at the crate root: the
// versioned wire schema and the unified error hierarchy.
pub use eagle_serve::{api, EagleError};
