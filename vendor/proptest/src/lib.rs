//! Offline vendored subset of the `proptest` property-testing framework.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] test harness macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range / tuple /
//! [`Just`] / [`any`] strategies, and [`collection::vec`].
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case reports its deterministic case seed instead,
//! * cases are seeded from a hash of the test name plus the case index, so runs
//!   are fully reproducible without a persistence file,
//! * no `#[serde(..)]`-style configuration beyond `ProptestConfig::with_cases`.
//!
//! Two environment variables support long fuzz runs (the nightly CI job):
//! * `PROPTEST_FAILURE_DIR` — when set, the first failing case of each
//!   property additionally writes `<dir>/<property>.seed` (property name, case
//!   index, seed, failure message) before panicking, so CI can upload failing
//!   seeds as artifacts;
//! * `PROPTEST_REPLAY_SEED` — when set (decimal or `0x`-hex), every property
//!   runs exactly one case with that seed instead of its normal schedule,
//!   replaying a persisted failure locally.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-test configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within a test case (raised by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG handed to strategies while generating a case.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f32>()
    }
}

/// See [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The whole-domain strategy for `T` (floats draw from the unit interval).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// A half-open range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes the failing seed of `name` to `$PROPTEST_FAILURE_DIR/<name>.seed`
/// (best-effort) so CI can persist it as an artifact.
fn persist_failure(name: &str, case: u32, seed: u64, err: &TestCaseError) {
    let Ok(dir) = std::env::var("PROPTEST_FAILURE_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join(format!("{name}.seed"));
    let _ = std::fs::write(
        path,
        format!(
            "property: {name}\ncase: {case}\nseed: {seed:#x}\n\
             replay: PROPTEST_REPLAY_SEED={seed:#x} cargo test {name}\nerror: {err}\n"
        ),
    );
}

/// `PROPTEST_REPLAY_SEED`, parsed as decimal or `0x`-prefixed hex.
fn replay_seed() -> Option<u64> {
    let s = std::env::var("PROPTEST_REPLAY_SEED").ok()?;
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs `cases` seeded cases of a property; panics on the first failure with
/// the case index and seed so it can be replayed (and persists the seed when
/// `PROPTEST_FAILURE_DIR` is set).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    if let Some(seed) = replay_seed() {
        let mut rng = TestRng { inner: ChaCha8Rng::seed_from_u64(seed) };
        if let Err(e) = case(&mut rng) {
            panic!("proptest property '{name}' failed replaying seed {seed:#x}: {e}");
        }
        return;
    }
    let base = fnv1a(name);
    for i in 0..config.cases {
        let seed = base ^ ((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng { inner: ChaCha8Rng::seed_from_u64(seed) };
        if let Err(e) = case(&mut rng) {
            persist_failure(name, i + 1, seed, &e);
            panic!(
                "proptest property '{name}' failed at case {}/{} (seed {seed:#x}): {e}",
                i + 1,
                config.cases
            );
        }
    }
}

/// Declares a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(0u8..5, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config); $($rest)*);
    };
    (@cfg ($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        crate::run_cases(&ProptestConfig::with_cases(200), "bounds", |rng| {
            let x = Strategy::generate(&(2usize..40), rng);
            prop_assert!((2..40).contains(&x));
            let f = Strategy::generate(&(-10.0f32..10.0), rng);
            prop_assert!((-10.0..10.0).contains(&f));
            Ok(())
        });
    }

    #[test]
    fn vec_strategy_sizes() {
        crate::run_cases(&ProptestConfig::with_cases(100), "sizes", |rng| {
            let exact = Strategy::generate(&collection::vec(0u8..5, 7), rng);
            prop_assert_eq!(exact.len(), 7);
            let ranged = Strategy::generate(&collection::vec(0u8..5, 0..40), rng);
            prop_assert!(ranged.len() < 40);
            prop_assert!(ranged.iter().all(|&b| b < 5));
            Ok(())
        });
    }

    #[test]
    fn deterministic_per_name() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            first.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            second.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, tuples, flat_map, trailing comma.
        #[test]
        fn macro_end_to_end((n, v) in (1usize..8, any::<u64>()).prop_flat_map(|(n, s)| {
            (Just(n), collection::vec(0u64..(s % 9 + 1), n))
        }),) {
            prop_assert_eq!(v.len(), n);
        }
    }
}
