//! Offline vendored subset of `serde_json`.
//!
//! Renders the workspace [`serde::Content`] tree to JSON text and parses JSON
//! text back into it. Provides the small `Value` API the workspace uses
//! (`doc["key"]`, `as_array`, `as_array_mut`) plus `to_string`/`from_str`/
//! `to_value` entry points. Object keys keep insertion order.

#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the elements mutably if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an f64 if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up an object key, returning `Value::Null` when absent — mirrors
    /// upstream serde_json's infallible indexing.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::U64(*v),
            Content::I64(v) => Value::I64(*v),
            Content::F64(v) => Value::F64(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(
                entries.iter().map(|(k, v)| (k.clone(), Value::from_content(v))).collect(),
            ),
        }
    }

    fn to_content_tree(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content_tree).collect()),
            Value::Object(entries) => Content::Map(
                entries.iter().map(|(k, v)| (k.clone(), v.to_content_tree())).collect(),
            ),
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_tree()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        Ok(Value::from_content(c))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    Value::from_content(&value.to_content())
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` is the shortest representation that parses back to the
                // same f64 (e.g. "10.0", "0.1").
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no NaN/Infinity; upstream serde_json emits null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the recursive-descent parser accepts. The parser
/// recurses once per `[`/`{` level, so without a cap an adversarial input like
/// `[[[[...` overflows the thread stack — an abort no caller can catch (found
/// by the checkpoint-decoder fuzzer). 128 matches upstream serde_json's
/// default and is an order of magnitude deeper than any value this workspace
/// serializes.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level, checked against [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Content::Null),
            Some(b't') => self.expect_literal("true", Content::Bool(true)),
            Some(b'f') => self.expect_literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(Error::msg(format!(
                "recursion limit exceeded: more than {MAX_PARSE_DEPTH} nested containers at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.enter()?;
        let result = self.parse_array_inner();
        self.depth -= 1;
        result
    }

    fn parse_array_inner(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.enter()?;
        let result = self.parse_object_inner();
        self.depth -= 1;
        result
    }

    fn parse_object_inner(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX low
                                // surrogate and combine the pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::msg("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole char.
                    let start = self.pos - 1;
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(Error::msg("invalid UTF-8 in string")),
                        };
                        let end = start + width;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| Error::msg("truncated UTF-8 in string"))?;
                        let s = std::str::from_utf8(slice)
                            .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::msg("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v) {
                        return Ok(Content::I64(-neg));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<f64>("10").unwrap(), 10.0);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a \"quote\"\nand\tctrl \u{1}";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.25f64, -2.0, 3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
    }

    #[test]
    fn value_indexing() {
        let doc: Value = from_str(r#"{"traceEvents": [{"name": "op"}], "other": 1}"#).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["name"].as_str(), Some("op"));
        assert_eq!(doc["missing"], Value::Null);
        assert_eq!(doc["other"].as_u64(), Some(1));
    }

    #[test]
    fn value_mutation_and_serialize() {
        let mut doc: Value = from_str(r#"{"traceEvents": []}"#).unwrap();
        if let Some(arr) = doc.as_array_mut() {
            arr.push(Value::Null);
        }
        let Value::Object(entries) = &mut doc else { panic!("object") };
        entries[0].1.as_array_mut().unwrap().push(Value::from("x"));
        let json = to_string(&doc).unwrap();
        assert_eq!(json, r#"{"traceEvents":["x"]}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>(r#""unterminated"#).is_err());
    }

    /// Regression (checkpoint fuzzer): deeply nested input used to recurse
    /// once per bracket and overflow the stack — an uncatchable abort. It must
    /// instead come back as an ordinary parse error, while legal nesting well
    /// past anything this workspace serializes still parses.
    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        for open in ["[", "{\"k\":"] {
            let attack = open.repeat(100_000);
            let err = from_str::<Value>(&attack).unwrap_err();
            assert!(err.to_string().contains("recursion limit"), "got: {err}");
        }
        // A closed 1M-bracket document fails the same way.
        let deep = format!("{}{}", "[".repeat(1_000_000), "]".repeat(1_000_000));
        assert!(from_str::<Value>(&deep).is_err());
        // At the limit: MAX_PARSE_DEPTH levels parse fine.
        let ok = format!(
            "{}1{}",
            "[".repeat(super::MAX_PARSE_DEPTH),
            "]".repeat(super::MAX_PARSE_DEPTH)
        );
        assert!(from_str::<Value>(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(super::MAX_PARSE_DEPTH + 1),
            "]".repeat(super::MAX_PARSE_DEPTH + 1)
        );
        assert!(from_str::<Value>(&too_deep).is_err());
    }

    #[test]
    fn float_formatting_roundtrips() {
        for v in [0.1f64, 1e300, -2.5e-8, 123456789.123] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v);
        }
    }
}
