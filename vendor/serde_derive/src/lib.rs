//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! Written against the raw `proc_macro` API (no `syn`/`quote` available offline).
//! Supports the shapes this workspace derives on:
//!
//! * structs with named fields  -> JSON objects, one entry per field,
//! * one-field tuple structs    -> transparent newtypes (serialize as the inner
//!   value, matching upstream serde's newtype-struct behaviour in serde_json),
//! * enums with unit variants   -> the variant name as a JSON string.
//!
//! Generic parameters and `#[serde(...)]` attributes are intentionally not
//! supported; deriving on such an item produces a compile error naming the
//! limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive input.
enum Input {
    /// `struct Name { field0, field1, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T0, T1, ...);` with the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { V0, V1, ... }` (unit variants only).
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid compile_error")
}

/// Extracts the top-level field (or variant) names from the token group of a
/// braced struct/enum body. For enums, rejects variants with payloads.
fn names_in_braces(group: TokenStream, is_enum: bool) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut expecting_name = true;
    let mut tokens = group.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute or doc comment: skip the following [...] group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        tokens.next();
                        continue;
                    }
                }
                return Err("unexpected '#' in item body".into());
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                expecting_name = true;
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if expecting_name {
                    if s == "pub" {
                        // Visibility; optional (...) restriction follows.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                        continue;
                    }
                    names.push(s);
                    expecting_name = false;
                } else if is_enum {
                    return Err(format!("enum variant data near '{s}' is unsupported"));
                }
                // Otherwise: tokens of a field type; ignore.
            }
            TokenTree::Group(g) if is_enum && !expecting_name => {
                let _ = g;
                return Err("enum variants with payloads are unsupported".into());
            }
            _ => {}
        }
    }
    Ok(names)
}

/// Parses the derive input into one of the supported shapes.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility before the struct/enum keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return Err("malformed attribute".into()),
            },
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => break s,
                    other => return Err(format!("unexpected token '{other}'")),
                }
            }
            Some(other) => return Err(format!("unexpected token '{other}'")),
            None => return Err("empty derive input".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "derive on generic type {name} is unsupported by the vendored serde_derive"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let names = names_in_braces(g.stream(), kind == "enum")?;
            if kind == "enum" {
                Ok(Input::UnitEnum { name, variants: names })
            } else {
                Ok(Input::NamedStruct { name, fields: names })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            // Tuple struct: count top-level comma-separated fields.
            let mut arity = 0usize;
            let mut saw_tokens = false;
            for tt in g.stream() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == ',' => {
                        arity += 1;
                        saw_tokens = false;
                    }
                    _ => saw_tokens = true,
                }
            }
            if saw_tokens {
                arity += 1;
            }
            Ok(Input::TupleStruct { name, arity })
        }
        _ => Err(format!("unsupported item body for {name}")),
    }
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let code = match parsed {
        Input::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Input::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_content(&self) -> ::serde::Content {{\n\
                             ::serde::Serialize::to_content(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_content(&self) -> ::serde::Content {{\n\
                             ::serde::Content::Seq(vec![{}])\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Input::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Content::Str(String::from({v:?})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let code = match parsed {
        Input::NamedStruct { name, fields } => {
            let bindings: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(c.get_field({f:?})\
                             .ok_or_else(|| ::serde::Error::msg(concat!(\
                                 \"missing field `{f}` in \", {name:?})))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         if !matches!(c, ::serde::Content::Map(_)) {{\n\
                             return Err(::serde::Error::msg(concat!(\
                                 \"expected object for \", {name:?})));\n\
                         }}\n\
                         Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                bindings.join("\n")
            )
        }
        Input::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                             Ok(Self(::serde::Deserialize::from_content(c)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                             match c {{\n\
                                 ::serde::Content::Seq(items) if items.len() == {arity} => \
                                     Ok(Self({})),\n\
                                 _ => Err(::serde::Error::msg(concat!(\
                                     \"expected {arity}-element array for \", {name:?}))),\n\
                             }}\n\
                         }}\n\
                     }}",
                    items.join(" ")
                )
            }
        }
        Input::UnitEnum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{v:?} => Ok({name}::{v}),")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     concat!(\"unknown variant {{}} of \", {name:?}), other))),\n\
                             }},\n\
                             _ => Err(::serde::Error::msg(concat!(\
                                 \"expected string variant for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
