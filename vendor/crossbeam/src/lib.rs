//! Offline vendored subset of `crossbeam`: scoped threads.
//!
//! `crossbeam::thread::scope` predates `std::thread::scope`; this shim keeps
//! the crossbeam call shape (`scope(|s| ...) -> Result`, spawn closures taking
//! the scope as an argument) while delegating the actual scoping to std.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle: threads spawned through it are joined before
    /// [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload
        /// if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope in which threads borrowing local data can be
    /// spawned; all are joined before this returns. `Err` carries the panic
    /// payload if the closure or any un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let h1 = s.spawn(move |_| lo.iter().sum::<u64>());
            let h2 = s.spawn(move |_| hi.iter().sum::<u64>());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .expect("no panics");
        assert_eq!(total, 10);
    }

    #[test]
    fn disjoint_mutable_chunks() {
        let mut out = vec![0u32; 8];
        crate::thread::scope(|s| {
            for (i, chunk) in out.chunks_mut(4).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u32 + 1;
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn panic_is_reported_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .expect("no panics");
        assert_eq!(n, 42);
    }
}
