//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! simplified serde: instead of upstream's visitor-based zero-copy data model,
//! types (de)serialize through an owned [`Content`] tree which `serde_json`
//! renders to / parses from JSON text. The public surface the workspace relies on
//! is preserved: `serde::{Serialize, Deserialize}` traits, the derive macros of
//! the same names (feature `derive`), and field-per-field struct encoding that is
//! wire-compatible with what upstream serde_json produced for these types.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree: the intermediate representation every
/// [`Serialize`]/[`Deserialize`] implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, with insertion-ordered keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a `Map` content.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into content.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Builds a value from content.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(v) => *v,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                };
                <$t>::try_from(v).map_err(|_| Error::msg(format!(
                    concat!("integer {} out of range for ", stringify!($t)), v)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        Error::msg(format!("integer {v} out of range"))
                    })?,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                };
                <$t>::try_from(v).map_err(|_| Error::msg(format!(
                    concat!("integer {} out of range for ", stringify!($t)), v)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(Error::msg(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn f64_accepts_integer_content() {
        // JSON renders 10.0 as "10", which parses back as U64.
        assert_eq!(f64::from_content(&Content::U64(10)).unwrap(), 10.0);
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(bool::from_content(&Content::U64(1)).is_err());
    }
}
