//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher core (D. J. Bernstein) with 8 rounds as a
//! deterministic, seedable RNG. The repository's reproducibility guarantees are
//! stated against this implementation's output stream (not upstream
//! `rand_chacha`'s): a fixed seed yields the same stream on every platform, which
//! is all the experiments require.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based RNG: 32-byte seed, 64-bit block counter, 16-word keystream
/// blocks.
#[derive(Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), constant across blocks.
    key: [u32; 8],
    /// 64-bit block counter, incremented per generated block.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    index: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; mirror upstream's opaque Debug.
        write!(f, "ChaCha8Rng {{ counter: {}, index: {} }}", self.counter, self.index)
    }
}

/// A full snapshot of a [`ChaCha8Rng`]'s stream position, sufficient to rebuild
/// the generator mid-stream (checkpoint/resume). Contains the raw key words, so
/// treat a persisted snapshot with the same care as the seed itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8State {
    /// Key words (the seed).
    pub key: [u32; 8],
    /// Block counter of the *next* block to generate.
    pub counter: u64,
    /// The current keystream block.
    pub block: [u32; 16],
    /// Next unread word index into `block`; 16 means exhausted.
    pub index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Captures the generator's complete stream position.
    pub fn state(&self) -> ChaCha8State {
        ChaCha8State { key: self.key, counter: self.counter, block: self.block, index: self.index }
    }

    /// Rebuilds a generator at the exact position captured by [`ChaCha8Rng::state`].
    ///
    /// # Panics
    /// Panics if `state.index > 16` (not a position this generator can reach).
    pub fn from_state(state: ChaCha8State) -> Self {
        assert!(state.index <= 16, "ChaCha8 word index out of range: {}", state.index);
        Self { key: state.key, counter: state.counter, block: state.block, index: state.index }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn chacha_core_matches_known_structure() {
        // The all-zero key/counter block must be a fixed function of the
        // constants; regression-pin the first word so refactors cannot silently
        // change every seeded experiment in the repository.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        let mut again = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(first, again.next_u32());
        assert_ne!(first, 0);
    }

    #[test]
    fn uniformish_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        // Land mid-block so index, counter and block contents all matter.
        for _ in 0..21 {
            let _ = a.next_u32();
        }
        let snap = a.state();
        let mut b = ChaCha8Rng::from_state(snap.clone());
        let va: Vec<u64> = (0..96).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..96).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb, "restored stream must continue bit-identically");
        assert_eq!(snap.index, 5, "21 draws = one full block + 5 words");
    }

    #[test]
    #[should_panic(expected = "word index out of range")]
    fn bad_state_index_rejected() {
        let mut s = ChaCha8Rng::seed_from_u64(0).state();
        s.index = 17;
        let _ = ChaCha8Rng::from_state(s);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
