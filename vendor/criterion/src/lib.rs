//! Offline vendored micro-benchmark harness exposing the slice of the
//! `criterion` API this workspace uses.
//!
//! No statistical machinery — each benchmark is warmed up once, sampled a
//! bounded number of times under a per-benchmark wall-clock cap (so the suite
//! stays fast in CI), and the mean/min times are printed to stdout. The
//! `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup::sample_size`, `Bencher::{iter, iter_batched}`, `BatchSize`
//! and `black_box` keep their upstream signatures.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function the optimizer
/// must assume reads/writes its argument.
pub use std::hint::black_box;

/// Per-benchmark wall-clock cap; keeps `cargo test`/CI runs of `harness =
/// false` targets cheap.
const TIME_CAP: Duration = Duration::from_millis(200);

/// How batched inputs are grouped per measurement; accepted for API
/// compatibility, measurement here is always one routine call per sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: setup cost comparable to the routine.
    SmallInput,
    /// Large inputs: one input per measurement.
    LargeInput,
    /// Each measurement gets exactly one input.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_named(name, self.default_samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_owned(), samples: self.default_samples, _criterion: self }
    }
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_named(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_named(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, times: Vec::new() };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("bench {name}: no measurements");
        return;
    }
    let mean: f64 =
        bencher.times.iter().map(|d| d.as_secs_f64()).sum::<f64>() / bencher.times.len() as f64;
    let min = bencher.times.iter().min().expect("nonempty").as_secs_f64();
    println!(
        "bench {name}: mean {:.3} us, min {:.3} us ({} samples)",
        mean * 1e6,
        min * 1e6,
        bencher.times.len()
    );
}

/// Measures closures; handed to each benchmark body.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Measures a routine, one call per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // Warmup, and forces lazy init out of the samples.
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
            if started.elapsed() > TIME_CAP {
                break;
            }
        }
    }

    /// Measures a routine that consumes a per-sample input built by `setup`
    /// outside the timed region.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // Warmup.
        let started = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
            if started.elapsed() > TIME_CAP {
                break;
            }
        }
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(5);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
