//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Semantics match upstream where the repository depends on
//! them (uniformity, bounds, object safety); the exact output streams are defined
//! by this crate plus the workspace's `rand_chacha`, and all reproducibility
//! guarantees in the repository are stated against these vendored streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness (object safe).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (like upstream
    /// `rand`) so nearby integer seeds yield well-separated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64,
    usize: next_u64, i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64,
    isize: next_u64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so bits look random enough for bound checks.
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn object_safe_rng_core() {
        let mut rng = Counter(42);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: f32 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
