//! GNMT model-parallel placement — the paper's motivating medium case.
//!
//! ```sh
//! cargo run --release --example gnmt_placement
//! ```
//!
//! GNMT at batch 256 does not fit a single 16 GB GPU, so placement is mandatory.
//! This example shows the OOM, measures the human-expert layer-striping placement,
//! trains EAGLE, and prints a per-device breakdown of the learned placement.

use eagle::core::{AgentScale, Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle::devsim::{predefined, Benchmark, Environment, Machine, MeasureConfig, SimOutcome};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::Gnmt.graph_for(&machine);
    let gib = (1u64 << 30) as f64;
    println!(
        "GNMT training graph: {} ops, total memory {:.1} GiB (one P100 holds 16 GiB)",
        graph.len(),
        graph.total_bytes() as f64 / gib
    );

    // Single GPU: must OOM (Table IV's "OOM" entry).
    match eagle::devsim::simulate(&graph, &machine, &predefined::single_gpu(&graph, &machine)) {
        SimOutcome::Oom { device, required, capacity } => println!(
            "single-GPU placement OOMs on {}: needs {:.1} GiB of {:.1} GiB",
            machine.devices[device.index()].name,
            required as f64 / gib,
            capacity as f64 / gib
        ),
        SimOutcome::Valid(_) => unreachable!("batch-256 GNMT cannot fit one GPU"),
    }

    let mut env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::default())
        .seed(2)
        .build()
        .expect("gnmt environment is valid");
    let expert_placement =
        predefined::human_expert(&graph, &machine).expect("gnmt has an expert placement");
    let expert = env.evaluate_final(&expert_placement).expect("expert placement is valid");
    println!("human expert (layer striping): {expert:.3} s/step");

    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::quick(), &mut rng);
    let cfg = TrainerConfig::paper(Algo::Ppo, 900);
    println!("training EAGLE (PPO) for {} samples...", cfg.total_samples);
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(2)
        .build()
        .expect("gnmt trainer config is valid");
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");
    let best = result.final_step_time.expect("found a valid placement");
    println!(
        "EAGLE (PPO): {best:.3} s/step ({:+.1}% vs expert; paper: -17.0%)",
        (best / expert - 1.0) * 100.0
    );

    // Per-device breakdown of the learned placement.
    let placement = result.best_placement.expect("valid placement exists");
    let mem = placement.memory_per_device(&graph, &machine);
    if let SimOutcome::Valid(stats) = eagle::devsim::simulate(&graph, &machine, &placement) {
        println!("\nlearned placement breakdown (step {:.3} s):", stats.step_time);
        for (i, spec) in machine.devices.iter().enumerate() {
            let ops = placement.devices().iter().filter(|d| d.index() == i).count();
            println!(
                "  {:>7}: {:>5} ops, {:>5.1} GiB resident, busy {:>6.3} s ({:>4.1}% of step)",
                spec.name,
                ops,
                mem[i] as f64 / gib,
                stats.device_busy[i],
                100.0 * stats.device_busy[i] / stats.step_time
            );
        }
        println!(
            "  communication: {} transfers, {:.3} s total on links",
            stats.num_transfers, stats.comm_time
        );
    }
}
