//! Quickstart: place Inception-V3 on the paper's 4-GPU machine with EAGLE.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the calibrated Inception-V3 training graph, measures the two pre-defined
//! baselines, trains a small EAGLE agent with PPO for a few hundred samples, and
//! reports the best placement found — the Inception-V3 column of Table IV.

use eagle::core::{AgentScale, Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle::devsim::{predefined, Benchmark, Environment, Machine, MeasureConfig};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    println!(
        "Inception-V3 training graph: {} ops, {} edges, {:.1} GFLOP/step",
        graph.len(),
        graph.num_edges(),
        graph.total_flops() / 1e9
    );

    let mut env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::default())
        .seed(1)
        .build()
        .expect("inception environment is valid");

    // Pre-defined baselines (paper Table IV: both 0.071 s).
    let single = env.evaluate_final(&predefined::single_gpu(&graph, &machine));
    println!("Single GPU   : {:.4} s/step", single.expect("fits one GPU"));
    let expert = predefined::human_expert(&graph, &machine)
        .and_then(|p| env.evaluate_final(&p))
        .expect("inception has an expert placement");
    println!("Human expert : {expert:.4} s/step");

    // Train EAGLE with PPO (paper hyper-parameters, reduced network scale).
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::quick(), &mut rng);
    let cfg = TrainerConfig::paper(Algo::Ppo, 200);
    println!("training EAGLE (PPO) for {} placement samples...", cfg.total_samples);
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(1)
        .build()
        .expect("inception trainer config is valid");
    let result = trainer.train(&agent, &mut params).expect("training run succeeds");

    let best = result.final_step_time.expect("found a valid placement");
    println!(
        "EAGLE (PPO)  : {:.4} s/step after {} samples ({} invalid), simulated {:.1} h of measurement",
        best,
        result.samples,
        result.num_invalid,
        result.telemetry.sim_wall_clock / 3600.0
    );
    println!("=> EAGLE vs single GPU: {:+.1}%", (best / single.unwrap() - 1.0) * 100.0);
}
