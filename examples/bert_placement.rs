//! BERT — the paper's "very large model" case, where Hierarchical Planner fails.
//!
//! ```sh
//! cargo run --release --example bert_placement
//! ```
//!
//! BERT-Base at sequence length 384 / batch 24 exceeds one GPU and ships with no
//! model-parallel expert placement. This example compares a balanced contiguous
//! layer split against placements learned by Post (simple placer, PPO+CE) and by
//! EAGLE (PPO), mirroring the BERT column of Table IV.

use eagle::core::{
    AgentScale, Algo, EagleAgent, FixedGroupAgent, GraphSource, Trainer, TrainerConfig,
};
use eagle::devsim::{predefined, Benchmark, Environment, Machine, MeasureConfig};
use eagle::partition::{metis_like::MetisLike, Partitioner};
use eagle::tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let machine = Machine::paper_machine();
    let graph = Benchmark::BertBase.graph_for(&machine);
    let gib = (1u64 << 30) as f64;
    println!(
        "BERT-Base training graph: {} ops, {:.1} GiB total (no expert placement exists)",
        graph.len(),
        graph.total_bytes() as f64 / gib
    );
    assert!(predefined::human_expert(&graph, &machine).is_none());

    let mut env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::default())
        .seed(3)
        .build()
        .expect("bert environment is valid");
    let split = env
        .evaluate_final(&predefined::bert_layer_split(&graph, &machine))
        .expect("layer split fits");
    println!("contiguous 4-way layer split: {split:.3} s/step");

    let samples = 700;
    let scale = AgentScale::quick();

    // Post: fixed METIS groups + simple placer, PPO+CE.
    let k = scale.num_groups.min(graph.len());
    let group_of = MetisLike::default().partition(&graph, k);
    let mut post_params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let post =
        FixedGroupAgent::post(&mut post_params, &graph, &machine, group_of, k, scale, &mut rng);
    println!("training Post (PPO+CE) for {samples} samples...");
    let trainer = |algo| {
        Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
            .config(TrainerConfig::paper(algo, samples))
            .measure(MeasureConfig::default())
            .env_seed(3)
            .build()
            .expect("bert trainer config is valid")
    };
    let post_result =
        trainer(Algo::PpoCe).train(&post, &mut post_params).expect("training run succeeds");
    let post_time = post_result.final_step_time.expect("post finds a valid placement");
    println!("Post: {post_time:.3} s/step ({} invalid)", post_result.num_invalid);

    // EAGLE with PPO.
    let mut eagle_params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let agent = EagleAgent::new(&mut eagle_params, &graph, &machine, scale, &mut rng);
    println!("training EAGLE (PPO) for {samples} samples...");
    let eagle_result =
        trainer(Algo::Ppo).train(&agent, &mut eagle_params).expect("training run succeeds");
    let eagle_time = eagle_result.final_step_time.expect("eagle finds a valid placement");
    println!("EAGLE (PPO): {eagle_time:.3} s/step ({} invalid)", eagle_result.num_invalid);

    println!(
        "\nEAGLE vs Post: {:+.1}% (paper: -18.7%); vs layer split: {:+.1}%",
        (eagle_time / post_time - 1.0) * 100.0,
        (eagle_time / split - 1.0) * 100.0
    );
}
