//! Heuristic groupers under the microscope (the paper's Sec. III-B study).
//!
//! ```sh
//! cargo run --release --example heuristic_vs_learned
//! ```
//!
//! Runs the METIS-style multilevel partitioner and the NetworkX-style fluid
//! communities algorithm on all three benchmark graphs, reporting edge cut, balance
//! and how a simple device-striping of their groups performs in the simulator —
//! the raw material behind Table I's comparison.

use eagle::devsim::{Benchmark, DeviceId, Machine, Placement, SimOutcome};
use eagle::partition::{
    fluid::FluidCommunities, metis_like::MetisLike, metrics, Partitioner, WeightedGraph,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let machine = Machine::paper_machine();
    let k = 32;
    println!("groupers on k = {k} groups; striping groups over devices round-robin\n");
    for b in Benchmark::ALL {
        let graph = b.graph_for(&machine);
        let weighted = WeightedGraph::from_op_graph(&graph);
        println!("== {} ({} ops, {} edges)", b.name(), graph.len(), graph.num_edges());

        let metis = MetisLike::default().partition(&graph, k);
        let fluid = FluidCommunities::default().partition(&graph, k);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let random: Vec<usize> = (0..graph.len()).map(|_| rng.gen_range(0..k)).collect();

        for (name, assign) in [("METIS", &metis), ("Networkx", &fluid), ("random", &random)] {
            let cut_gib = metrics::cut_bytes(&graph, assign) as f64 / (1u64 << 30) as f64;
            let balance = metrics::balance(&weighted, assign, k);
            // Stripe groups across GPUs (a crude but deterministic placement of the
            // grouping, isolating grouping quality from placer learning).
            let gpus = machine.gpu_ids();
            let devices: Vec<DeviceId> = (0..k).map(|g| gpus[g % gpus.len()]).collect();
            let placement = Placement::from_groups(assign, &devices);
            let step = match eagle::devsim::simulate(&graph, &machine, &placement) {
                SimOutcome::Valid(s) => format!("{:.3} s/step", s.step_time),
                SimOutcome::Oom { .. } => "OOM".to_string(),
            };
            println!(
                "  {name:<9} cut {cut_gib:>7.2} GiB/step  balance {balance:>5.2}  striped: {step}"
            );
        }
        println!();
    }
    println!(
        "(the learned feed-forward grouper comparison is `cargo run -p eagle-bench --bin table1`)"
    );
}
