//! The three training algorithms the paper evaluates (Sec. III-D, Table III):
//! REINFORCE, clipped-surrogate PPO, and PPO joined with cross-entropy minimization
//! (Post's algorithm).

use eagle_obs::Recorder;
use eagle_tensor::{optim::Adam, Grads, Params};

use crate::policy::StochasticPolicy;

/// One collected sample ready for a policy update.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// The flat action vector the policy produced.
    pub actions: Vec<usize>,
    /// Joint log-probability at sampling time (PPO's `pi_old`).
    pub old_log_prob: f32,
    /// Estimated advantage (reward minus baseline).
    pub advantage: f32,
}

/// Statistics of one update, for logging and tests.
///
/// An "update" is one call to an algorithm's `update` method, which may run
/// several gradient steps ([`Reinforce`]: exactly one, [`Ppo`]: `epochs`,
/// [`CrossEntropyMin`]: `steps`). `loss` and `entropy` are means over *all*
/// of the update's gradient steps — not just the last one — so the three
/// algorithms report on the same scale.
#[derive(Debug, Clone, Default)]
pub struct UpdateStats {
    /// Batch-mean loss, averaged across the update's gradient steps.
    pub loss: f32,
    /// Batch-mean policy entropy, averaged across the update's gradient steps.
    pub entropy: f32,
    /// Pre-clip global gradient norm of the last gradient step.
    pub grad_norm: f32,
}

/// Shared optimizer knobs (paper Sec. IV-C: Adam, lr 0.01, clip by norm at 1.0).
#[derive(Debug, Clone)]
pub struct OptimConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Entropy-bonus coefficient (paper: 0.01).
    pub ent_coef: f32,
}

impl Default for OptimConfig {
    fn default() -> Self {
        Self { lr: 0.01, grad_clip: 1.0, ent_coef: 0.01 }
    }
}

/// Plain REINFORCE with a baseline: maximizes `E[advantage * log pi(a)]`.
pub struct Reinforce {
    cfg: OptimConfig,
    opt: Adam,
    /// Reusable gradient buffers, allocated on the first update.
    grads: Option<Grads>,
    recorder: Recorder,
}

impl Reinforce {
    /// Creates the trainer with its own Adam state.
    pub fn new(cfg: OptimConfig) -> Self {
        let opt = Adam::new(cfg.lr);
        Self { cfg, opt, grads: None, recorder: Recorder::disabled() }
    }

    /// Installs a telemetry recorder (update latency, grad-norm, entropy).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The optimizer's full state (step count + Adam moments), for checkpointing.
    pub fn optimizer(&self) -> &Adam {
        &self.opt
    }

    /// Replaces the optimizer state, resuming exactly where a checkpointed
    /// run's [`Reinforce::optimizer`] snapshot left off.
    pub fn restore_optimizer(&mut self, opt: Adam) {
        self.opt = opt;
    }

    /// One gradient step over a batch of samples.
    pub fn update(
        &mut self,
        policy: &impl StochasticPolicy,
        params: &mut Params,
        batch: &[TrainSample],
    ) -> UpdateStats {
        assert!(!batch.is_empty(), "empty training batch");
        let _timer = self.recorder.span("rl.reinforce.update_us");
        let mut ent_total = 0.0f32;
        let scale = 1.0 / batch.len() as f32;
        // One batched scoring pass for the whole minibatch. Per-episode losses
        // are folded into a single scalar with `add_n`, so the whole batch
        // backpropagates in ONE tape traversal: shared forward nodes (the
        // grouper/encoder stack every episode reads) are visited once instead
        // of once per episode.
        let actions: Vec<Vec<usize>> = batch.iter().map(|s| s.actions.clone()).collect();
        let mut h = policy.score_batch(params, &actions);
        let mut ep_losses = Vec::with_capacity(batch.len());
        for (i, s) in batch.iter().enumerate() {
            let ep = h.episodes[i];
            // loss = -(adv * logp + ent_coef * entropy), averaged over the batch.
            let weighted = h.tape.scale(ep.log_prob, s.advantage);
            let ent_term = h.tape.scale(ep.entropy, self.cfg.ent_coef);
            let gain = h.tape.add(weighted, ent_term);
            let neg = h.tape.neg(gain);
            let mut loss = h.tape.scale(neg, scale);
            if let Some(aux) = ep.aux_loss {
                let aux_scaled = h.tape.scale(aux, scale);
                loss = h.tape.add(loss, aux_scaled);
            }
            ent_total += h.tape.value(ep.entropy).item();
            ep_losses.push(loss);
        }
        let total = h.tape.add_n(&ep_losses);
        let loss_total = h.tape.value(total).item();
        let grads = self.grads.get_or_insert_with(|| Grads::for_params(params));
        grads.zero();
        h.tape.backward_into(total, grads);
        let grad_norm = grads.clip_global_norm(self.cfg.grad_clip);
        self.opt.step_grads(params, grads);
        let stats = UpdateStats { loss: loss_total, entropy: ent_total * scale, grad_norm };
        record_update(&self.recorder, &stats);
        stats
    }
}

/// Clipped-surrogate PPO (paper Eq. 3): several epochs of minibatch updates per
/// batch of samples, with the ratio clipped to `[1 - eps, 1 + eps]`.
pub struct Ppo {
    cfg: OptimConfig,
    /// Clip range `eps` (paper: 0.3).
    pub clip: f32,
    /// Gradient steps per collected batch (paper: 4).
    pub epochs: usize,
    opt: Adam,
    /// Reusable gradient buffers, allocated on the first update.
    grads: Option<Grads>,
    recorder: Recorder,
}

impl Ppo {
    /// Creates the trainer (paper defaults: clip 0.3, 4 epochs).
    pub fn new(cfg: OptimConfig, clip: f32, epochs: usize) -> Self {
        let opt = Adam::new(cfg.lr);
        Self { cfg, clip, epochs, opt, grads: None, recorder: Recorder::disabled() }
    }

    /// Installs a telemetry recorder (update latency, grad-norm, entropy).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The optimizer's full state (step count + Adam moments), for checkpointing.
    pub fn optimizer(&self) -> &Adam {
        &self.opt
    }

    /// Replaces the optimizer state, resuming exactly where a checkpointed
    /// run's [`Ppo::optimizer`] snapshot left off.
    pub fn restore_optimizer(&mut self, opt: Adam) {
        self.opt = opt;
    }

    /// Runs `epochs` gradient steps over the batch. The returned stats average
    /// loss and entropy over all epochs (see [`UpdateStats`]); `grad_norm` is
    /// the last epoch's.
    pub fn update(
        &mut self,
        policy: &impl StochasticPolicy,
        params: &mut Params,
        batch: &[TrainSample],
    ) -> UpdateStats {
        assert!(!batch.is_empty(), "empty training batch");
        assert!(self.epochs > 0, "ppo needs at least one epoch");
        let _timer = self.recorder.span("rl.ppo.update_us");
        let mut stats = UpdateStats::default();
        let scale = 1.0 / batch.len() as f32;
        let actions: Vec<Vec<usize>> = batch.iter().map(|s| s.actions.clone()).collect();
        for _ in 0..self.epochs {
            let mut ent_total = 0.0f32;
            // One batched scoring pass per epoch (the parameters change between
            // epochs); per-episode losses fold into one scalar so each epoch
            // backpropagates in a single tape traversal.
            let mut h = policy.score_batch(params, &actions);
            let mut ep_losses = Vec::with_capacity(batch.len());
            for (i, s) in batch.iter().enumerate() {
                let ep = h.episodes[i];
                let old = h.tape.add_scalar(ep.log_prob, -s.old_log_prob);
                let ratio = h.tape.exp(old);
                let unclipped = h.tape.scale(ratio, s.advantage);
                let clipped_ratio = h.tape.clamp(ratio, 1.0 - self.clip, 1.0 + self.clip);
                let clipped = h.tape.scale(clipped_ratio, s.advantage);
                let surr = h.tape.min_elem(unclipped, clipped);
                let ent_term = h.tape.scale(ep.entropy, self.cfg.ent_coef);
                let gain = h.tape.add(surr, ent_term);
                let neg = h.tape.neg(gain);
                let mut loss = h.tape.scale(neg, scale);
                if let Some(aux) = ep.aux_loss {
                    let aux_scaled = h.tape.scale(aux, scale);
                    loss = h.tape.add(loss, aux_scaled);
                }
                ent_total += h.tape.value(ep.entropy).item();
                ep_losses.push(loss);
            }
            let total = h.tape.add_n(&ep_losses);
            let grads = self.grads.get_or_insert_with(|| Grads::for_params(params));
            grads.zero();
            h.tape.backward_into(total, grads);
            stats.loss += h.tape.value(total).item();
            stats.entropy += ent_total * scale;
            stats.grad_norm = grads.clip_global_norm(self.cfg.grad_clip);
            self.opt.step_grads(params, grads);
        }
        stats.loss /= self.epochs as f32;
        stats.entropy /= self.epochs as f32;
        record_update(&self.recorder, &stats);
        stats
    }
}

/// Cross-entropy minimization over elite samples (the "CE" half of Post's joint
/// algorithm): maximize the likelihood of the top-K placements seen so far.
pub struct CrossEntropyMin {
    cfg: OptimConfig,
    /// Gradient steps per elite update.
    pub steps: usize,
    opt: Adam,
    /// Reusable gradient buffers, allocated on the first update.
    grads: Option<Grads>,
    recorder: Recorder,
}

impl CrossEntropyMin {
    /// Creates the trainer.
    pub fn new(cfg: OptimConfig, steps: usize) -> Self {
        let opt = Adam::new(cfg.lr);
        Self { cfg, steps, opt, grads: None, recorder: Recorder::disabled() }
    }

    /// Installs a telemetry recorder (update latency and grad-norm).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The optimizer's full state (step count + Adam moments), for checkpointing.
    pub fn optimizer(&self) -> &Adam {
        &self.opt
    }

    /// Replaces the optimizer state, resuming exactly where a checkpointed
    /// run's [`CrossEntropyMin::optimizer`] snapshot left off.
    pub fn restore_optimizer(&mut self, opt: Adam) {
        self.opt = opt;
    }

    /// Fits the policy towards the elite action vectors. The returned stats
    /// average the loss over all `steps` gradient steps (see [`UpdateStats`]);
    /// `grad_norm` is the last step's.
    pub fn update(
        &mut self,
        policy: &impl StochasticPolicy,
        params: &mut Params,
        elites: &[Vec<usize>],
    ) -> UpdateStats {
        assert!(!elites.is_empty(), "no elites to fit");
        assert!(self.steps > 0, "cross-entropy needs at least one step");
        let _timer = self.recorder.span("rl.ce.update_us");
        let mut stats = UpdateStats::default();
        let scale = 1.0 / elites.len() as f32;
        for _ in 0..self.steps {
            let mut h = policy.score_batch(params, elites);
            let mut ep_losses = Vec::with_capacity(elites.len());
            for i in 0..elites.len() {
                let ep = h.episodes[i];
                let neg = h.tape.neg(ep.log_prob);
                let mut loss = h.tape.scale(neg, scale);
                if let Some(aux) = ep.aux_loss {
                    let aux_scaled = h.tape.scale(aux, scale);
                    loss = h.tape.add(loss, aux_scaled);
                }
                ep_losses.push(loss);
            }
            let total = h.tape.add_n(&ep_losses);
            let grads = self.grads.get_or_insert_with(|| Grads::for_params(params));
            grads.zero();
            h.tape.backward_into(total, grads);
            stats.loss += h.tape.value(total).item();
            stats.grad_norm = grads.clip_global_norm(self.cfg.grad_clip);
            self.opt.step_grads(params, grads);
        }
        stats.loss /= self.steps as f32;
        record_update(&self.recorder, &stats);
        stats
    }
}

/// Records one completed policy update: distribution of gradient norms and
/// entropies across the run, plus the latest loss.
fn record_update(rec: &Recorder, stats: &UpdateStats) {
    rec.add("rl.updates", 1);
    rec.observe("rl.grad_norm", stats.grad_norm as f64);
    rec.observe("rl.entropy", stats.entropy as f64);
    rec.gauge("rl.loss", stats.loss as f64);
}

/// Selects the indices of the `k` highest-reward samples (ties broken by recency:
/// later samples win). Used to pick CE elites from the sample history.
pub fn top_k_indices(rewards: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..rewards.len()).collect();
    idx.sort_by(|&a, &b| rewards[b].total_cmp(&rewards[a]).then(b.cmp(&a)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_policy::Bandit;
    use crate::reward::EmaBaseline;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Arm rewards for the 4-arm test bandit.
    fn arm_reward(arm: usize) -> f64 {
        [0.1, 0.5, 1.0, 0.2][arm]
    }

    /// Faster learning rate than the paper's default so the toy bandit converges
    /// within a handful of updates.
    fn test_cfg() -> OptimConfig {
        OptimConfig { lr: 0.1, ..Default::default() }
    }

    fn train_bandit(
        mut update: impl FnMut(&Bandit, &mut Params, &[TrainSample]) -> UpdateStats,
    ) -> Vec<f32> {
        let mut params = Params::new();
        let bandit = Bandit::new(&mut params, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut baseline = EmaBaseline::new(0.2);
        for _ in 0..150 {
            let batch: Vec<TrainSample> = (0..10)
                .map(|_| {
                    let (actions, old_log_prob) = bandit.sample(&params, &mut rng);
                    let adv = baseline.advantage(arm_reward(actions[0])) as f32;
                    TrainSample { actions, old_log_prob, advantage: adv }
                })
                .collect();
            update(&bandit, &mut params, &batch);
        }
        bandit.probs(&params)
    }

    #[test]
    fn reinforce_learns_best_arm() {
        let mut tr = Reinforce::new(test_cfg());
        let probs = train_bandit(move |p, params, b| tr.update(p, params, b));
        assert!(probs[2] > 0.8, "best arm should dominate: {probs:?}");
    }

    #[test]
    fn ppo_learns_best_arm() {
        let mut tr = Ppo::new(test_cfg(), 0.3, 4);
        let probs = train_bandit(move |p, params, b| tr.update(p, params, b));
        assert!(probs[2] > 0.8, "best arm should dominate: {probs:?}");
    }

    #[test]
    fn ppo_ratio_clipping_limits_update() {
        // A single huge-advantage sample: with clipping the logits must move less
        // over one update than an unclipped REINFORCE step of the same lr.
        let mk = |clip: Option<f32>| -> f32 {
            let mut params = Params::new();
            let bandit = Bandit::new(&mut params, 4);
            let sample =
                TrainSample { actions: vec![0], old_log_prob: (0.25f32).ln(), advantage: 50.0 };
            match clip {
                Some(c) => {
                    let mut tr = Ppo::new(test_cfg(), c, 40);
                    tr.update(&bandit, &mut params, &[sample]);
                }
                None => {
                    let mut tr = Reinforce::new(test_cfg());
                    for _ in 0..40 {
                        tr.update(&bandit, &mut params, std::slice::from_ref(&sample));
                    }
                }
            }
            bandit.probs(&params)[0]
        };
        let clipped = mk(Some(0.2));
        let unclipped = mk(None);
        assert!(
            clipped < unclipped,
            "clipping should slow the policy shift: {clipped} vs {unclipped}"
        );
    }

    #[test]
    fn ppo_loss_is_mean_across_epochs() {
        // One update with `epochs = 4` performs the same gradient-step
        // trajectory as four consecutive `epochs = 1` updates (old_log_prob is
        // frozen in the samples, the Adam state carries over) — and must
        // report the mean of their losses, not the last epoch's.
        let batch = vec![
            TrainSample { actions: vec![2], old_log_prob: (0.25f32).ln(), advantage: 1.5 },
            TrainSample { actions: vec![0], old_log_prob: (0.25f32).ln(), advantage: -0.5 },
        ];
        let mut params_a = Params::new();
        let bandit_a = Bandit::new(&mut params_a, 4);
        let mut tr_a = Ppo::new(test_cfg(), 0.3, 4);
        let stats_a = tr_a.update(&bandit_a, &mut params_a, &batch);

        let mut params_b = Params::new();
        let bandit_b = Bandit::new(&mut params_b, 4);
        let mut tr_b = Ppo::new(test_cfg(), 0.3, 1);
        let mut losses = Vec::new();
        let mut last = UpdateStats::default();
        for _ in 0..4 {
            last = tr_b.update(&bandit_b, &mut params_b, &batch);
            losses.push(last.loss);
        }
        assert_eq!(bandit_a.probs(&params_a), bandit_b.probs(&params_b));
        let mean: f32 = losses.iter().sum::<f32>() / losses.len() as f32;
        assert!(
            (stats_a.loss - mean).abs() < 1e-6,
            "loss {} must be the epoch mean {mean}, not the last epoch's {}",
            stats_a.loss,
            last.loss
        );
        // The policy moves between epochs, so mean and last genuinely differ —
        // otherwise this test could not distinguish the two semantics.
        assert!((mean - last.loss).abs() > 1e-7, "epoch losses all equal: {losses:?}");
        assert_eq!(stats_a.grad_norm, last.grad_norm, "grad_norm is the last epoch's");
    }

    #[test]
    fn cross_entropy_concentrates_on_elites() {
        let mut params = Params::new();
        let bandit = Bandit::new(&mut params, 4);
        let mut tr = CrossEntropyMin::new(test_cfg(), 100);
        tr.update(&bandit, &mut params, &[vec![3], vec![3], vec![3]]);
        let probs = bandit.probs(&params);
        assert!(probs[3] > 0.9, "elite arm should dominate: {probs:?}");
    }

    #[test]
    fn top_k_selects_best_and_prefers_recent() {
        let rewards = vec![-3.0, -1.0, -2.0, -1.0];
        let top = top_k_indices(&rewards, 2);
        assert_eq!(top.len(), 2);
        // Both -1.0 rewards beat the rest; the later one (index 3) ranks first.
        assert_eq!(top, vec![3, 1]);
        assert_eq!(top_k_indices(&rewards, 10).len(), 4, "k clamps to len");
    }

    #[test]
    #[should_panic(expected = "empty training batch")]
    fn empty_batch_panics() {
        let mut params = Params::new();
        let bandit = Bandit::new(&mut params, 4);
        let mut tr = Reinforce::new(OptimConfig::default());
        tr.update(&bandit, &mut params, &[]);
    }
}
