//! # eagle-rl
//!
//! Reinforcement-learning training algorithms for device placement, exactly the set
//! the paper studies in Sec. III-D: [`Reinforce`], clipped-surrogate [`Ppo`]
//! (minibatch 10, 4 epochs, clip 0.3, entropy 0.01), and [`CrossEntropyMin`] over
//! elite samples (Post's joint algorithm = PPO + CE every 50 samples, top-5 elites).
//!
//! Rewards follow the paper's Eq. 4: `R = -sqrt(per-step time)` with an
//! exponential-moving-average baseline ([`EmaBaseline`]) instead of a critic.
//!
//! Agents plug in through the batched-first [`StochasticPolicy`] trait: sample a
//! minibatch of flat action vectors in one forward pass ([`StochasticPolicy::
//! sample_batch`]), and re-score a minibatch differentiably on one shared tape
//! ([`StochasticPolicy::score_batch`]); per-episode `sample`/`score` are default
//! wrappers over batch size 1. Batching is bit-identical to the per-episode path
//! (see `policy` module docs).

#![warn(missing_docs)]

mod algos;
mod policy;
mod reward;

pub use algos::{
    top_k_indices, CrossEntropyMin, OptimConfig, Ppo, Reinforce, TrainSample, UpdateStats,
};
pub use policy::{
    fork_streams, sample_categorical, BatchScoreHandle, EpisodeScore, ScoreHandle, StochasticPolicy,
};
pub use reward::{invalid_reward, reward_from_time, EmaBaseline, RewardTransform};
