//! The policy abstraction the training algorithms operate on.
//!
//! An agent (EAGLE, Hierarchical Planner, Post) exposes its stochastic decision as a
//! flat action vector. The trait surface is *batched-first*: the primitive
//! operations are [`StochasticPolicy::sample_batch`] (draw a whole minibatch of
//! action vectors in one forward pass) and [`StochasticPolicy::score_batch`]
//! (re-score a minibatch differentiably on one shared tape). The per-episode
//! [`StochasticPolicy::sample`]/[`StochasticPolicy::score`] methods are thin
//! default wrappers over batch size 1, kept so external callers migrate
//! incrementally.
//!
//! # Bit-identity contract
//!
//! Batching must not change any number: `sample_batch` over `B` per-episode RNG
//! streams returns exactly the actions and log-probabilities that `B` serial
//! `sample` calls on those streams return, and `score_batch` produces episode
//! heads whose values (and whose gradients under per-episode `backward` calls in
//! episode order) are bit-identical to `B` separate `score` tapes. This holds
//! because every batched layer stacks episodes as extra *rows* and all tensor
//! ops are row-wise (matmul output row `i` depends only on input row `i` with a
//! fixed k-summation order; softmax/broadcast/gates are per-row or elementwise),
//! so each episode's f32 summation order is unchanged.
//!
//! The update loops in [`crate::algos`] no longer take the per-episode backward
//! path the contract above is stated against: they fold all episode losses into
//! one scalar (`Tape::add_n`) and backpropagate the whole minibatch in a single
//! traversal, which visits each *shared* forward node once instead of once per
//! episode. Summed-loss gradients add episode contributions in node order
//! rather than episode order — a float *reordering*, not a different quantity —
//! so single-backward gradients match per-episode gradients to tolerance (see
//! `tests/batched_policy.rs`), while any fixed update path remains run-to-run
//! deterministic bit for bit.

use eagle_tensor::{Params, Tape, Var};

/// A scoring pass: the tape that built it plus the loss-relevant heads.
pub struct ScoreHandle {
    /// The tape holding the forward pass (call `backward` on it with a loss).
    pub tape: Tape,
    /// Joint log-probability of the scored actions, `1x1`.
    pub log_prob: Var,
    /// Mean per-decision entropy of the policy, `1x1`.
    pub entropy: Var,
    /// Optional differentiable auxiliary loss the agent wants *added* to every
    /// policy-update loss (e.g. EAGLE's group-balance regularizer). Must not
    /// depend on the sampled actions, so PPO's importance ratios stay valid.
    pub aux_loss: Option<Var>,
}

/// The loss-relevant heads of one episode inside a [`BatchScoreHandle`].
///
/// All `Var`s live on the shared batch tape. `aux_loss` may reference the same
/// node across episodes when the auxiliary term is episode-independent (it is
/// for EAGLE's balance regularizer); each episode's loss then contributes one
/// scaled gradient of that node — under a summed-loss single backward exactly
/// as under per-episode `backward` calls — matching `B` separate tapes.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeScore {
    /// Joint log-probability of this episode's actions, `1x1`.
    pub log_prob: Var,
    /// Mean per-decision entropy for this episode, `1x1`.
    pub entropy: Var,
    /// Optional auxiliary loss (see [`ScoreHandle::aux_loss`]).
    pub aux_loss: Option<Var>,
}

/// A batched scoring pass: one shared tape holding the forward pass of every
/// episode, plus per-episode heads.
///
/// Algorithms build each episode's loss on the shared tape, fold the losses
/// with `Tape::add_n`, and run ONE `Tape::backward_into` for the whole
/// minibatch: shared forward nodes are traversed once, not once per episode.
/// (Per-episode `tape.backward(loss_b, params)` calls in episode order remain
/// supported and reproduce `B` separate tapes bit for bit; the single-backward
/// path reorders the same float contributions, agreeing to tolerance.)
pub struct BatchScoreHandle {
    /// The shared tape holding all episodes' forward passes.
    pub tape: Tape,
    /// Per-episode heads, in the order of the scored action vectors.
    pub episodes: Vec<EpisodeScore>,
}

/// A stochastic policy over flat action vectors, batched-first.
pub trait StochasticPolicy {
    /// Number of `u32` RNG draws one sampled episode consumes. Fixed per policy
    /// (it equals the action-vector length for every placement agent), which is
    /// what lets a caller pre-split per-episode streams off one master RNG with
    /// [`fork_streams`] and keep checkpointed RNG accounting identical to a
    /// serial per-episode sampling loop.
    fn rng_draws_per_sample(&self) -> usize;

    /// Samples one action vector per RNG stream in a single batched forward
    /// pass, returning each with its joint log-probability under the sampling
    /// parameters (needed for PPO's importance ratio). Episode `b` consumes
    /// draws only from `rngs[b]`, in the same order a serial
    /// [`StochasticPolicy::sample`] call on that stream would.
    fn sample_batch(
        &self,
        params: &Params,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<(Vec<usize>, f32)>;

    /// Re-scores a minibatch of action vectors under `params` on one shared
    /// tape (see [`BatchScoreHandle`] for the gradient contract).
    fn score_batch(&self, params: &Params, actions: &[Vec<usize>]) -> BatchScoreHandle;

    /// Samples a single action vector. Default: [`StochasticPolicy::sample_batch`]
    /// with batch size 1.
    fn sample(&self, params: &Params, rng: &mut dyn rand::RngCore) -> (Vec<usize>, f32) {
        self.sample_batch(params, &mut [rng]).pop().expect("sample_batch returns one entry per rng")
    }

    /// Re-scores `actions` under `params` on a fresh tape. Default:
    /// [`StochasticPolicy::score_batch`] with batch size 1.
    fn score(&self, params: &Params, actions: &[usize]) -> ScoreHandle {
        let mut h = self.score_batch(params, &[actions.to_vec()]);
        let ep = h.episodes.pop().expect("score_batch returns one entry per action vector");
        ScoreHandle {
            tape: h.tape,
            log_prob: ep.log_prob,
            entropy: ep.entropy,
            aux_loss: ep.aux_loss,
        }
    }
}

/// Samples an index from one categorical probability row by inverse-CDF.
///
/// Degenerate rows — a NaN/∞ entry or a near-zero sum, both producible by
/// extreme logits overflowing a softmax — fall back to the argmax over the
/// finite entries (first index on ties, 0 if nothing is finite) instead of
/// silently returning the last index. The RNG is always advanced exactly
/// once, so healthy rows keep the identical sampling stream they had before
/// the guard existed.
pub fn sample_categorical(probs: &[f32], rng: &mut dyn rand::RngCore) -> usize {
    use rand::Rng;
    let r: f32 = rng.gen();
    let sum: f32 = probs.iter().sum();
    if !sum.is_finite() || sum <= 1e-12 {
        let mut best: Option<(usize, f32)> = None;
        for (i, &p) in probs.iter().enumerate() {
            if p.is_finite() && best.is_none_or(|(_, bp)| p > bp) {
                best = Some((i, p));
            }
        }
        return best.map_or(0, |(i, _)| i);
    }
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Splits `count` per-episode RNG streams off `master`, leaving `master`
/// advanced past exactly `count * draws_per_sample` `u32` draws.
///
/// Stream `b` starts at the position `master` held after `b` serial episodes,
/// so a batched sampler consuming `draws_per_sample` draws per stream
/// reproduces a serial per-episode sampling loop's draws bit-for-bit — and the
/// master RNG (the one checkpoints capture) ends at the same position either
/// way.
pub fn fork_streams<R: rand::RngCore + Clone>(
    master: &mut R,
    draws_per_sample: usize,
    count: usize,
) -> Vec<R> {
    let mut streams = Vec::with_capacity(count);
    for _ in 0..count {
        streams.push(master.clone());
        for _ in 0..draws_per_sample {
            master.next_u32();
        }
    }
    streams
}

#[cfg(test)]
pub(crate) mod test_policy {
    //! A minimal categorical bandit policy used to unit-test the algorithms in
    //! isolation from the full placement networks. Implements only the batched
    //! primitives; the per-episode methods come from the trait defaults.

    use super::*;
    use eagle_tensor::{ParamId, Tensor};

    /// Single categorical distribution over `n` arms, parameterized by raw logits.
    pub struct Bandit {
        pub logits: ParamId,
    }

    impl Bandit {
        pub fn new(params: &mut Params, arms: usize) -> Self {
            Self { logits: params.add("bandit/logits", Tensor::zeros(1, arms)) }
        }

        pub fn probs(&self, params: &Params) -> Vec<f32> {
            let mut tape = Tape::new();
            let l = tape.param(params, self.logits);
            let p = tape.softmax(l);
            tape.value(p).row(0).to_vec()
        }
    }

    impl StochasticPolicy for Bandit {
        fn rng_draws_per_sample(&self) -> usize {
            1
        }

        fn sample_batch(
            &self,
            params: &Params,
            rngs: &mut [&mut dyn rand::RngCore],
        ) -> Vec<(Vec<usize>, f32)> {
            let probs = self.probs(params);
            rngs.iter_mut()
                .map(|rng| {
                    let arm = sample_categorical(&probs, &mut **rng);
                    (vec![arm], probs[arm].ln())
                })
                .collect()
        }

        fn score_batch(&self, params: &Params, actions: &[Vec<usize>]) -> BatchScoreHandle {
            let mut tape = Tape::new();
            let l = tape.param(params, self.logits);
            let ls = tape.log_softmax(l);
            let p = tape.softmax(l);
            let plogp = tape.mul_elem(p, ls);
            let s = tape.sum_all(plogp);
            let entropy = tape.neg(s);
            let episodes = actions
                .iter()
                .map(|a| {
                    let picked = tape.pick_per_row(ls, &a[..1]);
                    let log_prob = tape.sum_all(picked);
                    EpisodeScore { log_prob, entropy, aux_loss: None }
                })
                .collect();
            BatchScoreHandle { tape, episodes }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_categorical_degenerate_rows_fall_back_to_finite_argmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // NaN poisons the sum: argmax over the finite entries wins.
        assert_eq!(sample_categorical(&[f32::NAN, 0.2, 0.7], &mut rng), 2);
        // Overflowed softmax (∞ entry): the ∞ is skipped, not "last index".
        assert_eq!(sample_categorical(&[0.3, f32::INFINITY, 0.1], &mut rng), 0);
        // Near-zero mass (all-underflowed row): first index on ties.
        assert_eq!(sample_categorical(&[0.0, 0.0, 0.0], &mut rng), 0);
        // Nothing finite at all: index 0, not a panic.
        assert_eq!(sample_categorical(&[f32::NAN, f32::NAN], &mut rng), 0);
        // Negative-underflow garbage still picks the largest finite entry.
        assert_eq!(sample_categorical(&[-1.0, f32::NAN, -0.5], &mut rng), 2);
    }

    #[test]
    fn sample_categorical_healthy_rows_keep_their_rng_stream() {
        // The degenerate guard must consume exactly one draw, like the healthy
        // path: interleaving degenerate calls cannot shift healthy samples.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let healthy = [0.1f32, 0.7, 0.2];
        let _ = sample_categorical(&healthy, &mut a);
        let first_a = sample_categorical(&healthy, &mut a);
        let _ = sample_categorical(&[f32::NAN, 1.0], &mut b);
        let first_b = sample_categorical(&healthy, &mut b);
        assert_eq!(first_a, first_b);
        // And a healthy row samples by inverse-CDF: probability-1 mass on one
        // index always returns it.
        for _ in 0..16 {
            assert_eq!(sample_categorical(&[0.0, 1.0, 0.0], &mut a), 1);
        }
    }

    #[test]
    fn fork_streams_reproduces_serial_draw_order() {
        // Forked streams replay the exact windows of the master stream a
        // serial per-episode loop would consume, and the master ends at the
        // same position either way.
        let draws = 5;
        let mut master = ChaCha8Rng::seed_from_u64(77);
        let mut serial = master.clone();
        let serial_draws: Vec<u32> = (0..3 * draws).map(|_| serial.next_u32()).collect();

        let mut streams = fork_streams(&mut master, draws, 3);
        for (b, stream) in streams.iter_mut().enumerate() {
            for d in 0..draws {
                assert_eq!(stream.next_u32(), serial_draws[b * draws + d], "episode {b} draw {d}");
            }
        }
        assert_eq!(master.next_u32(), serial.next_u32(), "master advanced past all episodes");
    }

    #[test]
    fn bandit_per_episode_wrappers_match_batch() {
        use test_policy::Bandit;
        let mut params = Params::new();
        let bandit = Bandit::new(&mut params, 4);
        let mut master = ChaCha8Rng::seed_from_u64(5);
        let mut streams = fork_streams(&mut master.clone(), bandit.rng_draws_per_sample(), 6);
        let mut refs: Vec<&mut dyn rand::RngCore> =
            streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
        let batch = bandit.sample_batch(&params, &mut refs);
        let serial: Vec<_> = (0..6).map(|_| bandit.sample(&params, &mut master)).collect();
        assert_eq!(batch, serial);

        let actions: Vec<Vec<usize>> = batch.iter().map(|(a, _)| a.clone()).collect();
        let bh = bandit.score_batch(&params, &actions);
        for (ep, a) in bh.episodes.iter().zip(&actions) {
            let single = bandit.score(&params, a);
            assert_eq!(
                bh.tape.value(ep.log_prob).item().to_bits(),
                single.tape.value(single.log_prob).item().to_bits()
            );
            assert_eq!(
                bh.tape.value(ep.entropy).item().to_bits(),
                single.tape.value(single.entropy).item().to_bits()
            );
        }
    }
}
