//! The policy abstraction the training algorithms operate on.
//!
//! An agent (EAGLE, Hierarchical Planner, Post) exposes its stochastic decision as a
//! flat action vector; the algorithms only need to sample actions and to re-score a
//! given action vector under the current parameters (producing differentiable
//! log-probability and entropy on a fresh tape).

use eagle_tensor::{Params, Tape, Var};

/// A scoring pass: the tape that built it plus the loss-relevant heads.
pub struct ScoreHandle {
    /// The tape holding the forward pass (call `backward` on it with a loss).
    pub tape: Tape,
    /// Joint log-probability of the scored actions, `1x1`.
    pub log_prob: Var,
    /// Mean per-decision entropy of the policy, `1x1`.
    pub entropy: Var,
    /// Optional differentiable auxiliary loss the agent wants *added* to every
    /// policy-update loss (e.g. EAGLE's group-balance regularizer). Must not
    /// depend on the sampled actions, so PPO's importance ratios stay valid.
    pub aux_loss: Option<Var>,
}

/// A stochastic policy over flat action vectors.
pub trait StochasticPolicy {
    /// Samples an action vector, returning it with its joint log-probability under
    /// the sampling parameters (needed for PPO's importance ratio).
    fn sample(&self, params: &Params, rng: &mut dyn rand::RngCore) -> (Vec<usize>, f32);

    /// Re-scores `actions` under `params` on a fresh tape.
    fn score(&self, params: &Params, actions: &[usize]) -> ScoreHandle;
}

#[cfg(test)]
pub(crate) mod test_policy {
    //! A minimal categorical bandit policy used to unit-test the algorithms in
    //! isolation from the full placement networks.

    use super::*;
    use eagle_tensor::{ParamId, Tensor};

    /// Single categorical distribution over `n` arms, parameterized by raw logits.
    pub struct Bandit {
        pub logits: ParamId,
        pub arms: usize,
    }

    impl Bandit {
        pub fn new(params: &mut Params, arms: usize) -> Self {
            Self { logits: params.add("bandit/logits", Tensor::zeros(1, arms)), arms }
        }

        pub fn probs(&self, params: &Params) -> Vec<f32> {
            let mut tape = Tape::new();
            let l = tape.param(params, self.logits);
            let p = tape.softmax(l);
            tape.value(p).row(0).to_vec()
        }
    }

    impl StochasticPolicy for Bandit {
        fn sample(&self, params: &Params, rng: &mut dyn rand::RngCore) -> (Vec<usize>, f32) {
            use rand::Rng;
            let probs = self.probs(params);
            let r: f32 = rng.gen();
            let mut acc = 0.0;
            let mut arm = self.arms - 1;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if r < acc {
                    arm = i;
                    break;
                }
            }
            (vec![arm], probs[arm].ln())
        }

        fn score(&self, params: &Params, actions: &[usize]) -> ScoreHandle {
            let mut tape = Tape::new();
            let l = tape.param(params, self.logits);
            let ls = tape.log_softmax(l);
            let picked = tape.pick_per_row(ls, &actions[..1]);
            let log_prob = tape.sum_all(picked);
            let p = tape.softmax(l);
            let plogp = tape.mul_elem(p, ls);
            let s = tape.sum_all(plogp);
            let entropy = tape.neg(s);
            ScoreHandle { tape, log_prob, entropy, aux_loss: None }
        }
    }
}
