//! Reward shaping and the moving-average baseline (paper Eq. 4).
//!
//! The paper uses `R_t = -sqrt(r_t)` where `r_t` is the measured per-step time, and
//! — after finding that a learned value network starves for samples — estimates
//! advantages against an exponential moving average of rewards:
//! `A_t = R_t - ExpMovAvg(R_t)`.

/// Reward of a valid placement with per-step time `t` seconds: `-sqrt(t)`
/// (the paper's Eq. 4 transform).
///
/// # Panics
/// Panics on a non-finite or negative `t`: a NaN reward would silently poison
/// the EMA baseline and every subsequent advantage, so a corrupted step time
/// must fail loudly at the boundary instead. The simulator engine only emits
/// finite non-negative makespans.
pub fn reward_from_time(t: f64) -> f64 {
    assert!(t.is_finite() && t >= 0.0, "step time must be finite and >= 0, got {t}");
    -t.sqrt()
}

/// Alternative reward transforms, for the ablation of the paper's `-sqrt(t)` choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardTransform {
    /// The paper's `-sqrt(t)`.
    NegSqrt,
    /// Plain `-t` (heavily weights slow placements).
    NegLinear,
    /// `-ln(1 + t)` (compresses even harder than sqrt).
    NegLog,
}

impl RewardTransform {
    /// Applies the transform to a per-step time.
    ///
    /// # Panics
    /// Panics on a non-finite or negative `t` (see [`reward_from_time`]).
    pub fn apply(self, t: f64) -> f64 {
        assert!(t.is_finite() && t >= 0.0, "step time must be finite and >= 0, got {t}");
        match self {
            RewardTransform::NegSqrt => -t.sqrt(),
            RewardTransform::NegLinear => -t,
            RewardTransform::NegLog => -(1.0 + t).ln(),
        }
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            RewardTransform::NegSqrt => "-sqrt(t)",
            RewardTransform::NegLinear => "-t",
            RewardTransform::NegLog => "-log(1+t)",
        }
    }
}

/// Reward of an invalid (OOM) placement: the reward a hypothetical placement with
/// `penalty_time` seconds per step would get. The penalty must be worse than any
/// realistic valid placement so the agent learns to avoid invalid regions, without
/// being so extreme that it swamps the advantage scale.
pub fn invalid_reward(penalty_time: f64) -> f64 {
    reward_from_time(penalty_time)
}

/// Exponential-moving-average reward baseline.
///
/// Serializable: the baseline is part of the trainer's resumable state — a
/// resumed run that re-seeded it would compute different advantages than the
/// uninterrupted run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmaBaseline {
    alpha: f64,
    value: Option<f64>,
}

impl EmaBaseline {
    /// `alpha` is the update weight of the newest reward (e.g. 0.1).
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha in [0, 1]");
        Self { alpha, value: None }
    }

    /// Current baseline (the first observed reward seeds it).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Advantage of `reward` against the current baseline, then folds the reward
    /// into the average. The first reward has zero advantage by construction.
    pub fn advantage(&mut self, reward: f64) -> f64 {
        let baseline = self.value.unwrap_or(reward);
        let adv = reward - baseline;
        self.value = Some(baseline + self.alpha * (reward - baseline));
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_monotone_decreasing_in_time() {
        assert!(reward_from_time(1.0) > reward_from_time(4.0));
        assert_eq!(reward_from_time(4.0), -2.0);
        assert!(invalid_reward(100.0) < reward_from_time(25.0));
    }

    #[test]
    fn sqrt_compresses_large_times() {
        // The square root softens the penalty gap at large times relative to small
        // ones: 1s->4s loses 1.0 reward, 100s->103s loses ~0.15.
        let small_gap = reward_from_time(1.0) - reward_from_time(4.0);
        let large_gap = reward_from_time(100.0) - reward_from_time(103.0);
        assert!(small_gap > 5.0 * large_gap);
    }

    #[test]
    fn transforms_are_monotone_and_ordered() {
        for tr in [RewardTransform::NegSqrt, RewardTransform::NegLinear, RewardTransform::NegLog] {
            assert!(tr.apply(1.0) > tr.apply(9.0), "{tr:?} must prefer faster placements");
        }
        // At t = 9: -3 (sqrt) vs -9 (linear) vs -2.3 (log).
        assert!(RewardTransform::NegLinear.apply(9.0) < RewardTransform::NegSqrt.apply(9.0));
        assert!(RewardTransform::NegSqrt.apply(9.0) < RewardTransform::NegLog.apply(9.0));
        assert_eq!(RewardTransform::NegSqrt.apply(4.0), reward_from_time(4.0));
    }

    #[test]
    fn ema_baseline_tracks_rewards() {
        let mut b = EmaBaseline::new(0.5);
        assert_eq!(b.advantage(-2.0), 0.0, "first reward has no advantage");
        assert_eq!(b.value(), Some(-2.0));
        // Better-than-baseline reward has positive advantage.
        let adv = b.advantage(-1.0);
        assert!(adv > 0.0);
        // Baseline moved halfway: -2 + 0.5 * 1 = -1.5.
        assert!((b.value().unwrap() + 1.5).abs() < 1e-12);
        // Worse reward now has negative advantage.
        assert!(b.advantage(-3.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha in [0, 1]")]
    fn bad_alpha_panics() {
        let _ = EmaBaseline::new(1.5);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn nan_step_time_panics() {
        let _ = reward_from_time(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_step_time_panics() {
        let _ = RewardTransform::NegLog.apply(-1.0);
    }
}
