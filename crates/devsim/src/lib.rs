//! # eagle-devsim
//!
//! Discrete-event simulator of the paper's evaluation machine (4x P100 + CPU) and
//! the placement-measurement protocol built on top of it.
//!
//! The paper measures each sampled placement by running the real model for 15 steps
//! on physical hardware; this crate substitutes a simulator that produces the same
//! signal — per-step time, or OOM for invalid placements — from the op graph's
//! FLOPs, tensor sizes and memory footprints (see DESIGN.md for the substitution
//! argument).
//!
//! * [`Machine`] / [`DeviceSpec`] — the device model.
//! * [`Placement`] — one device per op.
//! * [`engine`] — the causal discrete-event scheduling core (shared by
//!   [`simulate`] and [`trace`], so the two views cannot drift).
//! * [`simulate`] — one training step's makespan (OOM gate + engine).
//! * [`Environment`] — the 15-step measurement protocol with noise and a simulated
//!   wall-clock (the x-axis of the paper's training-curve figures).
//! * [`predefined`] — Single-GPU and Human-Expert baseline placements.
//! * [`search`] — random / hill-climb / annealing oracles over the landscape.
//! * [`Benchmark`] — calibrated Inception-V3 / GNMT / BERT instances.

#![warn(missing_docs)]

mod benchmarks;
mod cache;
mod device;
pub mod engine;
mod env;
mod placement;
pub mod predefined;
pub mod search;
mod sim;
pub mod trace;

pub use benchmarks::{calibrate, Benchmark, PaperNumbers};
pub use cache::{BaseEval, CacheStats, PlacementCache};
pub use device::{
    efficiency, DeviceId, DeviceKind, DeviceSpec, Machine, MachineBuilder, MachineError,
};
pub use eagle_obs::resolve_workers;
pub use engine::{OpSlot, Schedule, TransferSlot};
pub use env::{
    CacheEntryState, EnvError, EnvSnapshot, EnvState, EnvStateError, Environment,
    EnvironmentBuilder, MeasureConfig, Measurement, RngState, DEFAULT_CACHE_CAPACITY,
};
pub use placement::{Placement, PlacementError};
pub use sim::{simulate, simulate_recorded, SimOutcome, StepStats};
