//! Placement representation: one device per operation.

use eagle_opgraph::{OpGraph, OpId};
use serde::{Deserialize, Serialize};

use crate::device::{DeviceId, Machine};

/// Why a placement does not fit a graph/machine pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The placement covers a different number of ops than the graph has.
    LengthMismatch {
        /// Ops covered by the placement.
        placement: usize,
        /// Ops in the graph.
        graph: usize,
    },
    /// An op is assigned to a device index the machine does not have.
    UnknownDevice {
        /// The offending op index.
        op: usize,
        /// The nonexistent device index.
        device: u8,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::LengthMismatch { placement, graph } => {
                write!(f, "placement covers {placement} ops but graph has {graph}")
            }
            PlacementError::UnknownDevice { op, device } => {
                write!(f, "op {op} placed on nonexistent device {device}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A full device assignment for a graph: `device[i]` is where op `i` runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    devices: Vec<DeviceId>,
}

impl Placement {
    /// Wraps a raw assignment vector (must have one entry per op).
    pub fn new(devices: Vec<DeviceId>) -> Self {
        Self { devices }
    }

    /// Places every op on `dev`.
    pub fn uniform(num_ops: usize, dev: DeviceId) -> Self {
        Self { devices: vec![dev; num_ops] }
    }

    /// Expands a grouped decision: `group_of[i]` maps op `i` to a group and
    /// `group_devices[g]` maps group `g` to a device — the decode step shared by
    /// every hierarchical agent in the paper.
    ///
    /// # Panics
    /// Panics if a group index is out of range of `group_devices`.
    pub fn from_groups(group_of: &[usize], group_devices: &[DeviceId]) -> Self {
        Self { devices: group_of.iter().map(|&g| group_devices[g]).collect() }
    }

    /// Number of ops covered.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no ops are covered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device of op `id`.
    #[inline]
    pub fn device(&self, id: OpId) -> DeviceId {
        self.devices[id.index()]
    }

    /// Mutable access to the raw assignment.
    pub fn devices_mut(&mut self) -> &mut [DeviceId] {
        &mut self.devices
    }

    /// Raw assignment.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Per-device resident memory (params + activations) under this placement.
    pub fn memory_per_device(&self, graph: &OpGraph, machine: &Machine) -> Vec<u64> {
        let mut mem = vec![0u64; machine.num_devices()];
        for id in graph.ids() {
            let n = graph.node(id);
            mem[self.device(id).index()] += n.param_bytes + n.act_bytes;
        }
        mem
    }

    /// Number of graph edges whose endpoints sit on different devices.
    pub fn cut_edges(&self, graph: &OpGraph) -> usize {
        graph.edges().filter(|&(u, v)| self.device(u) != self.device(v)).count()
    }

    /// Total bytes crossing devices per step.
    pub fn cut_bytes(&self, graph: &OpGraph) -> u64 {
        graph
            .edges()
            .filter(|&(u, v)| self.device(u) != self.device(v))
            .map(|(u, _)| graph.node(u).out_bytes)
            .sum()
    }

    /// Checks the placement covers exactly the graph's ops and uses only devices
    /// that exist on the machine.
    pub fn validate(&self, graph: &OpGraph, machine: &Machine) -> Result<(), PlacementError> {
        if self.devices.len() != graph.len() {
            return Err(PlacementError::LengthMismatch {
                placement: self.devices.len(),
                graph: graph.len(),
            });
        }
        for (i, d) in self.devices.iter().enumerate() {
            if d.index() >= machine.num_devices() {
                return Err(PlacementError::UnknownDevice { op: i, device: d.0 });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    fn chain(n: usize) -> OpGraph {
        let mut g = OpGraph::new("chain");
        let mut prev = None;
        for i in 0..n {
            let id = g.add_node(
                OpNode::new(format!("op{i}"), OpKind::MatMul, Phase::Forward)
                    .with_out_bytes(100)
                    .with_act_bytes(10),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        g
    }

    #[test]
    fn uniform_and_from_groups() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(4, DeviceId(1));
        assert_eq!(p.len(), 4);
        assert_eq!(p.device(OpId(3)), DeviceId(1));

        let group_of = vec![0, 0, 1, 1];
        let gd = vec![DeviceId(1), DeviceId(2)];
        let p2 = Placement::from_groups(&group_of, &gd);
        assert_eq!(p2.device(OpId(0)), DeviceId(1));
        assert_eq!(p2.device(OpId(3)), DeviceId(2));
        assert!(p2.validate(&chain(4), &m).is_ok());
    }

    #[test]
    fn cut_metrics() {
        let g = chain(4);
        let p = Placement::new(vec![DeviceId(1), DeviceId(1), DeviceId(2), DeviceId(2)]);
        assert_eq!(p.cut_edges(&g), 1);
        assert_eq!(p.cut_bytes(&g), 100);
        let all_one = Placement::uniform(4, DeviceId(1));
        assert_eq!(all_one.cut_edges(&g), 0);
    }

    #[test]
    fn memory_accounting() {
        let g = chain(3);
        let m = Machine::paper_machine();
        let p = Placement::new(vec![DeviceId(1), DeviceId(1), DeviceId(2)]);
        let mem = p.memory_per_device(&g, &m);
        assert_eq!(mem[1], 20);
        assert_eq!(mem[2], 10);
        assert_eq!(mem[0], 0);
    }

    #[test]
    fn validate_catches_errors() {
        let g = chain(3);
        let m = Machine::paper_machine();
        assert!(Placement::uniform(2, DeviceId(1)).validate(&g, &m).is_err());
        assert!(Placement::uniform(3, DeviceId(99)).validate(&g, &m).is_err());
        assert!(Placement::uniform(3, DeviceId(4)).validate(&g, &m).is_ok());
    }
}
