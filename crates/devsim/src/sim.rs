//! Discrete-event simulation of one training step under a placement.
//!
//! The simulator performs event-driven list scheduling of the op DAG over the
//! machine's devices: each device executes one op at a time in ready-time order, and
//! every cross-device data dependency pays a transfer serialized on its directed
//! link. An op's output tensor is shipped at most **once per destination device** —
//! real runtimes send one copy and fan consumers out locally, so several consumers
//! on the same remote device share a single transfer. The resulting makespan is the
//! per-step time — the quantity the paper measures on real hardware and feeds to
//! the RL agent as (negated, square-rooted) reward.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use eagle_opgraph::{OpGraph, OpId};

use crate::device::{DeviceId, Machine};
use crate::placement::Placement;

/// Result of simulating one training step.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOutcome {
    /// The placement fits and the step completes.
    Valid(StepStats),
    /// A device's memory capacity is exceeded — the run would crash with OOM,
    /// which the paper treats as an invalid placement.
    Oom {
        /// The overflowing device.
        device: DeviceId,
        /// Bytes the placement tries to keep resident there.
        required: u64,
        /// The device's capacity.
        capacity: u64,
    },
}

impl SimOutcome {
    /// Step time if valid.
    pub fn step_time(&self) -> Option<f64> {
        match self {
            SimOutcome::Valid(s) => Some(s.step_time),
            SimOutcome::Oom { .. } => None,
        }
    }
}

/// Timing breakdown of a simulated step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Makespan of the step in seconds.
    pub step_time: f64,
    /// Per-device busy time (compute only).
    pub device_busy: Vec<f64>,
    /// Total time spent in cross-device transfers (sum over links).
    pub comm_time: f64,
    /// Number of cross-device transfers: one per (producer op, destination
    /// device) pair, however many consumer edges fan out on that device.
    pub num_transfers: usize,
}

/// f64 ordered by `total_cmp` for use in the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Simulates one training step of `graph` on `machine` under `placement`.
///
/// # Panics
/// Panics if the placement fails [`Placement::validate`] (programming error rather
/// than an agent decision — agents only choose among existing devices).
pub fn simulate(graph: &OpGraph, machine: &Machine, placement: &Placement) -> SimOutcome {
    placement.validate(graph, machine).expect("placement matches graph and machine");

    // Memory feasibility first: resident bytes per device must fit.
    let mem = placement.memory_per_device(graph, machine);
    for (i, (&used, spec)) in mem.iter().zip(&machine.devices).enumerate() {
        if used > spec.mem_bytes {
            return SimOutcome::Oom {
                device: DeviceId(i as u8),
                required: used,
                capacity: spec.mem_bytes,
            };
        }
    }

    let n = graph.len();
    let mut in_remaining: Vec<u32> = (0..n).map(|i| graph.preds(OpId(i as u32)).len() as u32).collect();
    // Latest data-arrival time at each op (over all incoming edges incl. transfers).
    let mut arrival = vec![0.0f64; n];
    let mut dev_free = vec![0.0f64; machine.num_devices()];
    // Directed link availability, dense (num_devices is tiny).
    let nd = machine.num_devices();
    let mut link_free = vec![0.0f64; nd * nd];
    let mut device_busy = vec![0.0f64; nd];
    let mut comm_time = 0.0f64;
    let mut num_transfers = 0usize;
    let mut makespan = 0.0f64;

    let mut ready: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
    for (i, &deps) in in_remaining.iter().enumerate() {
        if deps == 0 {
            ready.push(Reverse((Time(0.0), i as u32)));
        }
    }

    // Arrival time of the current op's output on each device, stamped with the
    // producing op's index: consumers on the same remote device reuse the one
    // shipped copy instead of paying the transfer per edge.
    let mut shipped: Vec<(u32, f64)> = vec![(u32::MAX, 0.0); nd];

    let mut scheduled = 0usize;
    while let Some(Reverse((Time(rt), idx))) = ready.pop() {
        let id = OpId(idx);
        let node = graph.node(id);
        let dev = placement.device(id);
        let exec = machine.exec_time(node.kind, node.flops, dev);
        let start = rt.max(dev_free[dev.index()]);
        let finish = start + exec;
        dev_free[dev.index()] = finish;
        device_busy[dev.index()] += exec;
        makespan = makespan.max(finish);
        scheduled += 1;

        for &succ in graph.succs(id) {
            let sdev = placement.device(succ);
            let data_at = if sdev == dev {
                finish
            } else if shipped[sdev.index()].0 == idx {
                shipped[sdev.index()].1
            } else {
                let link = &mut link_free[dev.index() * nd + sdev.index()];
                let t_start = finish.max(*link);
                let t = machine.transfer_time(node.out_bytes);
                *link = t_start + t;
                comm_time += t;
                num_transfers += 1;
                shipped[sdev.index()] = (idx, t_start + t);
                t_start + t
            };
            let s = succ.index();
            arrival[s] = arrival[s].max(data_at);
            in_remaining[s] -= 1;
            if in_remaining[s] == 0 {
                ready.push(Reverse((Time(arrival[s]), succ.0)));
            }
        }
    }
    assert_eq!(scheduled, n, "all ops schedule exactly once (graph is a DAG)");

    SimOutcome::Valid(StepStats { step_time: makespan, device_busy, comm_time, num_transfers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    /// chain: a -> b -> c, all MatMul with the given flops.
    fn chain(flops: f64, out_bytes: u64) -> OpGraph {
        let mut g = OpGraph::new("chain");
        let mut prev: Option<OpId> = None;
        for i in 0..3 {
            let id = g.add_node(
                OpNode::new(format!("op{i}"), OpKind::MatMul, Phase::Forward)
                    .with_flops(flops)
                    .with_out_bytes(out_bytes),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        g
    }

    /// fork-join: a -> {b, c} -> d.
    fn diamond(flops: f64) -> OpGraph {
        let mut g = OpGraph::new("diamond");
        let mk = |g: &mut OpGraph, n: &str| {
            g.add_node(
                OpNode::new(n, OpKind::MatMul, Phase::Forward)
                    .with_flops(flops)
                    .with_out_bytes(1024),
            )
        };
        let a = mk(&mut g, "a");
        let b = mk(&mut g, "b");
        let c = mk(&mut g, "c");
        let d = mk(&mut g, "d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn serial_chain_time_adds_up() {
        let g = chain(4.65e9, 0); // 1 ms each on a P100 at eff 0.5
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        let out = simulate(&g, &m, &Placement::uniform(3, gpu));
        let t = out.step_time().unwrap();
        let expected = 3.0 * (30e-6 + 1e-3);
        assert!((t - expected).abs() < 1e-9, "t = {t}, expected {expected}");
    }

    #[test]
    fn parallel_branches_overlap_across_gpus() {
        let g = diamond(4.65e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        // b and c on different GPUs overlap; same GPU serializes them.
        let same = simulate(
            &g,
            &m,
            &Placement::new(vec![gpus[0], gpus[0], gpus[0], gpus[0]]),
        )
        .step_time()
        .unwrap();
        let split = simulate(
            &g,
            &m,
            &Placement::new(vec![gpus[0], gpus[0], gpus[1], gpus[0]]),
        )
        .step_time()
        .unwrap();
        assert!(split < same, "parallel {split} should beat serial {same}");
    }

    #[test]
    fn heavy_transfers_penalize_splitting() {
        // Tiny compute, huge tensors: splitting a chain across devices must lose.
        let g = chain(1e6, 200 << 20);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let together = simulate(&g, &m, &Placement::uniform(3, gpus[0])).step_time().unwrap();
        let apart = simulate(
            &g,
            &m,
            &Placement::new(vec![gpus[0], gpus[1], gpus[2]]),
        )
        .step_time()
        .unwrap();
        assert!(apart > together * 5.0, "apart {apart} vs together {together}");
    }

    #[test]
    fn oom_detected() {
        let mut g = chain(1e6, 0);
        g.node_mut(OpId(0)).act_bytes = 20 << 30; // 20 GiB on a 16 GiB GPU
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        match simulate(&g, &m, &Placement::uniform(3, gpu)) {
            SimOutcome::Oom { device, required, capacity } => {
                assert_eq!(device, gpu);
                assert!(required > capacity);
            }
            SimOutcome::Valid(_) => panic!("expected OOM"),
        }
        // The CPU (125 GiB) can hold it.
        assert!(simulate(&g, &m, &Placement::uniform(3, m.cpu_id())).step_time().is_some());
    }

    #[test]
    fn fanout_to_same_device_pays_one_transfer() {
        // a on gpu0 fans out to b and c on gpu1: the tensor ships once, both
        // consumers read the same resident copy (one transfer, one latency).
        let g = diamond(4.65e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[1], gpus[1], gpus[1]]);
        match simulate(&g, &m, &p) {
            SimOutcome::Valid(s) => {
                assert_eq!(s.num_transfers, 1, "a->{{b,c}} dedupes to one shipment");
                let one = m.transfer_time(1024);
                assert!((s.comm_time - one).abs() < 1e-15, "comm {} vs {}", s.comm_time, one);
            }
            _ => panic!("valid expected"),
        }
        // Distinct destination devices still pay one transfer each.
        let split = Placement::new(vec![gpus[0], gpus[1], gpus[2], gpus[1]]);
        match simulate(&g, &m, &split) {
            SimOutcome::Valid(s) => {
                // a->b (gpu1), a->c (gpu2), c->d (gpu2->gpu1).
                assert_eq!(s.num_transfers, 3);
            }
            _ => panic!("valid expected"),
        }
    }

    #[test]
    fn stats_are_consistent() {
        let g = diamond(4.65e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[0], gpus[1], gpus[0]]);
        match simulate(&g, &m, &p) {
            SimOutcome::Valid(s) => {
                // a->c and c->d cross devices, to distinct destinations each —
                // the per-destination dedup leaves them as two transfers.
                assert_eq!(s.num_transfers, 2);
                assert!(s.comm_time > 0.0);
                assert!(s.device_busy[gpus[0].index()] > 0.0);
                assert!(s.device_busy[gpus[1].index()] > 0.0);
                assert!(s.device_busy[m.cpu_id().index()] == 0.0);
                assert!(s.step_time >= s.device_busy.iter().cloned().fold(0.0, f64::max));
            }
            _ => panic!("valid expected"),
        }
    }

    #[test]
    fn link_serialization_orders_transfers() {
        // Two producers on gpu0 both send to gpu1: second transfer waits for first.
        let mut g = OpGraph::new("two_senders");
        let mk = |g: &mut OpGraph, n: &str, bytes: u64| {
            g.add_node(
                OpNode::new(n, OpKind::MatMul, Phase::Forward)
                    .with_flops(0.0)
                    .with_out_bytes(bytes),
            )
        };
        let a = mk(&mut g, "a", 120 << 20);
        let b = mk(&mut g, "b", 120 << 20);
        let c = mk(&mut g, "c", 0);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[0], gpus[1]]);
        let t = simulate(&g, &m, &p).step_time().unwrap();
        let one_transfer = m.transfer_time(120 << 20);
        // Both transfers share the gpu0->gpu1 link, so the step takes at least twice
        // a single transfer.
        assert!(t > 2.0 * one_transfer, "t = {t}, single transfer = {one_transfer}");
    }

    #[test]
    fn deterministic() {
        let g = diamond(1e9);
        let m = Machine::paper_machine();
        let p = Placement::uniform(4, m.gpu_ids()[0]);
        let a = simulate(&g, &m, &p).step_time().unwrap();
        let b = simulate(&g, &m, &p).step_time().unwrap();
        assert_eq!(a, b);
    }
}
