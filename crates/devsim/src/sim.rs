//! Discrete-event simulation of one training step under a placement.
//!
//! The scheduling itself lives in [`crate::engine`] — a causal discrete-event
//! engine shared with [`crate::trace`] so the two views can never drift. This
//! module wraps it with the memory-feasibility (OOM) gate and projects the full
//! schedule down to the [`StepStats`] summary the RL reward consumes: each
//! device executes one op at a time in ready-time order, every cross-device
//! data dependency pays a transfer serialized on its directed link, and an op's
//! output tensor is shipped at most **once per destination device** — real
//! runtimes send one copy and fan consumers out locally, so several consumers
//! on the same remote device share a single transfer. The resulting makespan is
//! the per-step time — the quantity the paper measures on real hardware and
//! feeds to the RL agent as (negated, square-rooted) reward.

use eagle_obs::Recorder;
use eagle_opgraph::OpGraph;

use crate::device::{DeviceId, Machine};
use crate::engine;
use crate::placement::Placement;

/// Result of simulating one training step.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOutcome {
    /// The placement fits and the step completes.
    Valid(StepStats),
    /// A device's memory capacity is exceeded — the run would crash with OOM,
    /// which the paper treats as an invalid placement.
    Oom {
        /// The overflowing device.
        device: DeviceId,
        /// Bytes the placement tries to keep resident there.
        required: u64,
        /// The device's capacity.
        capacity: u64,
    },
}

impl SimOutcome {
    /// Step time if valid.
    pub fn step_time(&self) -> Option<f64> {
        match self {
            SimOutcome::Valid(s) => Some(s.step_time),
            SimOutcome::Oom { .. } => None,
        }
    }
}

/// Timing breakdown of a simulated step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Makespan of the step in seconds.
    pub step_time: f64,
    /// Per-device busy time (compute only).
    pub device_busy: Vec<f64>,
    /// Total time spent in cross-device transfers (sum over links).
    pub comm_time: f64,
    /// Number of cross-device transfers: one per (producer op, destination
    /// device) pair, however many consumer edges fan out on that device.
    pub num_transfers: usize,
}

/// Checks the placement's memory feasibility: resident bytes per device must
/// fit. Shared by [`simulate`] and [`crate::trace::trace`].
pub(crate) fn check_memory(
    graph: &OpGraph,
    machine: &Machine,
    placement: &Placement,
) -> Result<(), SimOutcome> {
    let mem = placement.memory_per_device(graph, machine);
    for (i, (&used, spec)) in mem.iter().zip(&machine.devices).enumerate() {
        if used > spec.mem_bytes {
            return Err(SimOutcome::Oom {
                device: DeviceId(i as u8),
                required: used,
                capacity: spec.mem_bytes,
            });
        }
    }
    Ok(())
}

/// Simulates one training step of `graph` on `machine` under `placement`.
///
/// # Panics
/// Panics if the placement fails [`Placement::validate`] (programming error rather
/// than an agent decision — agents only choose among existing devices).
pub fn simulate(graph: &OpGraph, machine: &Machine, placement: &Placement) -> SimOutcome {
    simulate_recorded(graph, machine, placement, &Recorder::disabled())
}

/// [`simulate`] with engine telemetry recorded to `recorder`.
///
/// Only order-independent metrics are emitted (counters and a histogram), so
/// recording from parallel rollout workers stays deterministic:
/// `devsim.engine.events` (events processed), `devsim.engine.transfers_deduped`
/// (shipments reused by same-device consumers), and `devsim.engine.queue_depth`
/// (peak event-queue depth per step, histogram).
pub fn simulate_recorded(
    graph: &OpGraph,
    machine: &Machine,
    placement: &Placement,
    recorder: &Recorder,
) -> SimOutcome {
    // Memory feasibility first: resident bytes per device must fit.
    if let Err(oom) = check_memory(graph, machine, placement) {
        return oom;
    }

    // Stats-only scheduling: skips recording the per-op slot vector, which
    // `trace` needs but the step-time reward path never reads.
    let sched = engine::schedule_stats(graph, machine, placement);
    recorder.add("devsim.engine.events", sched.events_processed);
    recorder.add("devsim.engine.transfers_deduped", sched.transfers_deduped);
    recorder.observe("devsim.engine.queue_depth", sched.peak_queue_depth as f64);

    SimOutcome::Valid(StepStats {
        step_time: sched.step_time,
        device_busy: sched.device_busy,
        comm_time: sched.comm_time,
        num_transfers: sched.transfers.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpId, OpKind, OpNode, Phase};

    /// chain: a -> b -> c, all MatMul with the given flops.
    fn chain(flops: f64, out_bytes: u64) -> OpGraph {
        let mut g = OpGraph::new("chain");
        let mut prev: Option<OpId> = None;
        for i in 0..3 {
            let id = g.add_node(
                OpNode::new(format!("op{i}"), OpKind::MatMul, Phase::Forward)
                    .with_flops(flops)
                    .with_out_bytes(out_bytes),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        g
    }

    /// fork-join: a -> {b, c} -> d.
    fn diamond(flops: f64) -> OpGraph {
        let mut g = OpGraph::new("diamond");
        let mk = |g: &mut OpGraph, n: &str| {
            g.add_node(
                OpNode::new(n, OpKind::MatMul, Phase::Forward)
                    .with_flops(flops)
                    .with_out_bytes(1024),
            )
        };
        let a = mk(&mut g, "a");
        let b = mk(&mut g, "b");
        let c = mk(&mut g, "c");
        let d = mk(&mut g, "d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn serial_chain_time_adds_up() {
        let g = chain(4.65e9, 0); // 1 ms each on a P100 at eff 0.5
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        let out = simulate(&g, &m, &Placement::uniform(3, gpu));
        let t = out.step_time().unwrap();
        let expected = 3.0 * (30e-6 + 1e-3);
        assert!((t - expected).abs() < 1e-9, "t = {t}, expected {expected}");
    }

    #[test]
    fn parallel_branches_overlap_across_gpus() {
        let g = diamond(4.65e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        // b and c on different GPUs overlap; same GPU serializes them.
        let same = simulate(&g, &m, &Placement::new(vec![gpus[0], gpus[0], gpus[0], gpus[0]]))
            .step_time()
            .unwrap();
        let split = simulate(&g, &m, &Placement::new(vec![gpus[0], gpus[0], gpus[1], gpus[0]]))
            .step_time()
            .unwrap();
        assert!(split < same, "parallel {split} should beat serial {same}");
    }

    #[test]
    fn heavy_transfers_penalize_splitting() {
        // Tiny compute, huge tensors: splitting a chain across devices must lose.
        let g = chain(1e6, 200 << 20);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let together = simulate(&g, &m, &Placement::uniform(3, gpus[0])).step_time().unwrap();
        let apart =
            simulate(&g, &m, &Placement::new(vec![gpus[0], gpus[1], gpus[2]])).step_time().unwrap();
        assert!(apart > together * 5.0, "apart {apart} vs together {together}");
    }

    #[test]
    fn oom_detected() {
        let mut g = chain(1e6, 0);
        g.node_mut(OpId(0)).act_bytes = 20 << 30; // 20 GiB on a 16 GiB GPU
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        match simulate(&g, &m, &Placement::uniform(3, gpu)) {
            SimOutcome::Oom { device, required, capacity } => {
                assert_eq!(device, gpu);
                assert!(required > capacity);
            }
            SimOutcome::Valid(_) => panic!("expected OOM"),
        }
        // The CPU (125 GiB) can hold it.
        assert!(simulate(&g, &m, &Placement::uniform(3, m.cpu_id())).step_time().is_some());
    }

    #[test]
    fn fanout_to_same_device_pays_one_transfer() {
        // a on gpu0 fans out to b and c on gpu1: the tensor ships once, both
        // consumers read the same resident copy (one transfer, one latency).
        let g = diamond(4.65e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[1], gpus[1], gpus[1]]);
        match simulate(&g, &m, &p) {
            SimOutcome::Valid(s) => {
                assert_eq!(s.num_transfers, 1, "a->{{b,c}} dedupes to one shipment");
                let one = m.transfer_time(1024);
                assert!((s.comm_time - one).abs() < 1e-15, "comm {} vs {}", s.comm_time, one);
            }
            _ => panic!("valid expected"),
        }
        // Distinct destination devices still pay one transfer each.
        let split = Placement::new(vec![gpus[0], gpus[1], gpus[2], gpus[1]]);
        match simulate(&g, &m, &split) {
            SimOutcome::Valid(s) => {
                // a->b (gpu1), a->c (gpu2), c->d (gpu2->gpu1).
                assert_eq!(s.num_transfers, 3);
            }
            _ => panic!("valid expected"),
        }
    }

    #[test]
    fn stats_are_consistent() {
        let g = diamond(4.65e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[0], gpus[1], gpus[0]]);
        match simulate(&g, &m, &p) {
            SimOutcome::Valid(s) => {
                // a->c and c->d cross devices, to distinct destinations each —
                // the per-destination dedup leaves them as two transfers.
                assert_eq!(s.num_transfers, 2);
                assert!(s.comm_time > 0.0);
                assert!(s.device_busy[gpus[0].index()] > 0.0);
                assert!(s.device_busy[gpus[1].index()] > 0.0);
                assert!(s.device_busy[m.cpu_id().index()] == 0.0);
                assert!(s.step_time >= s.device_busy.iter().cloned().fold(0.0, f64::max));
            }
            _ => panic!("valid expected"),
        }
    }

    #[test]
    fn link_serialization_orders_transfers() {
        // Two producers on gpu0 both send to gpu1: second transfer waits for first.
        let mut g = OpGraph::new("two_senders");
        let mk = |g: &mut OpGraph, n: &str, bytes: u64| {
            g.add_node(
                OpNode::new(n, OpKind::MatMul, Phase::Forward)
                    .with_flops(0.0)
                    .with_out_bytes(bytes),
            )
        };
        let a = mk(&mut g, "a", 120 << 20);
        let b = mk(&mut g, "b", 120 << 20);
        let c = mk(&mut g, "c", 0);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[0], gpus[1]]);
        let t = simulate(&g, &m, &p).step_time().unwrap();
        let one_transfer = m.transfer_time(120 << 20);
        // Both transfers share the gpu0->gpu1 link, so the step takes at least twice
        // a single transfer.
        assert!(t > 2.0 * one_transfer, "t = {t}, single transfer = {one_transfer}");
    }

    #[test]
    fn causal_link_contention_serializes_by_start_time() {
        // Regression test for the causal-ordering contract of the event engine.
        //
        // Two producers on one device whose *ready order is inverted relative
        // to op index*: `late` (op 0) becomes ready only after its heavy
        // predecessor finishes, `early` (op 1) is ready at t=0. A pop-order
        // scheduler keyed on (ready, index) still books `early`'s transfer
        // first — but the engine must book the gpu0→gpu1 link in *actual
        // transfer start* order, so `late`'s transfer queues strictly after
        // `early`'s, and the makespan is exact.
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let mut g = OpGraph::new("inverted_ready_order");
        // Op 0: `late`, free compute, big output — ready at t = heavy finish.
        let late = g.add_node(
            OpNode::new("late", OpKind::MatMul, Phase::Forward)
                .with_flops(0.0)
                .with_out_bytes(120 << 20),
        );
        // Op 1: `early`, free compute, big output — ready at t = 0.
        let early = g.add_node(
            OpNode::new("early", OpKind::MatMul, Phase::Forward)
                .with_flops(0.0)
                .with_out_bytes(120 << 20),
        );
        // Op 2: `heavy` gates `late`; runs on gpu1 so it does not occupy the
        // producers' device. 4.65e9 flops = 1 ms on a P100 at eff 0.5.
        let heavy = g.add_node(
            OpNode::new("heavy", OpKind::MatMul, Phase::Forward)
                .with_flops(4.65e9)
                .with_out_bytes(0),
        );
        // Op 3: sink on gpu2 consuming both transfers over the gpu0→gpu2 link.
        let sink = g.add_node(OpNode::new("sink", OpKind::MatMul, Phase::Forward).with_flops(0.0));
        g.add_edge(heavy, late);
        g.add_edge(late, sink);
        g.add_edge(early, sink);
        let p = Placement::new(vec![gpus[0], gpus[0], gpus[1], gpus[2]]);

        let launch = 30e-6; // GPU launch overhead
        let heavy_finish = launch + 1e-3; // heavy: 4.65e9 / (9.3e12 * 0.5)
        let xfer = m.transfer_time(120 << 20); // 250e-6 + bytes / 12e9
                                               // `early` runs [0, launch]; its transfer starts at `launch`.
        let early_xfer_end = launch + xfer;
        // heavy→late crosses gpu1→gpu0: a zero-byte transfer still pays link
        // latency, so `late` becomes ready at heavy_finish + transfer_time(0),
        // runs for `launch`, and *requests* the gpu0→gpu2 link at:
        let late_request = heavy_finish + m.transfer_time(0) + launch;
        // `early`'s transfer is still in flight then (≈ 10.77 ms > 1.31 ms),
        // so `late`'s transfer queues behind it — FIFO by actual start time:
        let late_xfer_start = early_xfer_end.max(late_request);
        // sink (zero flops, launch only) starts when the last input arrives.
        let expected = late_xfer_start + xfer + launch;

        let s = match simulate(&g, &m, &p) {
            SimOutcome::Valid(s) => s,
            _ => panic!("valid expected"),
        };
        assert!(
            (s.step_time - expected).abs() < 1e-12,
            "makespan {} vs expected {expected}",
            s.step_time
        );
        // early→sink, heavy→late, late→sink.
        assert_eq!(s.num_transfers, 3);

        // The trace view exposes the booked intervals: on the contended
        // gpu0→gpu2 link, `early`'s transfer is booked first even though
        // `late` has the smaller op index.
        let tr = crate::trace::trace(&g, &m, &p).unwrap();
        let link: Vec<_> =
            tr.transfers.iter().filter(|t| t.src == gpus[0].0 && t.dst == gpus[2].0).collect();
        assert_eq!(link.len(), 2);
        assert_eq!(link[0].producer, early.0, "early books the link first");
        assert_eq!(link[1].producer, late.0);
        assert!(link[1].start >= link[0].finish, "no overlap");
        assert!(
            (link[1].start - late_xfer_start).abs() < 1e-12,
            "late transfer queues at {} (expected {late_xfer_start})",
            link[1].start
        );
    }

    #[test]
    fn deterministic() {
        let g = diamond(1e9);
        let m = Machine::paper_machine();
        let p = Placement::uniform(4, m.gpu_ids()[0]);
        let a = simulate(&g, &m, &p).step_time().unwrap();
        let b = simulate(&g, &m, &p).step_time().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_simulate_counts_engine_events() {
        let g = diamond(1e9);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[1], gpus[1], gpus[1]]);
        let rec = Recorder::new();
        let out = simulate_recorded(&g, &m, &p, &rec);
        assert!(matches!(out, SimOutcome::Valid(_)));
        // 4 compute finishes + 1 arrival (a->gpu1, shared by b and c).
        assert_eq!(rec.counter_value("devsim.engine.events"), 5);
        assert_eq!(rec.counter_value("devsim.engine.transfers_deduped"), 1);
        assert!(rec.histogram("devsim.engine.queue_depth").is_some());
        // The OOM path never reaches the engine.
        let mut big = diamond(1e9);
        big.node_mut(OpId(0)).act_bytes = 20 << 30;
        let rec2 = Recorder::new();
        simulate_recorded(&big, &m, &Placement::uniform(4, gpus[0]), &rec2);
        assert_eq!(rec2.counter_value("devsim.engine.events"), 0);
    }
}
