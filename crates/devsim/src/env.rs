//! The RL environment: measurement protocol over the simulated machine.
//!
//! The paper's protocol (Sec. IV-C): run each sampled placement for 15 training
//! steps, discard the first 5 warm-up steps (parameter initialization makes them
//! slow), average the remaining 10; after training, re-run the best placement for
//! 1,000 steps. Measurements on real hardware are noisy, so the environment applies
//! multiplicative log-normal jitter per measured step, seeded for reproducibility.
//!
//! The environment also keeps a *simulated wall-clock*: each evaluation costs
//! session setup + parameter staging + the measured steps. Training curves indexed
//! by this clock reproduce the time axis of the paper's Figs. 5–7.

use eagle_obs::{resolve_workers, Recorder};
use eagle_opgraph::OpGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cache::{BaseEval, CacheStats, PlacementCache};
use crate::device::Machine;
use crate::placement::Placement;
use crate::sim::{simulate_recorded, SimOutcome};

/// Default bound on the number of memoized placements per environment.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Why an [`EnvironmentBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// The op graph has no nodes — nothing to place.
    EmptyGraph,
    /// The machine has no devices — nowhere to place.
    NoDevices,
    /// Warm-up consumes every measured step (`warmup_steps >= train_steps`).
    NoMeasuredSteps {
        /// Configured steps per evaluation.
        train_steps: usize,
        /// Configured leading steps discarded as warm-up.
        warmup_steps: usize,
    },
    /// A [`MeasureConfig`] knob is negative or non-finite.
    BadKnob {
        /// Which knob.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::EmptyGraph => write!(f, "op graph has no nodes"),
            EnvError::NoDevices => write!(f, "machine has no devices"),
            EnvError::NoMeasuredSteps { train_steps, warmup_steps } => write!(
                f,
                "warm-up ({warmup_steps} steps) consumes the whole evaluation ({train_steps} steps)"
            ),
            EnvError::BadKnob { name, value } => {
                write!(f, "measure-config knob {name} must be finite and >= 0, got {value}")
            }
        }
    }
}

impl std::error::Error for EnvError {}

/// Staged configuration for an [`Environment`]; built with
/// [`Environment::builder`], validated by [`EnvironmentBuilder::build`].
#[derive(Debug, Clone)]
pub struct EnvironmentBuilder {
    graph: OpGraph,
    machine: Machine,
    cfg: MeasureConfig,
    seed: u64,
    cache_capacity: usize,
    recorder: Recorder,
}

impl EnvironmentBuilder {
    /// Seed of the measurement-noise RNG (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Measurement protocol (default [`MeasureConfig::default`]).
    pub fn measure(mut self, cfg: MeasureConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Placement-cache capacity; 0 disables memoization entirely
    /// (default [`DEFAULT_CACHE_CAPACITY`]).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Telemetry recorder the environment reports through (default disabled).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Validates the staged configuration and builds the environment.
    pub fn build(self) -> Result<Environment, EnvError> {
        if self.graph.is_empty() {
            return Err(EnvError::EmptyGraph);
        }
        if self.machine.num_devices() == 0 {
            return Err(EnvError::NoDevices);
        }
        if self.cfg.warmup_steps >= self.cfg.train_steps {
            return Err(EnvError::NoMeasuredSteps {
                train_steps: self.cfg.train_steps,
                warmup_steps: self.cfg.warmup_steps,
            });
        }
        for (name, value) in [
            ("warmup_factor", self.cfg.warmup_factor),
            ("noise_sigma", self.cfg.noise_sigma),
            ("session_setup", self.cfg.session_setup),
            ("oom_cost", self.cfg.oom_cost),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(EnvError::BadKnob { name, value });
            }
        }
        Ok(Environment {
            graph: self.graph,
            machine: self.machine,
            cfg: self.cfg,
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            evals: 0,
            invalid: 0,
            wall_clock: 0.0,
            best: None,
            cache: PlacementCache::new(self.cache_capacity),
            recorder: self.recorder,
        })
    }
}

/// Counter snapshot of one environment: evaluations, OOMs, simulated
/// wall-clock and cache behavior in a single value — the one-call replacement
/// for the deprecated `num_evals`/`cache_stats` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnvSnapshot {
    /// Placement evaluations performed (training protocol only).
    pub evals: u64,
    /// Evaluations that came back invalid (OOM).
    pub invalid_evals: u64,
    /// Simulated wall-clock charged so far (seconds).
    pub wall_clock: f64,
    /// Placement-cache counters.
    pub cache: CacheStats,
}

impl EnvSnapshot {
    /// Counter difference since an earlier snapshot.
    pub fn since(&self, earlier: &EnvSnapshot) -> EnvSnapshot {
        EnvSnapshot {
            evals: self.evals - earlier.evals,
            invalid_evals: self.invalid_evals - earlier.invalid_evals,
            wall_clock: self.wall_clock - earlier.wall_clock,
            cache: self.cache.since(&earlier.cache),
        }
    }
}

/// Serializable snapshot of a [`ChaCha8Rng`] stream position — the piece of
/// environment (and trainer) state that makes a resumed run continue the
/// *same* random sequence instead of restarting it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RngState {
    key: Vec<u32>,
    counter: u64,
    block: Vec<u32>,
    index: u64,
}

impl RngState {
    /// Captures the generator's current position.
    pub fn capture(rng: &ChaCha8Rng) -> Self {
        let s = rng.state();
        Self {
            key: s.key.to_vec(),
            counter: s.counter,
            block: s.block.to_vec(),
            index: s.index as u64,
        }
    }

    /// Rebuilds the generator at the captured position. Fails (typed, no
    /// panic) when the snapshot was corrupted or hand-edited out of range.
    pub fn restore(&self) -> Result<ChaCha8Rng, EnvStateError> {
        let key: [u32; 8] = self.key.as_slice().try_into().map_err(|_| {
            EnvStateError::BadRng(format!("key has {} words, want 8", self.key.len()))
        })?;
        let block: [u32; 16] = self.block.as_slice().try_into().map_err(|_| {
            EnvStateError::BadRng(format!("block has {} words, want 16", self.block.len()))
        })?;
        if self.index > 16 {
            return Err(EnvStateError::BadRng(format!("word index {} > 16", self.index)));
        }
        Ok(ChaCha8Rng::from_state(rand_chacha::ChaCha8State {
            key,
            counter: self.counter,
            block,
            index: self.index as usize,
        }))
    }
}

/// Why an [`EnvState`] snapshot could not be restored into an environment.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvStateError {
    /// The RNG snapshot is malformed (wrong word counts / position).
    BadRng(String),
    /// A persisted placement does not fit this environment's graph/machine.
    BadPlacement(String),
    /// The persisted cache does not fit this environment's graph/machine.
    BadCache(String),
}

impl std::fmt::Display for EnvStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvStateError::BadRng(m) => write!(f, "bad RNG snapshot: {m}"),
            EnvStateError::BadPlacement(m) => write!(f, "bad placement snapshot: {m}"),
            EnvStateError::BadCache(m) => write!(f, "bad cache snapshot: {m}"),
        }
    }
}

impl std::error::Error for EnvStateError {}

/// One persisted placement-cache entry: raw device bytes and the memoized
/// noiseless outcome (`None` = remembered OOM).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheEntryState {
    /// Device index per op, in op order.
    pub devices: Vec<u8>,
    /// Noiseless per-step time; `None` for a cached OOM verdict.
    pub step_time: Option<f64>,
}

/// The complete mutable state of an [`Environment`], serializable for
/// checkpoint/resume: RNG position, counters, simulated wall-clock, the best
/// placement seen, and the placement cache (contents in FIFO order plus its
/// lifetime counters). The immutable configuration — graph, machine,
/// [`MeasureConfig`], seed, recorder — is *not* included: the caller rebuilds
/// the environment identically and then applies this state on top.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnvState {
    /// Measurement-noise RNG position.
    pub rng: RngState,
    /// Evaluations performed.
    pub evals: u64,
    /// Invalid (OOM) evaluations.
    pub invalid: u64,
    /// Simulated wall-clock charged so far (seconds).
    pub wall_clock: f64,
    /// Best valid placement and its noisy measured step time.
    pub best: Option<(f64, Placement)>,
    /// Placement-cache capacity of the checkpointed run.
    pub cache_capacity: u64,
    /// Lifetime cache counters.
    pub cache_stats: CacheStats,
    /// Cached placements in FIFO (insertion) order.
    pub cache_entries: Vec<CacheEntryState>,
}

/// Measurement-protocol knobs.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Steps run per evaluation during training (paper: 15).
    pub train_steps: usize,
    /// Leading steps discarded as warm-up (paper: 5).
    pub warmup_steps: usize,
    /// Slow-down factor of warm-up steps (device-side initialization).
    pub warmup_factor: f64,
    /// Std-dev of per-step log-normal measurement noise (0 disables noise).
    pub noise_sigma: f64,
    /// Fixed per-evaluation cost: session construction, graph rewrite, etc.
    pub session_setup: f64,
    /// Wall-clock wasted when a placement turns out invalid (OOM crash + restart).
    pub oom_cost: f64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            train_steps: 15,
            warmup_steps: 5,
            warmup_factor: 3.0,
            noise_sigma: 0.02,
            session_setup: 30.0,
            oom_cost: 10.0,
        }
    }
}

impl MeasureConfig {
    /// Noise-free, zero-overhead protocol for deterministic tests.
    pub fn exact() -> Self {
        Self {
            train_steps: 1,
            warmup_steps: 0,
            warmup_factor: 1.0,
            noise_sigma: 0.0,
            session_setup: 0.0,
            oom_cost: 0.0,
        }
    }
}

/// One placement evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Mean per-step time over the measured (post-warm-up) steps;
    /// `None` when the placement OOMs (invalid).
    pub step_time: Option<f64>,
    /// Simulated wall-clock this evaluation consumed.
    pub wall_cost: f64,
}

/// A placement-evaluation environment around one graph and machine.
#[derive(Debug, Clone)]
pub struct Environment {
    graph: OpGraph,
    machine: Machine,
    cfg: MeasureConfig,
    rng: ChaCha8Rng,
    evals: u64,
    invalid: u64,
    wall_clock: f64,
    best: Option<(f64, Placement)>,
    cache: PlacementCache,
    recorder: Recorder,
}

impl Environment {
    /// Starts building an environment around a graph and machine. Seed,
    /// measurement protocol, cache capacity and telemetry recorder are staged
    /// on the returned builder; [`EnvironmentBuilder::build`] validates the
    /// combination and returns the environment or an [`EnvError`].
    pub fn builder(graph: OpGraph, machine: Machine) -> EnvironmentBuilder {
        EnvironmentBuilder {
            graph,
            machine,
            cfg: MeasureConfig::default(),
            seed: 0,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            recorder: Recorder::disabled(),
        }
    }

    /// Counter snapshot: evaluations, OOM count, simulated wall-clock and
    /// cache behavior in one call.
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            evals: self.evals,
            invalid_evals: self.invalid,
            wall_clock: self.wall_clock,
            cache: self.cache.stats(),
        }
    }

    /// The telemetry recorder this environment reports through (disabled
    /// unless one was installed via the builder).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Captures the environment's complete mutable state for checkpointing:
    /// noise-RNG position, counters, wall-clock, best placement, and the full
    /// placement cache. See [`EnvState`] for what is (and is not) included.
    pub fn save_state(&self) -> EnvState {
        EnvState {
            rng: RngState::capture(&self.rng),
            evals: self.evals,
            invalid: self.invalid,
            wall_clock: self.wall_clock,
            best: self.best.clone(),
            cache_capacity: self.cache.capacity() as u64,
            cache_stats: self.cache.stats(),
            cache_entries: self
                .cache
                .entries_fifo()
                .map(|(devices, base)| CacheEntryState {
                    devices: devices.to_vec(),
                    step_time: base.step_time(),
                })
                .collect(),
        }
    }

    /// Restores a state captured by [`Environment::save_state`] into this
    /// environment, which must have been built over the same graph and
    /// machine. Configuration (measure protocol, recorder) is kept from the
    /// live environment; RNG position, counters, wall-clock, best placement
    /// and the cache — including its capacity — come from the snapshot, so
    /// the environment continues bit-identically to the checkpointed run.
    pub fn restore_state(&mut self, state: &EnvState) -> Result<(), EnvStateError> {
        let rng = state.rng.restore()?;
        let n_ops = self.graph.len();
        let n_dev = self.machine.num_devices();
        if let Some((_, p)) = &state.best {
            p.validate(&self.graph, &self.machine)
                .map_err(|e| EnvStateError::BadPlacement(e.to_string()))?;
        }
        let entries: Vec<(Box<[u8]>, BaseEval)> = state
            .cache_entries
            .iter()
            .map(|e| {
                if e.devices.len() != n_ops {
                    return Err(EnvStateError::BadCache(format!(
                        "cache entry covers {} ops but graph has {n_ops}",
                        e.devices.len()
                    )));
                }
                if let Some(&d) = e.devices.iter().find(|&&d| (d as usize) >= n_dev) {
                    return Err(EnvStateError::BadCache(format!(
                        "cache entry uses nonexistent device {d}"
                    )));
                }
                let base = match e.step_time {
                    Some(step_time) => BaseEval::Valid { step_time },
                    None => BaseEval::Invalid,
                };
                Ok((e.devices.clone().into_boxed_slice(), base))
            })
            .collect::<Result<_, _>>()?;
        if entries.len() as u64 > state.cache_capacity {
            return Err(EnvStateError::BadCache(format!(
                "{} cached entries exceed capacity {}",
                entries.len(),
                state.cache_capacity
            )));
        }
        self.rng = rng;
        self.evals = state.evals;
        self.invalid = state.invalid;
        self.wall_clock = state.wall_clock;
        self.best = state.best.clone();
        self.cache =
            PlacementCache::restore(state.cache_capacity as usize, entries, state.cache_stats);
        Ok(())
    }

    /// The graph being placed.
    pub fn graph(&self) -> &OpGraph {
        &self.graph
    }

    /// The machine placements run on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Simulated wall-clock spent measuring so far (the x-axis of Figs. 5–7).
    pub fn wall_clock(&self) -> f64 {
        self.wall_clock
    }

    /// Best valid placement seen so far, with its (noisy) measured step time.
    pub fn best(&self) -> Option<&(f64, Placement)> {
        self.best.as_ref()
    }

    fn staging_cost(&self) -> f64 {
        self.cfg.session_setup + self.graph.total_param_bytes() as f64 / self.machine.link_bandwidth
    }

    fn noisy_mean(&mut self, base: f64, steps: usize) -> f64 {
        if self.cfg.noise_sigma == 0.0 || steps == 0 {
            return base;
        }
        let mut acc = 0.0;
        for _ in 0..steps {
            // Box–Muller standard normal from two uniforms.
            let u1: f64 = self.rng.gen::<f64>().max(1e-12);
            let u2: f64 = self.rng.gen();
            let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            acc += base * (self.cfg.noise_sigma * normal).exp();
        }
        acc / steps as f64
    }

    /// The pure simulation step: noiseless, no RNG, no accounting. Takes
    /// `&self`, so it is safe to call concurrently from many threads — this is
    /// the piece [`Environment::evaluate_batch`] fans out. Engine telemetry
    /// (`devsim.engine.*`) flows through the recorder; only order-independent
    /// counters/histograms are emitted, so parallel workers stay deterministic.
    pub fn simulate_base(&self, placement: &Placement) -> BaseEval {
        match simulate_recorded(&self.graph, &self.machine, placement, &self.recorder) {
            SimOutcome::Oom { .. } => BaseEval::Invalid,
            SimOutcome::Valid(stats) => BaseEval::Valid { step_time: stats.step_time },
        }
    }

    /// The serial accounting step: draws measurement noise, charges the
    /// simulated wall-clock and updates `best`/`num_evals`. Must run in episode
    /// order — it is the only consumer of the environment's RNG stream.
    ///
    /// A cached evaluation re-runs only the measured steps on the already
    /// staged session: no session setup, no parameter staging, no warm-up. A
    /// cached OOM costs nothing (the crash is remembered, not reproduced).
    fn commit(&mut self, placement: &Placement, base: BaseEval, cached: bool) -> Measurement {
        self.evals += 1;
        self.recorder.add("devsim.evals", 1);
        self.recorder.add(if cached { "devsim.cache.hits" } else { "devsim.cache.misses" }, 1);
        let m = match base {
            BaseEval::Invalid => {
                self.invalid += 1;
                self.recorder.add("devsim.oom", 1);
                let wall = if cached { 0.0 } else { self.cfg.oom_cost };
                self.wall_clock += wall;
                Measurement { step_time: None, wall_cost: wall }
            }
            BaseEval::Valid { step_time } => {
                let measured_steps = self.cfg.train_steps - self.cfg.warmup_steps;
                let mean = self.noisy_mean(step_time, measured_steps);
                let wall = if cached {
                    measured_steps as f64 * step_time
                } else {
                    self.staging_cost()
                        + self.cfg.warmup_steps as f64 * step_time * self.cfg.warmup_factor
                        + measured_steps as f64 * step_time
                };
                self.wall_clock += wall;
                if self.best.as_ref().is_none_or(|(b, _)| mean < *b) {
                    self.best = Some((mean, placement.clone()));
                }
                Measurement { step_time: Some(mean), wall_cost: wall }
            }
        };
        self.recorder.observe("devsim.wall_cost_s", m.wall_cost);
        self.recorder.gauge("devsim.wall_clock_s", self.wall_clock);
        m
    }

    /// Measures a placement with the training-time protocol (15 steps, discard 5).
    ///
    /// Previously seen placements are answered from the cache: the simulator is
    /// skipped, fresh noise is drawn over the cached base step time, and only
    /// the re-measured steps are charged to the wall-clock. The noise stream is
    /// consumed identically on hits and misses, so enabling the cache changes
    /// wall-clock charges but never the measured values.
    ///
    /// This is a thin wrapper over [`Environment::evaluate_batch`] with a
    /// one-element batch — caching, noise ordering and telemetry live in
    /// exactly one code path.
    pub fn evaluate(&mut self, placement: &Placement) -> Measurement {
        self.evaluate_batch(std::slice::from_ref(placement), 1)
            .pop()
            .expect("one measurement per placement")
    }

    /// Evaluates a minibatch, fanning the pure simulations out over `workers`
    /// threads (0 = one per available core, 1 = fully serial).
    ///
    /// Bit-for-bit identical to calling [`Environment::evaluate`] on each
    /// placement in order, for every worker count: cache probes and noise
    /// draws stay serial in episode order; only the cache-miss simulations —
    /// pure functions of `(graph, machine, placement)` — run concurrently.
    pub fn evaluate_batch(&mut self, placements: &[Placement], workers: usize) -> Vec<Measurement> {
        let workers = resolve_workers(workers);

        // Phase 1 (serial): probe the cache in episode order. Duplicates of an
        // earlier in-batch miss count as hits, exactly as they would when
        // evaluated one-by-one (the first occurrence would have been inserted).
        enum Probe {
            Hit(BaseEval),
            Dup(usize),
            Miss,
        }
        let mut probes: Vec<Probe> = Vec::with_capacity(placements.len());
        let mut first_occurrence: std::collections::HashMap<&[crate::device::DeviceId], usize> =
            std::collections::HashMap::new();
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, p) in placements.iter().enumerate() {
            let key = p.devices();
            if self.cache.enabled() {
                if let Some(&j) = first_occurrence.get(key) {
                    self.cache.note_duplicate_hit();
                    probes.push(Probe::Dup(j));
                    continue;
                }
            }
            match self.cache.lookup(p) {
                Some(base) => probes.push(Probe::Hit(base)),
                None => {
                    probes.push(Probe::Miss);
                    first_occurrence.insert(key, i);
                    miss_idx.push(i);
                }
            }
        }

        // Phase 2 (parallel): simulate the misses. Each worker owns a disjoint
        // chunk of the miss list; results are scattered back by index, each
        // with its host-time cost so the serial phase can report simulator
        // latency in episode order (telemetry stays deterministic).
        let timed_sim = |env: &Environment, i: usize| -> (usize, BaseEval, f64) {
            let start = std::time::Instant::now();
            let base = env.simulate_base(&placements[i]);
            (i, base, start.elapsed().as_secs_f64() * 1e6)
        };
        let mut bases: Vec<Option<(BaseEval, f64)>> = vec![None; placements.len()];
        if workers > 1 && miss_idx.len() > 1 {
            let env = &*self;
            let chunk = miss_idx.len().div_ceil(workers);
            let simulated: Vec<Vec<(usize, BaseEval, f64)>> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = miss_idx
                    .chunks(chunk)
                    .map(|ids| s.spawn(move |_| ids.iter().map(|&i| timed_sim(env, i)).collect()))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("simulation worker panicked")).collect()
            })
            .expect("rollout worker panicked");
            for (i, base, sim_us) in simulated.into_iter().flatten() {
                bases[i] = Some((base, sim_us));
            }
        } else {
            for &i in &miss_idx {
                let (_, base, sim_us) = timed_sim(self, i);
                bases[i] = Some((base, sim_us));
            }
        }

        // Phase 3 (serial): commit in episode order — noise draws, wall-clock,
        // best tracking and cache inserts all happen exactly as they would in
        // a one-by-one evaluation loop.
        placements
            .iter()
            .zip(&probes)
            .enumerate()
            .map(|(i, (p, probe))| match probe {
                Probe::Hit(base) => self.commit(p, *base, true),
                Probe::Dup(j) => {
                    let (base, _) = bases[*j].expect("first occurrence simulated");
                    self.commit(p, base, true)
                }
                Probe::Miss => {
                    let (base, sim_us) = bases[i].expect("miss simulated");
                    self.recorder.observe("devsim.sim_us", sim_us);
                    if self.cache.insert(p, base) {
                        self.recorder.add("devsim.cache.evictions", 1);
                    }
                    self.commit(p, base, false)
                }
            })
            .collect()
    }

    /// Measures a placement with the final protocol (1,000 steps): noise averages
    /// out, so this returns the near-exact step time.
    pub fn evaluate_final(&mut self, placement: &Placement) -> Option<f64> {
        match simulate_recorded(&self.graph, &self.machine, placement, &self.recorder) {
            SimOutcome::Oom { .. } => None,
            SimOutcome::Valid(stats) => {
                let mean = self.noisy_mean(stats.step_time, 995).min(
                    // Averaging 995 steps leaves well under 1% noise either way;
                    // bound the estimate so pathological RNG draws cannot leak out.
                    stats.step_time * 1.01,
                );
                self.wall_clock += self.staging_cost() + 1000.0 * stats.step_time;
                self.recorder.add("devsim.final_evals", 1);
                self.recorder.gauge("devsim.wall_clock_s", self.wall_clock);
                Some(mean.max(stats.step_time * 0.99))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    fn env(g: OpGraph, m: &Machine, cfg: MeasureConfig, seed: u64) -> Environment {
        Environment::builder(g, m.clone())
            .measure(cfg)
            .seed(seed)
            .build()
            .expect("valid test environment")
    }

    fn tiny_graph() -> OpGraph {
        let mut g = OpGraph::new("tiny");
        let a = g.add_node(
            OpNode::new("a", OpKind::MatMul, Phase::Forward)
                .with_flops(4.65e9)
                .with_out_bytes(1024),
        );
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward).with_flops(4.65e9));
        g.add_edge(a, b);
        g
    }

    #[test]
    fn exact_config_is_deterministic_and_noise_free() {
        let m = Machine::paper_machine();
        let mut env = env(tiny_graph(), &m, MeasureConfig::exact(), 1);
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let a = env.evaluate(&p).step_time.unwrap();
        let b = env.evaluate(&p).step_time.unwrap();
        assert_eq!(a, b);
        let expected = 2.0 * (30e-6 + 1e-3);
        assert!((a - expected).abs() < 1e-9);
    }

    #[test]
    fn noise_is_small_and_seeded() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut e1 = env(tiny_graph(), &m, MeasureConfig::default(), 7);
        let mut e2 = env(tiny_graph(), &m, MeasureConfig::default(), 7);
        let a = e1.evaluate(&p).step_time.unwrap();
        let b = e2.evaluate(&p).step_time.unwrap();
        assert_eq!(a, b, "same seed, same measurement");
        let exact = 2.0 * (30e-6 + 1e-3);
        assert!((a - exact).abs() / exact < 0.1, "noise should be small: {a} vs {exact}");
    }

    #[test]
    fn wall_clock_accumulates_and_oom_costs_less() {
        let m = Machine::paper_machine();
        let mut g = tiny_graph();
        g.node_mut(eagle_opgraph::OpId(0)).act_bytes = 20 << 30;
        let mut env = env(g, &m, MeasureConfig::default(), 1);
        let oom = env.evaluate(&Placement::uniform(2, m.gpu_ids()[0]));
        assert!(oom.step_time.is_none());
        let w1 = env.wall_clock();
        assert!(w1 > 0.0);
        let ok = env.evaluate(&Placement::uniform(2, m.cpu_id()));
        assert!(ok.step_time.is_some());
        assert!(env.wall_clock() > w1);
        assert!(ok.wall_cost > oom.wall_cost, "valid eval includes session setup + steps");
        let snap = env.snapshot();
        assert_eq!(snap.evals, 2);
        assert_eq!(snap.invalid_evals, 1);
        assert_eq!(snap.wall_clock, env.wall_clock());
    }

    #[test]
    fn best_tracks_minimum_valid() {
        let m = Machine::paper_machine();
        let mut env = env(tiny_graph(), &m, MeasureConfig::exact(), 1);
        let slow = Placement::uniform(2, m.cpu_id());
        let fast = Placement::uniform(2, m.gpu_ids()[0]);
        env.evaluate(&slow);
        let b1 = env.best().unwrap().0;
        env.evaluate(&fast);
        let b2 = env.best().unwrap().0;
        assert!(b2 < b1);
        assert_eq!(env.best().unwrap().1, fast);
    }

    #[test]
    fn batch_matches_serial_for_any_worker_count() {
        let m = Machine::paper_machine();
        // A batch with duplicates, an OOM placement and distinct valid ones.
        let mut g = tiny_graph();
        g.node_mut(eagle_opgraph::OpId(0)).act_bytes = 20 << 30;
        let batch = vec![
            Placement::uniform(2, m.gpu_ids()[0]),
            Placement::uniform(2, m.cpu_id()),
            Placement::uniform(2, m.gpu_ids()[0]),
            Placement::uniform(2, m.gpu_ids()[1]),
            Placement::uniform(2, m.cpu_id()),
        ];
        let mut serial = env(g.clone(), &m, MeasureConfig::default(), 11);
        let expect: Vec<Measurement> = batch.iter().map(|p| serial.evaluate(p)).collect();
        for workers in [1usize, 2, 4, 0] {
            let mut env = env(g.clone(), &m, MeasureConfig::default(), 11);
            let got = env.evaluate_batch(&batch, workers);
            assert_eq!(got, expect, "workers={workers}");
            assert_eq!(env.wall_clock(), serial.wall_clock(), "workers={workers}");
            assert_eq!(env.snapshot(), serial.snapshot(), "workers={workers}");
            assert_eq!(env.best().unwrap().1, serial.best().unwrap().1);
        }
    }

    #[test]
    fn cache_hits_cost_less_wall_clock_but_same_values() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut with = env(tiny_graph(), &m, MeasureConfig::default(), 5);
        let mut without = Environment::builder(tiny_graph(), m.clone())
            .measure(MeasureConfig::default())
            .seed(5)
            .cache_capacity(0)
            .build()
            .unwrap();
        let (a1, b1) = (with.evaluate(&p), without.evaluate(&p));
        let (a2, b2) = (with.evaluate(&p), without.evaluate(&p));
        assert_eq!(a1.step_time, b1.step_time);
        assert_eq!(a2.step_time, b2.step_time, "cache never changes measured values");
        assert!(a2.wall_cost < b2.wall_cost, "hit skips staging and warm-up");
        assert_eq!(with.snapshot().cache.hits, 1);
        assert_eq!(without.snapshot().cache.hits, 0);
    }

    #[test]
    fn final_protocol_tight() {
        let m = Machine::paper_machine();
        let mut env = env(tiny_graph(), &m, MeasureConfig::default(), 3);
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let t = env.evaluate_final(&p).unwrap();
        let exact = 2.0 * (30e-6 + 1e-3);
        assert!((t - exact).abs() / exact < 0.011, "1000-step estimate is tight: {t}");
    }

    #[test]
    fn save_restore_state_continues_bit_identically() {
        let m = Machine::paper_machine();
        let mk = || env(tiny_graph(), &m, MeasureConfig::default(), 17);
        let batch = [
            Placement::uniform(2, m.gpu_ids()[0]),
            Placement::uniform(2, m.cpu_id()),
            Placement::uniform(2, m.gpu_ids()[0]), // cache hit
            Placement::uniform(2, m.gpu_ids()[1]),
        ];
        // Uninterrupted reference.
        let mut straight = mk();
        let expect: Vec<Measurement> = batch.iter().map(|p| straight.evaluate(p)).collect();
        // Interrupted run: evaluate half, snapshot through JSON, restore into a
        // *fresh* environment, evaluate the rest.
        let mut first = mk();
        let got_a: Vec<Measurement> = batch[..2].iter().map(|p| first.evaluate(p)).collect();
        let json = serde_json::to_string(&first.save_state()).unwrap();
        let state: EnvState = serde_json::from_str(&json).unwrap();
        let mut resumed = mk();
        resumed.restore_state(&state).unwrap();
        let got_b: Vec<Measurement> = batch[2..].iter().map(|p| resumed.evaluate(p)).collect();
        let got: Vec<Measurement> = got_a.into_iter().chain(got_b).collect();
        assert_eq!(got, expect, "resumed noise stream and cache must continue exactly");
        assert_eq!(resumed.wall_clock(), straight.wall_clock());
        assert_eq!(resumed.snapshot(), straight.snapshot());
        assert_eq!(resumed.best(), straight.best());
    }

    #[test]
    fn restore_state_rejects_mismatched_snapshots() {
        let m = Machine::paper_machine();
        let mut e = env(tiny_graph(), &m, MeasureConfig::default(), 1);
        e.evaluate(&Placement::uniform(2, m.gpu_ids()[0]));
        let good = e.save_state();

        let mut bad_rng = good.clone();
        bad_rng.rng = RngState { key: vec![0; 7], counter: 0, block: vec![0; 16], index: 0 };
        assert!(matches!(e.restore_state(&bad_rng), Err(EnvStateError::BadRng(_))));

        let mut bad_cache = good.clone();
        bad_cache.cache_entries[0].devices = vec![0, 1, 2]; // graph has 2 ops
        assert!(matches!(e.restore_state(&bad_cache), Err(EnvStateError::BadCache(_))));

        let mut bad_best = good.clone();
        bad_best.best = Some((1.0, Placement::uniform(9, m.cpu_id())));
        assert!(matches!(e.restore_state(&bad_best), Err(EnvStateError::BadPlacement(_))));

        // A failed restore leaves the environment untouched and usable.
        assert!(e.restore_state(&good).is_ok());
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        let m = Machine::paper_machine();
        let empty = OpGraph::new("empty");
        assert_eq!(
            Environment::builder(empty, m.clone()).build().unwrap_err(),
            EnvError::EmptyGraph
        );
        let degenerate = MeasureConfig { train_steps: 5, warmup_steps: 5, ..Default::default() };
        assert_eq!(
            Environment::builder(tiny_graph(), m.clone()).measure(degenerate).build().unwrap_err(),
            EnvError::NoMeasuredSteps { train_steps: 5, warmup_steps: 5 }
        );
        let negative = MeasureConfig { noise_sigma: -0.1, ..Default::default() };
        let err =
            Environment::builder(tiny_graph(), m.clone()).measure(negative).build().unwrap_err();
        assert_eq!(err, EnvError::BadKnob { name: "noise_sigma", value: -0.1 });
        assert!(err.to_string().contains("noise_sigma"), "errors must name the knob");
    }

    #[test]
    fn builder_defaults_match_explicit_settings() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut dflt = Environment::builder(tiny_graph(), m.clone()).seed(9).build().unwrap();
        let mut explicit = Environment::builder(tiny_graph(), m.clone())
            .seed(9)
            .measure(MeasureConfig::default())
            .cache_capacity(DEFAULT_CACHE_CAPACITY)
            .recorder(Recorder::disabled())
            .build()
            .unwrap();
        assert_eq!(dflt.evaluate(&p), explicit.evaluate(&p));
    }

    #[test]
    fn recorder_counts_evals_hits_and_ooms() {
        let m = Machine::paper_machine();
        let rec = Recorder::new();
        let mut g = tiny_graph();
        g.node_mut(eagle_opgraph::OpId(0)).act_bytes = 20 << 30;
        let mut env =
            Environment::builder(g, m.clone()).seed(1).recorder(rec.clone()).build().unwrap();
        let oom = Placement::uniform(2, m.gpu_ids()[0]);
        let ok = Placement::uniform(2, m.cpu_id());
        env.evaluate(&oom);
        env.evaluate(&ok);
        env.evaluate(&ok); // cache hit
        assert_eq!(rec.counter_value("devsim.evals"), 3);
        assert_eq!(rec.counter_value("devsim.oom"), 1);
        assert_eq!(rec.counter_value("devsim.cache.hits"), 1);
        assert_eq!(rec.counter_value("devsim.cache.misses"), 2);
        // Only cache misses run (and time) the simulator.
        assert_eq!(rec.histogram("devsim.sim_us").unwrap().count, 2);
        assert_eq!(rec.gauge_value("devsim.wall_clock_s"), Some(env.wall_clock()));
    }

    #[test]
    fn telemetry_on_or_off_never_changes_measurements() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut quiet = env(tiny_graph(), &m, MeasureConfig::default(), 13);
        let mut loud = Environment::builder(tiny_graph(), m.clone())
            .measure(MeasureConfig::default())
            .seed(13)
            .recorder(Recorder::new())
            .build()
            .unwrap();
        for _ in 0..4 {
            assert_eq!(quiet.evaluate(&p), loud.evaluate(&p));
        }
        assert_eq!(quiet.snapshot(), loud.snapshot());
    }
}
