//! The RL environment: measurement protocol over the simulated machine.
//!
//! The paper's protocol (Sec. IV-C): run each sampled placement for 15 training
//! steps, discard the first 5 warm-up steps (parameter initialization makes them
//! slow), average the remaining 10; after training, re-run the best placement for
//! 1,000 steps. Measurements on real hardware are noisy, so the environment applies
//! multiplicative log-normal jitter per measured step, seeded for reproducibility.
//!
//! The environment also keeps a *simulated wall-clock*: each evaluation costs
//! session setup + parameter staging + the measured steps. Training curves indexed
//! by this clock reproduce the time axis of the paper's Figs. 5–7.

use eagle_opgraph::OpGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cache::{BaseEval, CacheStats, PlacementCache};
use crate::device::Machine;
use crate::placement::Placement;
use crate::sim::{simulate, SimOutcome};

/// Default bound on the number of memoized placements per environment.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Measurement-protocol knobs.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Steps run per evaluation during training (paper: 15).
    pub train_steps: usize,
    /// Leading steps discarded as warm-up (paper: 5).
    pub warmup_steps: usize,
    /// Slow-down factor of warm-up steps (device-side initialization).
    pub warmup_factor: f64,
    /// Std-dev of per-step log-normal measurement noise (0 disables noise).
    pub noise_sigma: f64,
    /// Fixed per-evaluation cost: session construction, graph rewrite, etc.
    pub session_setup: f64,
    /// Wall-clock wasted when a placement turns out invalid (OOM crash + restart).
    pub oom_cost: f64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            train_steps: 15,
            warmup_steps: 5,
            warmup_factor: 3.0,
            noise_sigma: 0.02,
            session_setup: 30.0,
            oom_cost: 10.0,
        }
    }
}

impl MeasureConfig {
    /// Noise-free, zero-overhead protocol for deterministic tests.
    pub fn exact() -> Self {
        Self {
            train_steps: 1,
            warmup_steps: 0,
            warmup_factor: 1.0,
            noise_sigma: 0.0,
            session_setup: 0.0,
            oom_cost: 0.0,
        }
    }
}

/// One placement evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Mean per-step time over the measured (post-warm-up) steps;
    /// `None` when the placement OOMs (invalid).
    pub step_time: Option<f64>,
    /// Simulated wall-clock this evaluation consumed.
    pub wall_cost: f64,
}

/// A placement-evaluation environment around one graph and machine.
#[derive(Debug, Clone)]
pub struct Environment {
    graph: OpGraph,
    machine: Machine,
    cfg: MeasureConfig,
    rng: ChaCha8Rng,
    evals: u64,
    wall_clock: f64,
    best: Option<(f64, Placement)>,
    cache: PlacementCache,
}

impl Environment {
    /// Creates an environment with a seeded noise source and a default-sized
    /// placement cache (see [`DEFAULT_CACHE_CAPACITY`]).
    pub fn new(graph: OpGraph, machine: Machine, cfg: MeasureConfig, seed: u64) -> Self {
        Self {
            graph,
            machine,
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            evals: 0,
            wall_clock: 0.0,
            best: None,
            cache: PlacementCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Replaces the placement cache with one of the given capacity
    /// (0 disables memoization entirely).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = PlacementCache::new(capacity);
        self
    }

    /// Hit/miss counters of the placement cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The graph being placed.
    pub fn graph(&self) -> &OpGraph {
        &self.graph
    }

    /// The machine placements run on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of evaluations performed.
    pub fn num_evals(&self) -> u64 {
        self.evals
    }

    /// Simulated wall-clock spent measuring so far (the x-axis of Figs. 5–7).
    pub fn wall_clock(&self) -> f64 {
        self.wall_clock
    }

    /// Best valid placement seen so far, with its (noisy) measured step time.
    pub fn best(&self) -> Option<&(f64, Placement)> {
        self.best.as_ref()
    }

    fn staging_cost(&self) -> f64 {
        self.cfg.session_setup
            + self.graph.total_param_bytes() as f64 / self.machine.link_bandwidth
    }

    fn noisy_mean(&mut self, base: f64, steps: usize) -> f64 {
        if self.cfg.noise_sigma == 0.0 || steps == 0 {
            return base;
        }
        let mut acc = 0.0;
        for _ in 0..steps {
            // Box–Muller standard normal from two uniforms.
            let u1: f64 = self.rng.gen::<f64>().max(1e-12);
            let u2: f64 = self.rng.gen();
            let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            acc += base * (self.cfg.noise_sigma * normal).exp();
        }
        acc / steps as f64
    }

    /// The pure simulation step: noiseless, no RNG, no accounting. Takes
    /// `&self`, so it is safe to call concurrently from many threads — this is
    /// the piece [`Environment::evaluate_batch`] fans out.
    pub fn simulate_base(&self, placement: &Placement) -> BaseEval {
        match simulate(&self.graph, &self.machine, placement) {
            SimOutcome::Oom { .. } => BaseEval::Invalid,
            SimOutcome::Valid(stats) => BaseEval::Valid { step_time: stats.step_time },
        }
    }

    /// The serial accounting step: draws measurement noise, charges the
    /// simulated wall-clock and updates `best`/`num_evals`. Must run in episode
    /// order — it is the only consumer of the environment's RNG stream.
    ///
    /// A cached evaluation re-runs only the measured steps on the already
    /// staged session: no session setup, no parameter staging, no warm-up. A
    /// cached OOM costs nothing (the crash is remembered, not reproduced).
    fn commit(&mut self, placement: &Placement, base: BaseEval, cached: bool) -> Measurement {
        self.evals += 1;
        match base {
            BaseEval::Invalid => {
                let wall = if cached { 0.0 } else { self.cfg.oom_cost };
                self.wall_clock += wall;
                Measurement { step_time: None, wall_cost: wall }
            }
            BaseEval::Valid { step_time } => {
                let measured_steps = self.cfg.train_steps - self.cfg.warmup_steps;
                let mean = self.noisy_mean(step_time, measured_steps);
                let wall = if cached {
                    measured_steps as f64 * step_time
                } else {
                    self.staging_cost()
                        + self.cfg.warmup_steps as f64 * step_time * self.cfg.warmup_factor
                        + measured_steps as f64 * step_time
                };
                self.wall_clock += wall;
                if self.best.as_ref().is_none_or(|(b, _)| mean < *b) {
                    self.best = Some((mean, placement.clone()));
                }
                Measurement { step_time: Some(mean), wall_cost: wall }
            }
        }
    }

    /// Measures a placement with the training-time protocol (15 steps, discard 5).
    ///
    /// Previously seen placements are answered from the cache: the simulator is
    /// skipped, fresh noise is drawn over the cached base step time, and only
    /// the re-measured steps are charged to the wall-clock. The noise stream is
    /// consumed identically on hits and misses, so enabling the cache changes
    /// wall-clock charges but never the measured values.
    pub fn evaluate(&mut self, placement: &Placement) -> Measurement {
        match self.cache.lookup(placement) {
            Some(base) => self.commit(placement, base, true),
            None => {
                let base = self.simulate_base(placement);
                self.cache.insert(placement, base);
                self.commit(placement, base, false)
            }
        }
    }

    /// Evaluates a minibatch, fanning the pure simulations out over `workers`
    /// threads (0 = one per available core, 1 = fully serial).
    ///
    /// Bit-for-bit identical to calling [`Environment::evaluate`] on each
    /// placement in order, for every worker count: cache probes and noise
    /// draws stay serial in episode order; only the cache-miss simulations —
    /// pure functions of `(graph, machine, placement)` — run concurrently.
    pub fn evaluate_batch(&mut self, placements: &[Placement], workers: usize) -> Vec<Measurement> {
        let workers = resolve_workers(workers);

        // Phase 1 (serial): probe the cache in episode order. Duplicates of an
        // earlier in-batch miss count as hits, exactly as they would when
        // evaluated one-by-one (the first occurrence would have been inserted).
        enum Probe {
            Hit(BaseEval),
            Dup(usize),
            Miss,
        }
        let mut probes: Vec<Probe> = Vec::with_capacity(placements.len());
        let mut first_occurrence: std::collections::HashMap<&[crate::device::DeviceId], usize> =
            std::collections::HashMap::new();
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, p) in placements.iter().enumerate() {
            let key = p.devices();
            if self.cache.enabled() {
                if let Some(&j) = first_occurrence.get(key) {
                    self.cache.note_duplicate_hit();
                    probes.push(Probe::Dup(j));
                    continue;
                }
            }
            match self.cache.lookup(p) {
                Some(base) => probes.push(Probe::Hit(base)),
                None => {
                    probes.push(Probe::Miss);
                    first_occurrence.insert(key, i);
                    miss_idx.push(i);
                }
            }
        }

        // Phase 2 (parallel): simulate the misses. Each worker owns a disjoint
        // chunk of the miss list; results are scattered back by index.
        let mut bases: Vec<Option<BaseEval>> = vec![None; placements.len()];
        if workers > 1 && miss_idx.len() > 1 {
            let env = &*self;
            let chunk = miss_idx.len().div_ceil(workers);
            let simulated: Vec<Vec<(usize, BaseEval)>> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = miss_idx
                    .chunks(chunk)
                    .map(|ids| {
                        s.spawn(move |_| {
                            ids.iter()
                                .map(|&i| (i, env.simulate_base(&placements[i])))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation worker panicked"))
                    .collect()
            })
            .expect("rollout worker panicked");
            for (i, base) in simulated.into_iter().flatten() {
                bases[i] = Some(base);
            }
        } else {
            for &i in &miss_idx {
                bases[i] = Some(self.simulate_base(&placements[i]));
            }
        }

        // Phase 3 (serial): commit in episode order — noise draws, wall-clock,
        // best tracking and cache inserts all happen exactly as they would in
        // a one-by-one evaluation loop.
        placements
            .iter()
            .zip(&probes)
            .enumerate()
            .map(|(i, (p, probe))| match probe {
                Probe::Hit(base) => self.commit(p, *base, true),
                Probe::Dup(j) => {
                    let base = bases[*j].expect("first occurrence simulated");
                    self.commit(p, base, true)
                }
                Probe::Miss => {
                    let base = bases[i].expect("miss simulated");
                    self.cache.insert(p, base);
                    self.commit(p, base, false)
                }
            })
            .collect()
    }

    /// Measures a placement with the final protocol (1,000 steps): noise averages
    /// out, so this returns the near-exact step time.
    pub fn evaluate_final(&mut self, placement: &Placement) -> Option<f64> {
        match simulate(&self.graph, &self.machine, placement) {
            SimOutcome::Oom { .. } => None,
            SimOutcome::Valid(stats) => {
                let mean = self.noisy_mean(stats.step_time, 995).min(
                    // Averaging 995 steps leaves well under 1% noise either way;
                    // bound the estimate so pathological RNG draws cannot leak out.
                    stats.step_time * 1.01,
                );
                self.wall_clock += self.staging_cost() + 1000.0 * stats.step_time;
                Some(mean.max(stats.step_time * 0.99))
            }
        }
    }
}

/// Resolves a requested worker count: 0 means one per available core.
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    fn tiny_graph() -> OpGraph {
        let mut g = OpGraph::new("tiny");
        let a = g.add_node(
            OpNode::new("a", OpKind::MatMul, Phase::Forward)
                .with_flops(4.65e9)
                .with_out_bytes(1024),
        );
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward).with_flops(4.65e9));
        g.add_edge(a, b);
        g
    }

    #[test]
    fn exact_config_is_deterministic_and_noise_free() {
        let m = Machine::paper_machine();
        let mut env = Environment::new(tiny_graph(), m.clone(), MeasureConfig::exact(), 1);
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let a = env.evaluate(&p).step_time.unwrap();
        let b = env.evaluate(&p).step_time.unwrap();
        assert_eq!(a, b);
        let expected = 2.0 * (30e-6 + 1e-3);
        assert!((a - expected).abs() < 1e-9);
    }

    #[test]
    fn noise_is_small_and_seeded() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut e1 = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 7);
        let mut e2 = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 7);
        let a = e1.evaluate(&p).step_time.unwrap();
        let b = e2.evaluate(&p).step_time.unwrap();
        assert_eq!(a, b, "same seed, same measurement");
        let exact = 2.0 * (30e-6 + 1e-3);
        assert!((a - exact).abs() / exact < 0.1, "noise should be small: {a} vs {exact}");
    }

    #[test]
    fn wall_clock_accumulates_and_oom_costs_less() {
        let m = Machine::paper_machine();
        let mut g = tiny_graph();
        g.node_mut(eagle_opgraph::OpId(0)).act_bytes = 20 << 30;
        let mut env = Environment::new(g, m.clone(), MeasureConfig::default(), 1);
        let oom = env.evaluate(&Placement::uniform(2, m.gpu_ids()[0]));
        assert!(oom.step_time.is_none());
        let w1 = env.wall_clock();
        assert!(w1 > 0.0);
        let ok = env.evaluate(&Placement::uniform(2, m.cpu_id()));
        assert!(ok.step_time.is_some());
        assert!(env.wall_clock() > w1);
        assert!(ok.wall_cost > oom.wall_cost, "valid eval includes session setup + steps");
        assert_eq!(env.num_evals(), 2);
    }

    #[test]
    fn best_tracks_minimum_valid() {
        let m = Machine::paper_machine();
        let mut env = Environment::new(tiny_graph(), m.clone(), MeasureConfig::exact(), 1);
        let slow = Placement::uniform(2, m.cpu_id());
        let fast = Placement::uniform(2, m.gpu_ids()[0]);
        env.evaluate(&slow);
        let b1 = env.best().unwrap().0;
        env.evaluate(&fast);
        let b2 = env.best().unwrap().0;
        assert!(b2 < b1);
        assert_eq!(env.best().unwrap().1, fast);
    }

    #[test]
    fn batch_matches_serial_for_any_worker_count() {
        let m = Machine::paper_machine();
        // A batch with duplicates, an OOM placement and distinct valid ones.
        let mut g = tiny_graph();
        g.node_mut(eagle_opgraph::OpId(0)).act_bytes = 20 << 30;
        let batch = vec![
            Placement::uniform(2, m.gpu_ids()[0]),
            Placement::uniform(2, m.cpu_id()),
            Placement::uniform(2, m.gpu_ids()[0]),
            Placement::uniform(2, m.gpu_ids()[1]),
            Placement::uniform(2, m.cpu_id()),
        ];
        let mut serial = Environment::new(g.clone(), m.clone(), MeasureConfig::default(), 11);
        let expect: Vec<Measurement> = batch.iter().map(|p| serial.evaluate(p)).collect();
        for workers in [1usize, 2, 4, 0] {
            let mut env = Environment::new(g.clone(), m.clone(), MeasureConfig::default(), 11);
            let got = env.evaluate_batch(&batch, workers);
            assert_eq!(got, expect, "workers={workers}");
            assert_eq!(env.wall_clock(), serial.wall_clock(), "workers={workers}");
            assert_eq!(env.num_evals(), serial.num_evals());
            assert_eq!(env.cache_stats(), serial.cache_stats(), "workers={workers}");
            assert_eq!(env.best().unwrap().1, serial.best().unwrap().1);
        }
    }

    #[test]
    fn cache_hits_cost_less_wall_clock_but_same_values() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut with = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 5);
        let mut without = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 5)
            .with_cache_capacity(0);
        let (a1, b1) = (with.evaluate(&p), without.evaluate(&p));
        let (a2, b2) = (with.evaluate(&p), without.evaluate(&p));
        assert_eq!(a1.step_time, b1.step_time);
        assert_eq!(a2.step_time, b2.step_time, "cache never changes measured values");
        assert!(a2.wall_cost < b2.wall_cost, "hit skips staging and warm-up");
        assert_eq!(with.cache_stats().hits, 1);
        assert_eq!(without.cache_stats().hits, 0);
    }

    #[test]
    fn final_protocol_tight() {
        let m = Machine::paper_machine();
        let mut env = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 3);
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let t = env.evaluate_final(&p).unwrap();
        let exact = 2.0 * (30e-6 + 1e-3);
        assert!((t - exact).abs() / exact < 0.011, "1000-step estimate is tight: {t}");
    }
}
