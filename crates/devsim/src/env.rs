//! The RL environment: measurement protocol over the simulated machine.
//!
//! The paper's protocol (Sec. IV-C): run each sampled placement for 15 training
//! steps, discard the first 5 warm-up steps (parameter initialization makes them
//! slow), average the remaining 10; after training, re-run the best placement for
//! 1,000 steps. Measurements on real hardware are noisy, so the environment applies
//! multiplicative log-normal jitter per measured step, seeded for reproducibility.
//!
//! The environment also keeps a *simulated wall-clock*: each evaluation costs
//! session setup + parameter staging + the measured steps. Training curves indexed
//! by this clock reproduce the time axis of the paper's Figs. 5–7.

use eagle_opgraph::OpGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::device::Machine;
use crate::placement::Placement;
use crate::sim::{simulate, SimOutcome};

/// Measurement-protocol knobs.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Steps run per evaluation during training (paper: 15).
    pub train_steps: usize,
    /// Leading steps discarded as warm-up (paper: 5).
    pub warmup_steps: usize,
    /// Slow-down factor of warm-up steps (device-side initialization).
    pub warmup_factor: f64,
    /// Std-dev of per-step log-normal measurement noise (0 disables noise).
    pub noise_sigma: f64,
    /// Fixed per-evaluation cost: session construction, graph rewrite, etc.
    pub session_setup: f64,
    /// Wall-clock wasted when a placement turns out invalid (OOM crash + restart).
    pub oom_cost: f64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            train_steps: 15,
            warmup_steps: 5,
            warmup_factor: 3.0,
            noise_sigma: 0.02,
            session_setup: 30.0,
            oom_cost: 10.0,
        }
    }
}

impl MeasureConfig {
    /// Noise-free, zero-overhead protocol for deterministic tests.
    pub fn exact() -> Self {
        Self {
            train_steps: 1,
            warmup_steps: 0,
            warmup_factor: 1.0,
            noise_sigma: 0.0,
            session_setup: 0.0,
            oom_cost: 0.0,
        }
    }
}

/// One placement evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Mean per-step time over the measured (post-warm-up) steps;
    /// `None` when the placement OOMs (invalid).
    pub step_time: Option<f64>,
    /// Simulated wall-clock this evaluation consumed.
    pub wall_cost: f64,
}

/// A placement-evaluation environment around one graph and machine.
#[derive(Debug, Clone)]
pub struct Environment {
    graph: OpGraph,
    machine: Machine,
    cfg: MeasureConfig,
    rng: ChaCha8Rng,
    evals: u64,
    wall_clock: f64,
    best: Option<(f64, Placement)>,
}

impl Environment {
    /// Creates an environment with a seeded noise source.
    pub fn new(graph: OpGraph, machine: Machine, cfg: MeasureConfig, seed: u64) -> Self {
        Self {
            graph,
            machine,
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            evals: 0,
            wall_clock: 0.0,
            best: None,
        }
    }

    /// The graph being placed.
    pub fn graph(&self) -> &OpGraph {
        &self.graph
    }

    /// The machine placements run on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of evaluations performed.
    pub fn num_evals(&self) -> u64 {
        self.evals
    }

    /// Simulated wall-clock spent measuring so far (the x-axis of Figs. 5–7).
    pub fn wall_clock(&self) -> f64 {
        self.wall_clock
    }

    /// Best valid placement seen so far, with its (noisy) measured step time.
    pub fn best(&self) -> Option<&(f64, Placement)> {
        self.best.as_ref()
    }

    fn staging_cost(&self) -> f64 {
        self.cfg.session_setup
            + self.graph.total_param_bytes() as f64 / self.machine.link_bandwidth
    }

    fn noisy_mean(&mut self, base: f64, steps: usize) -> f64 {
        if self.cfg.noise_sigma == 0.0 || steps == 0 {
            return base;
        }
        let mut acc = 0.0;
        for _ in 0..steps {
            // Box–Muller standard normal from two uniforms.
            let u1: f64 = self.rng.gen::<f64>().max(1e-12);
            let u2: f64 = self.rng.gen();
            let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            acc += base * (self.cfg.noise_sigma * normal).exp();
        }
        acc / steps as f64
    }

    /// Measures a placement with the training-time protocol (15 steps, discard 5).
    pub fn evaluate(&mut self, placement: &Placement) -> Measurement {
        self.evals += 1;
        match simulate(&self.graph, &self.machine, placement) {
            SimOutcome::Oom { .. } => {
                self.wall_clock += self.cfg.oom_cost;
                Measurement { step_time: None, wall_cost: self.cfg.oom_cost }
            }
            SimOutcome::Valid(stats) => {
                let measured_steps = self.cfg.train_steps - self.cfg.warmup_steps;
                let mean = self.noisy_mean(stats.step_time, measured_steps);
                let wall = self.staging_cost()
                    + self.cfg.warmup_steps as f64 * stats.step_time * self.cfg.warmup_factor
                    + measured_steps as f64 * stats.step_time;
                self.wall_clock += wall;
                if self.best.as_ref().map_or(true, |(b, _)| mean < *b) {
                    self.best = Some((mean, placement.clone()));
                }
                Measurement { step_time: Some(mean), wall_cost: wall }
            }
        }
    }

    /// Measures a placement with the final protocol (1,000 steps): noise averages
    /// out, so this returns the near-exact step time.
    pub fn evaluate_final(&mut self, placement: &Placement) -> Option<f64> {
        match simulate(&self.graph, &self.machine, placement) {
            SimOutcome::Oom { .. } => None,
            SimOutcome::Valid(stats) => {
                let mean = self.noisy_mean(stats.step_time, 995).min(
                    // Averaging 995 steps leaves well under 1% noise either way;
                    // bound the estimate so pathological RNG draws cannot leak out.
                    stats.step_time * 1.01,
                );
                self.wall_clock += self.staging_cost() + 1000.0 * stats.step_time;
                Some(mean.max(stats.step_time * 0.99))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    fn tiny_graph() -> OpGraph {
        let mut g = OpGraph::new("tiny");
        let a = g.add_node(
            OpNode::new("a", OpKind::MatMul, Phase::Forward)
                .with_flops(4.65e9)
                .with_out_bytes(1024),
        );
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward).with_flops(4.65e9));
        g.add_edge(a, b);
        g
    }

    #[test]
    fn exact_config_is_deterministic_and_noise_free() {
        let m = Machine::paper_machine();
        let mut env = Environment::new(tiny_graph(), m.clone(), MeasureConfig::exact(), 1);
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let a = env.evaluate(&p).step_time.unwrap();
        let b = env.evaluate(&p).step_time.unwrap();
        assert_eq!(a, b);
        let expected = 2.0 * (30e-6 + 1e-3);
        assert!((a - expected).abs() < 1e-9);
    }

    #[test]
    fn noise_is_small_and_seeded() {
        let m = Machine::paper_machine();
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let mut e1 = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 7);
        let mut e2 = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 7);
        let a = e1.evaluate(&p).step_time.unwrap();
        let b = e2.evaluate(&p).step_time.unwrap();
        assert_eq!(a, b, "same seed, same measurement");
        let exact = 2.0 * (30e-6 + 1e-3);
        assert!((a - exact).abs() / exact < 0.1, "noise should be small: {a} vs {exact}");
    }

    #[test]
    fn wall_clock_accumulates_and_oom_costs_less() {
        let m = Machine::paper_machine();
        let mut g = tiny_graph();
        g.node_mut(eagle_opgraph::OpId(0)).act_bytes = 20 << 30;
        let mut env = Environment::new(g, m.clone(), MeasureConfig::default(), 1);
        let oom = env.evaluate(&Placement::uniform(2, m.gpu_ids()[0]));
        assert!(oom.step_time.is_none());
        let w1 = env.wall_clock();
        assert!(w1 > 0.0);
        let ok = env.evaluate(&Placement::uniform(2, m.cpu_id()));
        assert!(ok.step_time.is_some());
        assert!(env.wall_clock() > w1);
        assert!(ok.wall_cost > oom.wall_cost, "valid eval includes session setup + steps");
        assert_eq!(env.num_evals(), 2);
    }

    #[test]
    fn best_tracks_minimum_valid() {
        let m = Machine::paper_machine();
        let mut env = Environment::new(tiny_graph(), m.clone(), MeasureConfig::exact(), 1);
        let slow = Placement::uniform(2, m.cpu_id());
        let fast = Placement::uniform(2, m.gpu_ids()[0]);
        env.evaluate(&slow);
        let b1 = env.best().unwrap().0;
        env.evaluate(&fast);
        let b2 = env.best().unwrap().0;
        assert!(b2 < b1);
        assert_eq!(env.best().unwrap().1, fast);
    }

    #[test]
    fn final_protocol_tight() {
        let m = Machine::paper_machine();
        let mut env = Environment::new(tiny_graph(), m.clone(), MeasureConfig::default(), 3);
        let p = Placement::uniform(2, m.gpu_ids()[0]);
        let t = env.evaluate_final(&p).unwrap();
        let exact = 2.0 * (30e-6 + 1e-3);
        assert!((t - exact).abs() / exact < 0.011, "1000-step estimate is tight: {t}");
    }
}
