//! Device and machine models.
//!
//! The paper's environment is one physical machine with 4 NVIDIA P100 GPUs and
//! 2 Xeon E5-2650v4 CPUs (treated as a single CPU device, as TensorFlow does for
//! placement purposes) connected over PCIe. [`Machine::paper_machine`] reproduces it.

use eagle_opgraph::OpKind;
use serde::{Deserialize, Serialize};

/// Processor class of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Host CPU (large memory, low throughput, cheap op dispatch).
    Cpu,
    /// Discrete GPU (high throughput, limited memory, kernel-launch overhead).
    Gpu,
}

/// One placement-visible device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Display name (`"/gpu:0"`, mirroring TF device strings).
    pub name: String,
    /// Processor class.
    pub kind: DeviceKind,
    /// Peak throughput in FLOP/s.
    pub peak_flops: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Fixed per-op dispatch cost in seconds (kernel launch on GPUs). At batch
    /// size 1 this dominates Inception-V3's step time, which is why every
    /// placement approach in the paper converges to "one GPU" for it.
    pub launch_overhead: f64,
}

/// A machine: a set of devices and the interconnect between them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Devices, indexed by [`DeviceId`].
    pub devices: Vec<DeviceSpec>,
    /// Effective point-to-point bandwidth in bytes/s (PCIe gen3 x16 ≈ 12 GB/s).
    pub link_bandwidth: f64,
    /// Per-transfer fixed latency in seconds.
    pub transfer_latency: f64,
}

/// Index of a device within a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u8);

impl DeviceId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Validation failure from [`MachineBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// No devices were added.
    NoDevices,
    /// More devices than [`DeviceId`] can index (256).
    TooManyDevices(usize),
    /// A device has zero memory capacity.
    ZeroMemory(String),
    /// A device has non-positive peak FLOP/s.
    BadPeakFlops(String),
    /// A device has negative launch overhead.
    NegativeOverhead(String),
    /// Link bandwidth must be positive and finite.
    BadLinkBandwidth(f64),
    /// Transfer latency must be positive and finite.
    BadTransferLatency(f64),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::NoDevices => write!(f, "machine has no devices"),
            MachineError::TooManyDevices(n) => {
                write!(f, "machine has {n} devices; DeviceId supports at most 256")
            }
            MachineError::ZeroMemory(name) => write!(f, "device {name} has zero memory capacity"),
            MachineError::BadPeakFlops(name) => {
                write!(f, "device {name} has non-positive peak FLOP/s")
            }
            MachineError::NegativeOverhead(name) => {
                write!(f, "device {name} has negative launch overhead")
            }
            MachineError::BadLinkBandwidth(v) => {
                write!(f, "link bandwidth must be positive and finite, got {v}")
            }
            MachineError::BadTransferLatency(v) => {
                write!(f, "transfer latency must be positive and finite, got {v}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Validating builder for [`Machine`], matching the `Environment::builder` style:
/// stage devices and link parameters, then [`build`](MachineBuilder::build) checks
/// the configuration (at least one device, positive memory caps, link latency > 0)
/// before a `Machine` exists at all.
#[derive(Debug, Clone, Default)]
pub struct MachineBuilder {
    devices: Vec<DeviceSpec>,
    link_bandwidth: Option<f64>,
    transfer_latency: Option<f64>,
}

impl MachineBuilder {
    /// Adds an arbitrary device (placement order = [`DeviceId`] order).
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.devices.push(spec);
        self
    }

    /// Adds a CPU device named `/cpu:<n>` (numbered among CPUs added so far).
    pub fn cpu(self, peak_flops: f64, mem_bytes: u64, launch_overhead: f64) -> Self {
        let n = self.devices.iter().filter(|d| d.kind == DeviceKind::Cpu).count();
        self.device(DeviceSpec {
            name: format!("/cpu:{n}"),
            kind: DeviceKind::Cpu,
            peak_flops,
            mem_bytes,
            launch_overhead,
        })
    }

    /// Adds a GPU device named `/gpu:<n>` (numbered among GPUs added so far).
    pub fn gpu(self, peak_flops: f64, mem_bytes: u64, launch_overhead: f64) -> Self {
        let n = self.devices.iter().filter(|d| d.kind == DeviceKind::Gpu).count();
        self.device(DeviceSpec {
            name: format!("/gpu:{n}"),
            kind: DeviceKind::Gpu,
            peak_flops,
            mem_bytes,
            launch_overhead,
        })
    }

    /// Effective point-to-point bandwidth in bytes/s.
    pub fn link_bandwidth(mut self, bytes_per_s: f64) -> Self {
        self.link_bandwidth = Some(bytes_per_s);
        self
    }

    /// Per-transfer fixed latency in seconds.
    pub fn transfer_latency(mut self, seconds: f64) -> Self {
        self.transfer_latency = Some(seconds);
        self
    }

    /// Validates the staged configuration and produces the machine.
    pub fn build(self) -> Result<Machine, MachineError> {
        if self.devices.is_empty() {
            return Err(MachineError::NoDevices);
        }
        if self.devices.len() > 256 {
            return Err(MachineError::TooManyDevices(self.devices.len()));
        }
        for d in &self.devices {
            if d.mem_bytes == 0 {
                return Err(MachineError::ZeroMemory(d.name.clone()));
            }
            if d.peak_flops <= 0.0 || !d.peak_flops.is_finite() {
                return Err(MachineError::BadPeakFlops(d.name.clone()));
            }
            if d.launch_overhead < 0.0 || !d.launch_overhead.is_finite() {
                return Err(MachineError::NegativeOverhead(d.name.clone()));
            }
        }
        let bw = self.link_bandwidth.unwrap_or(12e9);
        if bw <= 0.0 || !bw.is_finite() {
            return Err(MachineError::BadLinkBandwidth(bw));
        }
        let lat = self.transfer_latency.unwrap_or(250e-6);
        if lat <= 0.0 || !lat.is_finite() {
            return Err(MachineError::BadTransferLatency(lat));
        }
        Ok(Machine { devices: self.devices, link_bandwidth: bw, transfer_latency: lat })
    }
}

impl Machine {
    /// Starts a validating [`MachineBuilder`] (the one way to construct a machine).
    pub fn builder() -> MachineBuilder {
        MachineBuilder::default()
    }

    /// The paper's evaluation machine: 4x P100 (16 GB) + host CPU (125 GB RAM).
    pub fn paper_machine() -> Self {
        let gib = 1u64 << 30;
        let mut b = Machine::builder().cpu(0.6e12, 125 * gib, 10e-6);
        for _ in 0..4 {
            b = b.gpu(9.3e12, 16 * gib, 30e-6);
        }
        // The latency covers TF's send/recv rendezvous per cross-device edge; it is
        // what makes scattering tiny ops across devices unprofitable (and why every
        // approach converges to one GPU for batch-1 Inception-V3).
        b.link_bandwidth(12e9)
            .transfer_latency(250e-6)
            .build()
            .expect("paper machine is a valid configuration")
    }

    /// A reduced two-GPU machine for tests and quick experiments.
    pub fn small_machine() -> Self {
        let mut m = Self::paper_machine();
        m.devices.truncate(3);
        m
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device ids in order (CPU first, then GPUs).
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len() as u8).map(DeviceId)
    }

    /// Ids of GPU devices.
    pub fn gpu_ids(&self) -> Vec<DeviceId> {
        self.device_ids().filter(|d| self.devices[d.index()].kind == DeviceKind::Gpu).collect()
    }

    /// The CPU device id.
    pub fn cpu_id(&self) -> DeviceId {
        self.device_ids()
            .find(|d| self.devices[d.index()].kind == DeviceKind::Cpu)
            .expect("machine has a CPU")
    }

    /// Execution time of `flops` of op kind `kind` on device `dev`, including the
    /// per-op dispatch overhead.
    pub fn exec_time(&self, kind: OpKind, flops: f64, dev: DeviceId) -> f64 {
        let spec = &self.devices[dev.index()];
        let eff = efficiency(kind, spec.kind);
        spec.launch_overhead + flops / (spec.peak_flops * eff)
    }

    /// Time to move `bytes` across the interconnect (same-device moves are free).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.transfer_latency + bytes as f64 / self.link_bandwidth
    }
}

/// Fraction of a device's peak FLOP/s an op kind actually achieves.
///
/// The table captures the placement-relevant asymmetries: dense kernels come close to
/// GPU peak, bandwidth-bound elementwise ops do not, and a handful of kinds
/// (input pipeline, embedding gathers) run *better* on the CPU — the paper observes
/// RL agents discover exactly this ("some operations are actually running faster on
/// the CPU devices", Sec. IV-D).
pub fn efficiency(kind: OpKind, dev: DeviceKind) -> f64 {
    use OpKind::*;
    match (kind, dev) {
        (Conv2d, DeviceKind::Gpu) => 0.45,
        (Conv2d, DeviceKind::Cpu) => 0.04,
        (MatMul, DeviceKind::Gpu) => 0.50,
        (MatMul, DeviceKind::Cpu) => 0.08,
        (LstmCell, DeviceKind::Gpu) => 0.35,
        (LstmCell, DeviceKind::Cpu) => 0.06,
        (Attention, DeviceKind::Gpu) => 0.35,
        (Attention, DeviceKind::Cpu) => 0.06,
        (Softmax, DeviceKind::Gpu) => 0.15,
        (Softmax, DeviceKind::Cpu) => 0.04,
        (Embedding, DeviceKind::Gpu) => 0.02,
        (Embedding, DeviceKind::Cpu) => 0.10,
        (Input, DeviceKind::Gpu) => 0.002,
        (Input, DeviceKind::Cpu) => 0.20,
        (BatchNorm | LayerNorm | Activation | Elementwise | Reduce | Loss, DeviceKind::Gpu) => 0.05,
        (BatchNorm | LayerNorm | Activation | Elementwise | Reduce | Loss, DeviceKind::Cpu) => 0.02,
        (Pool, DeviceKind::Gpu) => 0.10,
        (Pool, DeviceKind::Cpu) => 0.03,
        (GradAccum | ApplyUpdate, DeviceKind::Gpu) => 0.05,
        (GradAccum | ApplyUpdate, DeviceKind::Cpu) => 0.02,
        // Shape-only / metadata ops are effectively free compute.
        (Reshape | Concat | Split | Const | Variable, _) => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let m = Machine::paper_machine();
        assert_eq!(m.num_devices(), 5);
        assert_eq!(m.gpu_ids().len(), 4);
        assert_eq!(m.cpu_id(), DeviceId(0));
        assert_eq!(m.devices[m.cpu_id().index()].kind, DeviceKind::Cpu);
    }

    #[test]
    fn dense_ops_prefer_gpu_input_prefers_cpu() {
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        let cpu = m.cpu_id();
        let f = 1e9;
        assert!(m.exec_time(OpKind::Conv2d, f, gpu) < m.exec_time(OpKind::Conv2d, f, cpu));
        assert!(m.exec_time(OpKind::MatMul, f, gpu) < m.exec_time(OpKind::MatMul, f, cpu));
        let fi = 1e6;
        assert!(m.exec_time(OpKind::Input, fi, cpu) < m.exec_time(OpKind::Input, fi, gpu));
        assert!(m.exec_time(OpKind::Embedding, fi, cpu) < m.exec_time(OpKind::Embedding, fi, gpu));
    }

    #[test]
    fn launch_overhead_floors_tiny_ops() {
        let m = Machine::paper_machine();
        let gpu = m.gpu_ids()[0];
        assert!(m.exec_time(OpKind::Elementwise, 0.0, gpu) >= 30e-6);
        assert!(m.exec_time(OpKind::Elementwise, 0.0, m.cpu_id()) >= 10e-6);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = Machine::paper_machine();
        let t1 = m.transfer_time(1 << 20);
        let t2 = m.transfer_time(1 << 26);
        assert!(t2 > t1);
        assert!((m.transfer_time(0) - m.transfer_latency).abs() < 1e-12);
        // 12 MB at 12 GB/s = 1 ms + latency.
        assert!((m.transfer_time(12_000_000) - (250e-6 + 1e-3)).abs() < 1e-6);
    }

    #[test]
    fn builder_validates_configuration() {
        let gib = 1u64 << 30;
        // Empty machine rejected.
        assert_eq!(Machine::builder().build().unwrap_err(), MachineError::NoDevices);
        // Zero memory cap rejected.
        let err = Machine::builder().gpu(1e12, 0, 1e-6).build().unwrap_err();
        assert!(matches!(err, MachineError::ZeroMemory(_)));
        // Non-positive link latency rejected.
        let err =
            Machine::builder().cpu(1e12, gib, 1e-6).transfer_latency(0.0).build().unwrap_err();
        assert!(matches!(err, MachineError::BadTransferLatency(_)));
        // Non-positive bandwidth rejected.
        let err = Machine::builder().cpu(1e12, gib, 1e-6).link_bandwidth(-1.0).build().unwrap_err();
        assert!(matches!(err, MachineError::BadLinkBandwidth(_)));
        // A valid staged config builds, with defaults for unset link parameters.
        let m = Machine::builder().cpu(1e12, gib, 1e-6).gpu(9e12, gib, 3e-5).build().unwrap();
        assert_eq!(m.num_devices(), 2);
        assert_eq!(m.devices[1].name, "/gpu:0");
        assert!(m.link_bandwidth > 0.0 && m.transfer_latency > 0.0);
        // Display strings are stable.
        assert_eq!(MachineError::NoDevices.to_string(), "machine has no devices");
    }

    #[test]
    fn efficiency_table_total() {
        // Every (kind, device) combination must be positive and at most 1.
        for &k in eagle_opgraph::ALL_OP_KINDS.iter() {
            for d in [DeviceKind::Cpu, DeviceKind::Gpu] {
                let e = efficiency(k, d);
                assert!(e > 0.0 && e <= 1.0, "{k:?} on {d:?}: {e}");
            }
        }
    }
}
