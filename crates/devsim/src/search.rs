//! Classical search baselines over the placement space: random search, hill
//! climbing and simulated annealing on grouped placements.
//!
//! These are not paper baselines — the paper compares against RL agents — but they
//! certify the optimization landscape: the annealing result is a practical lower
//! bound ("oracle") that EXPERIMENTS.md reports next to the learned placements, and
//! the tests use it to prove the headroom the RL agents are expected to find.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use eagle_opgraph::OpGraph;

use crate::device::{DeviceId, Machine};
use crate::placement::Placement;
use crate::sim::simulate;

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best per-step time found (`None` if every evaluated placement OOMed).
    pub best_time: Option<f64>,
    /// The best placement.
    pub best_placement: Option<Placement>,
    /// Number of simulator evaluations spent.
    pub evals: usize,
}

fn eval(graph: &OpGraph, machine: &Machine, group_of: &[usize], gd: &[DeviceId]) -> f64 {
    simulate(graph, machine, &Placement::from_groups(group_of, gd))
        .step_time()
        .unwrap_or(f64::INFINITY)
}

/// Uniform random search over group-device assignments.
pub fn random_search(
    graph: &OpGraph,
    machine: &Machine,
    group_of: &[usize],
    iters: usize,
    seed: u64,
) -> SearchResult {
    let k = group_of.iter().copied().max().map_or(0, |m| m + 1);
    let nd = machine.num_devices() as u8;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    let mut best_gd: Option<Vec<DeviceId>> = None;
    for _ in 0..iters {
        let gd: Vec<DeviceId> = (0..k).map(|_| DeviceId(rng.gen_range(0..nd))).collect();
        let t = eval(graph, machine, group_of, &gd);
        if t < best {
            best = t;
            best_gd = Some(gd);
        }
    }
    finish(group_of, best, best_gd, iters)
}

/// Greedy hill climbing: single-group device flips, accepted only on improvement.
pub fn hill_climb(
    graph: &OpGraph,
    machine: &Machine,
    group_of: &[usize],
    init: Vec<DeviceId>,
    iters: usize,
    seed: u64,
) -> SearchResult {
    let k = init.len();
    let nd = machine.num_devices() as u8;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut gd = init;
    let mut best = eval(graph, machine, group_of, &gd);
    for _ in 0..iters {
        let gi = rng.gen_range(0..k);
        let old = gd[gi];
        gd[gi] = DeviceId(rng.gen_range(0..nd));
        let t = eval(graph, machine, group_of, &gd);
        if t < best {
            best = t;
        } else {
            gd[gi] = old;
        }
    }
    finish(group_of, best, Some(gd), iters + 1)
}

/// Simulated annealing with a geometric temperature schedule proportional to the
/// current objective. The strongest classical baseline here; used as the
/// landscape "oracle" in EXPERIMENTS.md.
pub fn simulated_annealing(
    graph: &OpGraph,
    machine: &Machine,
    group_of: &[usize],
    iters: usize,
    seed: u64,
) -> SearchResult {
    let k = group_of.iter().copied().max().map_or(0, |m| m + 1);
    let nd = machine.num_devices() as u8;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut gd: Vec<DeviceId> = (0..k).map(|_| DeviceId(rng.gen_range(0..nd))).collect();
    let mut cur = eval(graph, machine, group_of, &gd);
    let mut best = cur;
    let mut best_gd = gd.clone();
    for i in 0..iters {
        let progress = i as f64 / iters.max(1) as f64;
        let temp = 0.3 * (1.0 - progress).powi(2) * cur.min(1e3) + 1e-9;
        let gi = rng.gen_range(0..k);
        let old = gd[gi];
        gd[gi] = DeviceId(rng.gen_range(0..nd));
        let t = eval(graph, machine, group_of, &gd);
        let accept = t < cur || (t.is_finite() && rng.gen::<f64>() < ((cur - t) / temp).exp());
        if accept {
            cur = t;
            if t < best {
                best = t;
                best_gd = gd.clone();
            }
        } else {
            gd[gi] = old;
        }
    }
    finish(group_of, best, Some(best_gd), iters + 1)
}

fn finish(
    group_of: &[usize],
    best: f64,
    best_gd: Option<Vec<DeviceId>>,
    evals: usize,
) -> SearchResult {
    if best.is_finite() {
        SearchResult {
            best_time: Some(best),
            best_placement: best_gd.map(|gd| Placement::from_groups(group_of, &gd)),
            evals,
        }
    } else {
        SearchResult { best_time: None, best_placement: None, evals }
    }
}

/// Topologically contiguous equal chunks — the standard structured grouping for
/// search baselines (and EAGLE's grouper warm start).
pub fn topo_chunks(graph: &OpGraph, k: usize) -> Vec<usize> {
    let n = graph.len();
    let k = k.min(n).max(1);
    let order = graph.topo_order();
    let mut group_of = vec![0usize; n];
    for (pos, id) in order.iter().enumerate() {
        group_of[id.index()] = pos * k / n;
    }
    group_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::predefined;

    #[test]
    fn searches_find_valid_placements_on_gnmt() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::Gnmt.graph_for(&machine);
        let groups = topo_chunks(&graph, 24);
        let r = random_search(&graph, &machine, &groups, 50, 1);
        assert!(r.best_time.is_some(), "50 random grouped placements include a valid one");
        assert_eq!(r.evals, 50);
    }

    #[test]
    fn hill_climb_improves_on_start() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let groups = topo_chunks(&graph, 16);
        // Start from everything-on-CPU: hill climbing must improve massively.
        let init = vec![machine.cpu_id(); 16];
        let start = eval(&graph, &machine, &groups, &init);
        let r = hill_climb(&graph, &machine, &groups, init, 300, 2);
        assert!(r.best_time.unwrap() < start / 2.0);
    }

    #[test]
    fn annealing_beats_random_search_on_bert() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::BertBase.graph_for(&machine);
        let groups = topo_chunks(&graph, 24);
        let rs = random_search(&graph, &machine, &groups, 300, 3);
        let sa = simulated_annealing(&graph, &machine, &groups, 300, 3);
        assert!(
            sa.best_time.unwrap() <= rs.best_time.unwrap(),
            "annealing {:?} should not lose to random {:?}",
            sa.best_time,
            rs.best_time
        );
    }

    #[test]
    fn best_placement_reproduces_best_time() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let groups = topo_chunks(&graph, 8);
        let r = simulated_annealing(&graph, &machine, &groups, 200, 4);
        let p = r.best_placement.expect("valid found");
        let t = simulate(&graph, &machine, &p).step_time().expect("valid");
        assert!((t - r.best_time.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn topo_chunks_are_contiguous_and_balanced() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::Gnmt.graph_for(&machine);
        let k = 10;
        let groups = topo_chunks(&graph, k);
        let mut counts = vec![0usize; k];
        for &g in &groups {
            counts[g] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= graph.len() / k, "roughly equal chunks: {counts:?}");
        // Respect topological order: group index is monotone along the topo order.
        let order = graph.topo_order();
        let mut prev = 0;
        for id in order {
            assert!(groups[id.index()] >= prev);
            prev = groups[id.index()];
        }
    }

    #[test]
    fn single_gpu_is_near_optimal_for_inception() {
        // The paper's core Inception observation: communication outweighs
        // parallelism at batch 1, so search barely improves on one GPU.
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let single = simulate(&graph, &machine, &predefined::single_gpu(&graph, &machine))
            .step_time()
            .unwrap();
        let groups = topo_chunks(&graph, 24);
        let sa = simulated_annealing(&graph, &machine, &groups, 2000, 5);
        let best = sa.best_time.unwrap();
        assert!(
            best > single * 0.5,
            "no placement should be dramatically better than one GPU: {best} vs {single}"
        );
    }
}
