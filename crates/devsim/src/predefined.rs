//! Pre-defined placements: the paper's Single-GPU and Human-Expert baselines,
//! plus random placements for exploration baselines and tests.

use eagle_opgraph::{OpGraph, OpKind};
use rand::Rng;

use crate::device::{DeviceId, Machine};
use crate::placement::Placement;

/// The Single-GPU baseline: every op on the first GPU, except ops that are
/// incompatible with GPUs (input pipeline, embedding lookups), which go to the CPU —
/// exactly the paper's description of this baseline.
pub fn single_gpu(graph: &OpGraph, machine: &Machine) -> Placement {
    let gpu = machine.gpu_ids()[0];
    let cpu = machine.cpu_id();
    Placement::new(
        graph
            .ids()
            .map(|id| match graph.node(id).kind {
                OpKind::Input | OpKind::Embedding => cpu,
                _ => gpu,
            })
            .collect(),
    )
}

/// A uniformly random placement over all devices.
pub fn random_placement(graph: &OpGraph, machine: &Machine, rng: &mut impl Rng) -> Placement {
    let nd = machine.num_devices() as u8;
    Placement::new(graph.ids().map(|_| DeviceId(rng.gen_range(0..nd))).collect())
}

/// The Human-Expert placement for a benchmark graph, keyed off `model_name`:
///
/// * `inception_v3` — the TF-Slim placement: most ops on one GPU, the input
///   pipeline on the CPU (same as Single-GPU for this model).
/// * `gnmt` — the Google NMT multi-GPU placement: each LSTM layer, the attention
///   layer and the softmax layer on a separate device, round-robin over GPUs;
///   embeddings on the CPU.
/// * `bert_base` — `None`: the paper notes BERT ships no model-parallel placement.
pub fn human_expert(graph: &OpGraph, machine: &Machine) -> Option<Placement> {
    match graph.model_name.as_str() {
        "inception_v3" => Some(single_gpu(graph, machine)),
        "gnmt" => Some(gnmt_expert(graph, machine)),
        _ => None,
    }
}

/// Assigns a GNMT op to a "layer unit" index based on its TF-style name; units are
/// then striped across GPUs. Gradient (`grad/...`) and update (`update/...`) ops
/// carry the forward name as a suffix and land with their layer.
fn gnmt_unit(name: &str) -> Option<usize> {
    // Order matters: attention before decoder layers so "decoder/attention" wins.
    if name.contains("encoder/layer0") {
        Some(0)
    } else if name.contains("encoder/layer1") {
        Some(1)
    } else if name.contains("encoder/layer2") {
        Some(2)
    } else if name.contains("encoder/layer3") {
        Some(3)
    } else if name.contains("attention") {
        Some(4)
    } else if name.contains("decoder/layer0") {
        Some(5)
    } else if name.contains("decoder/layer1") {
        Some(6)
    } else if name.contains("decoder/layer2") {
        Some(7)
    } else if name.contains("decoder/layer3") {
        Some(8)
    } else if name.contains("softmax") || name.contains("loss") || name.contains("decoder/outputs")
    {
        Some(9)
    } else {
        None
    }
}

fn gnmt_expert(graph: &OpGraph, machine: &Machine) -> Placement {
    let gpus = machine.gpu_ids();
    let cpu = machine.cpu_id();
    Placement::new(
        graph
            .ids()
            .map(|id| {
                let node = graph.node(id);
                if matches!(node.kind, OpKind::Input) || node.name.contains("embedding") {
                    return cpu;
                }
                match gnmt_unit(&node.name) {
                    Some(unit) => gpus[unit % gpus.len()],
                    None => gpus[0],
                }
            })
            .collect(),
    )
}

/// A balanced contiguous layer split for BERT: embeddings + first layers on the
/// first GPU, subsequent layer ranges on the remaining GPUs, the MLM head on the
/// last. Not a paper baseline (BERT has no expert placement) — used as the
/// calibration reference and as a sanity placement in tests.
pub fn bert_layer_split(graph: &OpGraph, machine: &Machine) -> Placement {
    let gpus = machine.gpu_ids();
    let cpu = machine.cpu_id();
    let per_gpu = 12_usize.div_ceil(gpus.len());
    Placement::new(
        graph
            .ids()
            .map(|id| {
                let node = graph.node(id);
                if matches!(node.kind, OpKind::Input) {
                    return cpu;
                }
                let name = &node.name;
                for l in 0..12usize {
                    if name.contains(&format!("layer{l}/")) {
                        return gpus[(l / per_gpu).min(gpus.len() - 1)];
                    }
                }
                if name.contains("embedding") {
                    gpus[0]
                } else {
                    // MLM head, loss and anything else rides the last GPU.
                    gpus[gpus.len() - 1]
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOutcome};
    use eagle_opgraph::builders;
    use rand::SeedableRng;

    #[test]
    fn single_gpu_puts_inputs_on_cpu() {
        let g = builders::try_gnmt(&builders::GnmtConfig {
            batch: 4,
            hidden: 8,
            layers: 2,
            seq_len: 3,
            vocab: 50,
        })
        .expect("valid GNMT config");
        let m = Machine::paper_machine();
        let p = single_gpu(&g, &m);
        for id in g.ids() {
            match g.node(id).kind {
                OpKind::Input | OpKind::Embedding => assert_eq!(p.device(id), m.cpu_id()),
                _ => assert_eq!(p.device(id), m.gpu_ids()[0]),
            }
        }
    }

    #[test]
    fn gnmt_expert_uses_all_gpus_and_fits() {
        let g = builders::try_gnmt(&builders::GnmtConfig::default())
            .expect("default GNMT config is valid");
        let m = Machine::paper_machine();
        let p = human_expert(&g, &m).expect("gnmt has an expert placement");
        let mem = p.memory_per_device(&g, &m);
        for (i, spec) in m.devices.iter().enumerate() {
            assert!(
                mem[i] <= spec.mem_bytes,
                "expert must fit: device {i} uses {} of {}",
                mem[i],
                spec.mem_bytes
            );
        }
        let used: std::collections::HashSet<_> = p.devices().iter().collect();
        assert!(used.len() >= 4, "expert spreads over >= 4 devices, used {}", used.len());
        assert!(matches!(simulate(&g, &m, &p), SimOutcome::Valid(_)));
    }

    #[test]
    fn gnmt_single_gpu_ooms() {
        let g = builders::try_gnmt(&builders::GnmtConfig::default())
            .expect("default GNMT config is valid");
        let m = Machine::paper_machine();
        let p = single_gpu(&g, &m);
        assert!(
            matches!(simulate(&g, &m, &p), SimOutcome::Oom { .. }),
            "batch-256 GNMT must OOM a single 16 GB GPU (Table IV)"
        );
    }

    #[test]
    fn bert_has_no_expert_but_layer_split_fits() {
        let g = builders::try_bert_base(&builders::BertConfig::default())
            .expect("default BERT config is valid");
        let m = Machine::paper_machine();
        assert!(human_expert(&g, &m).is_none(), "paper: no expert placement for BERT");
        assert!(
            matches!(simulate(&g, &m, &single_gpu(&g, &m)), SimOutcome::Oom { .. }),
            "BERT must OOM a single GPU (Table IV)"
        );
        let split = bert_layer_split(&g, &m);
        assert!(
            matches!(simulate(&g, &m, &split), SimOutcome::Valid(_)),
            "a 4-way layer split must fit; memory = {:?}",
            split.memory_per_device(&g, &m)
        );
    }

    #[test]
    fn inception_single_gpu_valid() {
        let g = builders::try_inception_v3(&builders::InceptionConfig::default())
            .expect("default Inception config is valid");
        let m = Machine::paper_machine();
        assert!(matches!(simulate(&g, &m, &single_gpu(&g, &m)), SimOutcome::Valid(_)));
    }

    #[test]
    fn random_placement_covers_graph() {
        let g = builders::try_inception_v3(&builders::InceptionConfig::default())
            .expect("default Inception config is valid");
        let m = Machine::paper_machine();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let p = random_placement(&g, &m, &mut rng);
        assert_eq!(p.len(), g.len());
        assert!(p.validate(&g, &m).is_ok());
    }
}
