//! Calibrated benchmark instances: graph + machine + reference numbers.
//!
//! Builders produce structurally honest graphs; this module scales their FLOPs so a
//! documented reference placement lands on the paper's measured per-step time (see
//! DESIGN.md "Calibration notes"). All downstream experiments use these calibrated
//! instances, so table shapes are comparable to the paper's.

use eagle_opgraph::{builders, OpGraph};

use crate::device::Machine;
use crate::placement::Placement;
use crate::predefined;
use crate::sim::{simulate, SimOutcome};

/// The three benchmark models of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Inception-V3, batch 1 — small, fits one GPU.
    InceptionV3,
    /// GNMT 4-layer, batch 256 — OOMs one GPU.
    Gnmt,
    /// BERT-Base, seq 384 / batch 24 — OOMs one GPU.
    BertBase,
}

/// Paper-reported per-step times (Table IV), used for EXPERIMENTS.md comparisons.
#[derive(Debug, Clone, Copy)]
pub struct PaperNumbers {
    /// Single-GPU baseline (`None` = OOM).
    pub single_gpu: Option<f64>,
    /// Human-expert baseline (`None` = OOM / unavailable).
    pub human_expert: Option<f64>,
    /// Hierarchical Planner.
    pub hierarchical_planner: f64,
    /// Post.
    pub post: f64,
    /// EAGLE trained with PPO.
    pub eagle_ppo: f64,
    /// EAGLE trained with PPO + cross-entropy.
    pub eagle_ppo_ce: f64,
}

impl Benchmark {
    /// All benchmarks, in the paper's order.
    pub const ALL: [Benchmark; 3] = [Benchmark::InceptionV3, Benchmark::Gnmt, Benchmark::BertBase];

    /// Model name matching `OpGraph::model_name`.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::InceptionV3 => "inception_v3",
            Benchmark::Gnmt => "gnmt",
            Benchmark::BertBase => "bert_base",
        }
    }

    /// Paper Table IV numbers for this model.
    pub fn paper_numbers(self) -> PaperNumbers {
        match self {
            Benchmark::InceptionV3 => PaperNumbers {
                single_gpu: Some(0.071),
                human_expert: Some(0.071),
                hierarchical_planner: 0.067,
                post: 0.067,
                eagle_ppo: 0.067,
                eagle_ppo_ce: 0.067,
            },
            Benchmark::Gnmt => PaperNumbers {
                single_gpu: None,
                human_expert: Some(1.661),
                hierarchical_planner: 1.418,
                post: 2.031,
                eagle_ppo: 1.379,
                eagle_ppo_ce: 1.503,
            },
            Benchmark::BertBase => PaperNumbers {
                single_gpu: None,
                human_expert: None,
                hierarchical_planner: 5.534,
                post: 2.812,
                eagle_ppo: 2.287,
                eagle_ppo_ce: 2.488,
            },
        }
    }

    /// The uncalibrated graph.
    pub fn raw_graph(self) -> OpGraph {
        match self {
            Benchmark::InceptionV3 => builders::try_inception_v3(&Default::default())
                .expect("default Inception config is valid"),
            Benchmark::Gnmt => {
                builders::try_gnmt(&Default::default()).expect("default GNMT config is valid")
            }
            Benchmark::BertBase => {
                builders::try_bert_base(&Default::default()).expect("default BERT config is valid")
            }
        }
    }

    /// The calibration reference placement and its target per-step time.
    ///
    /// * Inception-V3: Single-GPU baseline at the paper's 0.071 s.
    /// * GNMT: Human-Expert layer striping at the paper's 1.661 s.
    /// * BERT: a balanced contiguous layer split at 3.2 s (between the paper's Post
    ///   result 2.812 s — a tuned placement — and Hierarchical Planner's 5.534 s).
    pub fn calibration(self, graph: &OpGraph, machine: &Machine) -> (Placement, f64) {
        match self {
            Benchmark::InceptionV3 => (predefined::single_gpu(graph, machine), 0.071),
            Benchmark::Gnmt => {
                (predefined::human_expert(graph, machine).expect("gnmt expert exists"), 1.661)
            }
            Benchmark::BertBase => (predefined::bert_layer_split(graph, machine), 3.2),
        }
    }

    /// Builds the calibrated graph for the paper machine.
    pub fn graph(self) -> OpGraph {
        self.graph_for(&Machine::paper_machine())
    }

    /// Builds the calibrated graph for an arbitrary machine.
    pub fn graph_for(self, machine: &Machine) -> OpGraph {
        let mut g = self.raw_graph();
        let (reference, target) = self.calibration(&g, machine);
        calibrate(&mut g, machine, &reference, target);
        g
    }
}

/// Scales the graph's FLOPs so `simulate(graph, machine, reference)` hits `target`
/// seconds. Launch overheads and transfer costs are scale-independent, so the search
/// bisects over the FLOP multiplier. Returns the multiplier applied.
///
/// # Panics
/// Panics if the reference placement OOMs (calibration references must be valid) or
/// if the target is below the overhead floor (unreachable even at zero FLOPs).
pub fn calibrate(
    graph: &mut OpGraph,
    machine: &Machine,
    reference: &Placement,
    target: f64,
) -> f64 {
    let eval = |g: &OpGraph| -> f64 {
        match simulate(g, machine, reference) {
            SimOutcome::Valid(s) => s.step_time,
            SimOutcome::Oom { device, required, capacity } => {
                panic!("calibration reference OOMs on device {device:?}: {required} > {capacity}")
            }
        }
    };
    let scale_graph = |g: &mut OpGraph, s: f64| {
        for id in g.ids().collect::<Vec<_>>() {
            g.node_mut(id).flops *= s;
        }
    };

    let floor = {
        let mut zeroed = graph.clone();
        scale_graph(&mut zeroed, 0.0);
        eval(&zeroed)
    };
    assert!(
        target > floor,
        "target {target}s is below the zero-FLOP floor {floor}s for {}",
        graph.model_name
    );

    let base = eval(graph);
    let (mut lo, mut hi) = (1e-6f64, 1e6f64);
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        let mut probe = graph.clone();
        scale_graph(&mut probe, mid);
        if eval(&probe) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let s = (lo * hi).sqrt();
    scale_graph(graph, s);
    let achieved = eval(graph);
    debug_assert!(
        (achieved - target).abs() / target < 0.05,
        "calibration off: base {base}, achieved {achieved}, target {target}"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_targets() {
        let m = Machine::paper_machine();
        for b in Benchmark::ALL {
            let g = b.graph_for(&m);
            let (reference, target) = b.calibration(&g, &m);
            let t = simulate(&g, &m, &reference).step_time().expect("reference valid");
            assert!(
                (t - target).abs() / target < 0.02,
                "{}: calibrated {t} vs target {target}",
                b.name()
            );
        }
    }

    #[test]
    fn paper_numbers_sane() {
        for b in Benchmark::ALL {
            let p = b.paper_numbers();
            assert!(p.eagle_ppo > 0.0);
            assert!(p.hierarchical_planner > 0.0);
        }
        // Shape claims from the abstract.
        let gnmt = Benchmark::Gnmt.paper_numbers();
        assert!(gnmt.eagle_ppo < gnmt.hierarchical_planner);
        assert!(gnmt.eagle_ppo < gnmt.human_expert.unwrap());
        let bert = Benchmark::BertBase.paper_numbers();
        assert!(bert.eagle_ppo < bert.post);
    }

    #[test]
    fn calibrate_is_monotone_fixture() {
        // Double the target, re-calibrate: scale must grow.
        let m = Machine::paper_machine();
        let mut g1 = Benchmark::InceptionV3.raw_graph();
        let mut g2 = Benchmark::InceptionV3.raw_graph();
        let (r, _) = Benchmark::InceptionV3.calibration(&g1, &m);
        let s1 = calibrate(&mut g1, &m, &r, 0.071);
        let s2 = calibrate(&mut g2, &m, &r, 0.142);
        assert!(s2 > s1, "s1 = {s1}, s2 = {s2}");
    }
}
