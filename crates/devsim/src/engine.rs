//! The causal discrete-event scheduling core shared by [`crate::sim`] and
//! [`crate::trace`].
//!
//! Both the step-time simulator and the schedule tracer used to carry their own
//! copy of the list-scheduling loop, and PR 3 had to patch the same fan-out bug
//! in both files — the classic duplicated-scheduler drift. This module is the
//! single implementation both now project from, built as a true discrete-event
//! engine:
//!
//! * **One time-ordered event queue.** Compute-finish and transfer-arrival
//!   events are processed in global time order, with a deterministic total
//!   order on ties: time first, then event kind (finishes before arrivals),
//!   then op index, then destination device. The same inputs therefore always
//!   produce the bit-identical schedule. Physically the queue is split by
//!   kind: a device runs one op at a time, so at most `num_devices` finish
//!   events are ever outstanding and they live in a per-device slot array;
//!   transfer arrivals (unbounded) live in a binary heap of packed
//!   `(time, producer, destination)` keys. Draining pops finishes at the
//!   current timestamp in op order, then arrivals in `(producer, dst)` order —
//!   exactly the logical queue's order at a fraction of the heap traffic.
//! * **Causal link reservations.** A cross-device transfer reserves its
//!   directed link *when the producing op actually finishes* — at the
//!   transfer's causal start time — never earlier. Per link, bookings are
//!   first-come-first-served in event order, so booked intervals are
//!   non-overlapping and non-decreasing in start time by construction (the
//!   property `tests/property_sim.rs` cross-checks against a brute-force
//!   reference).
//! * **Ready-queue dispatch.** Each device runs one op at a time. All events
//!   at a timestamp are drained before any op is started at that timestamp;
//!   an idle device then starts the waiting op with the smallest
//!   `(ready_time, op_index)` key.
//! * **Per-destination shipment dedup.** An op's output tensor ships at most
//!   once per destination device; additional consumers on that device reuse
//!   the one arrival (they fan out locally, as real runtimes do).
//!
//! The engine records a full schedule — every op slot and every booked
//! transfer — plus the counters the telemetry layer exposes (events processed,
//! peak queue depth, deduplicated shipments).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use eagle_opgraph::{OpGraph, OpId};
use serde::Serialize;

use crate::device::{DeviceId, Machine};
use crate::placement::Placement;

/// Packs `(ready_time, op)` into one integer key ordered like the tuple.
/// Simulated times are finite and non-negative, so the IEEE-754 bit pattern
/// of `t` is monotone in `t` and a single `u128` compare replaces an f64
/// `total_cmp` plus integer tie-breaks on the scheduler's hottest path.
#[inline]
fn ready_key(t: f64, op: u32) -> u128 {
    debug_assert!(t.is_finite() && t.is_sign_positive(), "simulated times are >= 0");
    ((t.to_bits() as u128) << 32) | op as u128
}

/// Packs an arrival event `(time, producer, dst)` into one ordered key.
#[inline]
fn arrival_key(t: f64, producer: u32, dst: u8) -> u128 {
    debug_assert!(t.is_finite() && t.is_sign_positive(), "simulated times are >= 0");
    ((t.to_bits() as u128) << 40) | ((producer as u128) << 8) | dst as u128
}

#[inline]
fn key_time(key: u128, payload_bits: u32) -> f64 {
    f64::from_bits((key >> payload_bits) as u64)
}

/// One op's scheduled execution window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OpSlot {
    /// Op index.
    pub op: u32,
    /// Device the op ran on.
    pub device: u8,
    /// Start time in seconds from step begin.
    pub start: f64,
    /// Finish time in seconds.
    pub finish: f64,
}

/// One booked cross-device transfer on a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TransferSlot {
    /// The producing op whose output tensor is shipped.
    pub producer: u32,
    /// Source device (the producer's device).
    pub src: u8,
    /// Destination device.
    pub dst: u8,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Causal start time: `max(producer finish, link free)`.
    pub start: f64,
    /// Arrival time on the destination device.
    pub finish: f64,
}

/// The complete causal schedule of one training step, plus engine counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Makespan in seconds (latest compute finish).
    pub step_time: f64,
    /// Per-op execution slots, in dispatch (start) order.
    pub ops: Vec<OpSlot>,
    /// Booked transfers, in causal booking order (non-decreasing start per link).
    pub transfers: Vec<TransferSlot>,
    /// Per-device busy time (compute only).
    pub device_busy: Vec<f64>,
    /// Total time spent in cross-device transfers (sum over links).
    pub comm_time: f64,
    /// Shipments skipped because the tensor was already bound for that
    /// destination device (consumers fanning out locally).
    pub transfers_deduped: u64,
    /// Events processed (compute finishes + transfer arrivals).
    pub events_processed: u64,
    /// Peak number of outstanding future events (running finishes plus
    /// in-flight arrivals).
    pub peak_queue_depth: usize,
}

/// Runs the causal discrete-event engine over `graph` on `machine` under
/// `placement`, producing the full step schedule.
///
/// Memory feasibility is *not* checked here — callers ([`crate::simulate`],
/// [`crate::trace::trace`]) gate on OOM first.
///
/// # Panics
/// Panics if the placement fails [`Placement::validate`] (a programming error:
/// agents only choose among existing devices).
pub fn schedule(graph: &OpGraph, machine: &Machine, placement: &Placement) -> Schedule {
    run_engine(graph, machine, placement, true)
}

/// Like [`schedule`], but skips recording the per-op [`OpSlot`] vector
/// (`Schedule::ops` comes back empty). Step time, transfers and every counter
/// are identical — this is the entry for stats-only callers on the hot path
/// ([`crate::simulate`] runs once per RL episode).
pub fn schedule_stats(graph: &OpGraph, machine: &Machine, placement: &Placement) -> Schedule {
    run_engine(graph, machine, placement, false)
}

fn run_engine(
    graph: &OpGraph,
    machine: &Machine,
    placement: &Placement,
    record_ops: bool,
) -> Schedule {
    placement.validate(graph, machine).expect("placement matches graph and machine");
    // Single-device fast path: with every op on one device there are no
    // transfers, at most one outstanding finish, and each finish is
    // immediately followed by the dispatch it unblocks — the event queue
    // degenerates to the ready queue. `run_single_device` replays exactly the
    // general engine's op order (min `(ready, op index)` per dispatch) and
    // produces bit-identical times and counters at a fraction of the
    // bookkeeping; the differential oracle in `tests/property_sim.rs` holds
    // both paths to the brute-force reference.
    let devices = placement.devices();
    let single = devices.first().copied().filter(|&d0| devices.iter().all(|&d| d == d0));
    // `RECORD` is a const generic so the stats-only path (once per RL episode)
    // compiles with the op-slot recording deleted rather than branched over.
    match (single, record_ops) {
        (Some(d0), true) => {
            Engine::new(graph, machine, placement, true).run_single_device::<true>(d0)
        }
        (Some(d0), false) => {
            Engine::new(graph, machine, placement, false).run_single_device::<false>(d0)
        }
        (None, true) => Engine::new(graph, machine, placement, true).run::<true>(),
        (None, false) => Engine::new(graph, machine, placement, false).run::<false>(),
    }
}

/// Mutable state of one engine run. Only [`Engine::run`] drives it; the
/// methods are the event handlers.
struct Engine<'a> {
    graph: &'a OpGraph,
    machine: &'a Machine,
    placement: &'a Placement,
    nd: usize,
    /// Undelivered input count per op.
    in_remaining: Vec<u32>,
    /// Latest data-arrival time at each op, over all incoming edges.
    arrival: Vec<f64>,
    dev_free: Vec<f64>,
    /// Directed link availability, dense (num_devices is tiny).
    link_free: Vec<f64>,
    device_busy: Vec<f64>,
    /// Per-device queues of ready-but-not-started ops, keyed (ready, op index).
    ready: Vec<BinaryHeap<Reverse<u128>>>,
    /// Bitset of devices whose ready queue or idleness changed since the
    /// last dispatch (word `d >> 6`, bit `d & 63`; `DeviceId` is a `u8`, so
    /// four words cover every possible device).
    /// Number of `u64` words of `dirty`/`occupied` actually in use
    /// (`ceil(nd / 64)`); scans slice to this to skip dead words.
    nwords: usize,
    dirty: [u64; 4],
    /// Bitset of devices with an outstanding finish event.
    occupied: [u64; 4],
    /// Outstanding compute-finish events, one slot per device (a device runs
    /// one op at a time): `(finish_time, op)`, live iff the device's
    /// `occupied` bit is set.
    running: Vec<(f64, u32)>,
    running_count: usize,
    /// Outstanding transfer-arrival events, keyed (time, producer, dst).
    arrivals: BinaryHeap<Reverse<u128>>,
    /// Destination-device stamp of the producer whose fan-out last shipped
    /// there, for the one-shipment-per-destination dedup (each producer
    /// finishes exactly once, so stamps never need resetting).
    shipped: Vec<u32>,
    /// Ops dispatched so far (equals `ops.len()` when recording).
    scheduled: u32,
    ops: Vec<OpSlot>,
    transfers: Vec<TransferSlot>,
    comm_time: f64,
    transfers_deduped: u64,
    peak_queue_depth: usize,
    makespan: f64,
}

impl<'a> Engine<'a> {
    fn new(
        graph: &'a OpGraph,
        machine: &'a Machine,
        placement: &'a Placement,
        record_ops: bool,
    ) -> Self {
        // The zero-exec inline fan-out in `dispatch` relies on transfers
        // taking strictly positive time (DMA-style links always pay latency).
        debug_assert!(machine.transfer_latency > 0.0, "links must have positive latency");
        let n = graph.len();
        let nd = machine.num_devices();
        let in_remaining: Vec<u32> =
            (0..n).map(|i| graph.preds(OpId(i as u32)).len() as u32).collect();
        let mut eng = Engine {
            graph,
            machine,
            placement,
            nd,
            nwords: nd.div_ceil(64),
            in_remaining,
            arrival: vec![0.0; n],
            dev_free: vec![0.0; nd],
            link_free: vec![0.0; nd * nd],
            device_busy: vec![0.0; nd],
            ready: (0..nd).map(|_| BinaryHeap::new()).collect(),
            dirty: [0; 4],
            occupied: [0; 4],
            running: vec![(0.0, 0); nd],
            running_count: 0,
            arrivals: BinaryHeap::new(),
            shipped: vec![u32::MAX; nd],
            scheduled: 0,
            ops: Vec::with_capacity(if record_ops { n } else { 0 }),
            transfers: Vec::new(),
            comm_time: 0.0,
            transfers_deduped: 0,
            peak_queue_depth: 0,
            makespan: 0.0,
        };
        for i in 0..n {
            if eng.in_remaining[i] == 0 {
                let d = placement.device(OpId(i as u32)).index();
                eng.ready[d].push(Reverse(ready_key(0.0, i as u32)));
                eng.dirty[d >> 6] |= 1 << (d & 63);
            }
        }
        eng
    }

    fn run<const RECORD: bool>(mut self) -> Schedule {
        self.dispatch::<RECORD>(0.0);
        loop {
            // One scan of the (tiny) finish-slot array finds the logical
            // queue's head time, the earliest-finishing op under the
            // (time, op index) order, and whether the timestamp is contested.
            let mut now = f64::INFINITY;
            let mut fin_d = 0usize;
            let mut fin_op = u32::MAX;
            let mut fin_ties = 0u32;
            for (w, &word) in self.occupied[..self.nwords].iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let d = (w << 6) | bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let (t, op) = self.running[d];
                    if t < now {
                        now = t;
                        fin_d = d;
                        fin_op = op;
                        fin_ties = 1;
                    } else if t == now {
                        fin_ties += 1;
                        if op < fin_op {
                            fin_d = d;
                            fin_op = op;
                        }
                    }
                }
            }
            let arrivals_due = match self.arrivals.peek() {
                Some(&Reverse(k)) => {
                    let at = key_time(k, 40);
                    if at < now {
                        now = at;
                        fin_ties = 0;
                    }
                    at <= now
                }
                None => false,
            };
            if !now.is_finite() {
                break;
            }
            // Drain every event at this exact timestamp before dispatching:
            // an op started at time t must observe all state transitions at t.
            if fin_ties == 1 && !arrivals_due {
                // The overwhelmingly common case: one uncontested finish. Its
                // fan-out delivers to this device only (remote consumers go
                // through transfers), so the follow-up dispatch is known to
                // concern `fin_d` alone and no other dispatch can be pending.
                self.occupied[fin_d >> 6] &= !(1 << (fin_d & 63));
                self.running_count -= 1;
                self.fanout(OpId(fin_op), now);
                self.dirty[fin_d >> 6] &= !(1 << (fin_d & 63));
                self.dispatch_device::<RECORD>(fin_d, now, false);
                continue;
            } else {
                // Contested timestamp. Finishes first, ascending op index …
                loop {
                    let mut best: Option<(u32, usize)> = None;
                    for (w, &word) in self.occupied[..self.nwords].iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let d = (w << 6) | bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let (t, op) = self.running[d];
                            if t == now && best.is_none_or(|(bop, _)| op < bop) {
                                best = Some((op, d));
                            }
                        }
                    }
                    let Some((op, d)) = best else { break };
                    self.occupied[d >> 6] &= !(1 << (d & 63));
                    self.running_count -= 1;
                    self.dirty[d >> 6] |= 1 << (d & 63);
                    self.fanout(OpId(op), now);
                }
                // … then arrivals, ascending (producer, destination).
                while let Some(&Reverse(k)) = self.arrivals.peek() {
                    if key_time(k, 40) != now {
                        break;
                    }
                    self.arrivals.pop();
                    let producer = OpId(((k >> 8) & u128::from(u32::MAX)) as u32);
                    self.arrive(producer, DeviceId(k as u8), now);
                }
            }
            self.dispatch::<RECORD>(now);
        }
        assert_eq!(
            self.scheduled as usize,
            self.graph.len(),
            "all ops schedule once (graph is a DAG)"
        );
        // Every op contributes exactly one finish event and every booked
        // transfer exactly one arrival event; with the run complete, the
        // drained-event count is fully determined.
        let events_processed = self.scheduled as u64 + self.transfers.len() as u64;
        Schedule {
            step_time: self.makespan,
            ops: self.ops,
            transfers: self.transfers,
            device_busy: self.device_busy,
            comm_time: self.comm_time,
            transfers_deduped: self.transfers_deduped,
            events_processed,
            peak_queue_depth: self.peak_queue_depth,
        }
    }

    /// The single-device projection of [`Engine::run`]: no transfers exist, at
    /// most one finish event is outstanding, and every finish immediately
    /// unblocks the next dispatch, so the loop collapses to "pop the smallest
    /// `(ready, op index)`, run it, deliver its successors at the finish
    /// instant". Times, op order and every counter are bit-identical to the
    /// general path.
    fn run_single_device<const RECORD: bool>(mut self, dev: DeviceId) -> Schedule {
        let d = dev.index();
        let mut free = 0.0f64;
        let mut busy = 0.0f64;
        let mut peak = 0usize;
        while let Some(Reverse(key)) = self.ready[d].pop() {
            let (rt, op) = (key_time(key, 32), key as u32);
            let id = OpId(op);
            let node = self.graph.node(id);
            let exec = self.machine.exec_time(node.kind, node.flops, dev);
            let start = rt.max(free);
            let finish = start + exec;
            free = finish;
            busy += exec;
            self.makespan = self.makespan.max(finish);
            self.scheduled += 1;
            if RECORD {
                self.ops.push(OpSlot { op, device: dev.0, start, finish });
            }
            if exec > 0.0 {
                // The general path observes one outstanding finish event
                // whenever a non-zero op runs (zero-exec finishes are consumed
                // inline there too).
                peak = 1;
            }
            // Every successor is colocated: deliver inline at the finish.
            for &succ in self.graph.succs(id) {
                let s = succ.index();
                self.arrival[s] = self.arrival[s].max(finish);
                self.in_remaining[s] -= 1;
                if self.in_remaining[s] == 0 {
                    self.ready[d].push(Reverse(ready_key(self.arrival[s], succ.0)));
                }
            }
        }
        self.device_busy[d] = busy;
        self.peak_queue_depth = peak;
        assert_eq!(
            self.scheduled as usize,
            self.graph.len(),
            "all ops schedule once (graph is a DAG)"
        );
        // Every op contributes exactly one finish event and every booked
        // transfer exactly one arrival event; with the run complete, the
        // drained-event count is fully determined.
        let events_processed = self.scheduled as u64 + self.transfers.len() as u64;
        Schedule {
            step_time: self.makespan,
            ops: self.ops,
            transfers: self.transfers,
            device_busy: self.device_busy,
            comm_time: self.comm_time,
            transfers_deduped: self.transfers_deduped,
            events_processed,
            peak_queue_depth: self.peak_queue_depth,
        }
    }

    /// Starts every startable op at time `now`: device idle, op ready, smallest
    /// `(ready, op index)` first. A zero-exec op finishes the instant it
    /// starts; its fan-out is processed *inline* so same-device successors
    /// enter this very dispatch's ready queue and compete by `(ready, index)`
    /// immediately — the same visibility the pop-order list scheduler had.
    /// (Cross-device successors always go through a transfer, whose latency is
    /// strictly positive, so they never race a dispatch at `now`.)
    fn dispatch<const RECORD: bool>(&mut self, now: f64) {
        for w in 0..self.nwords {
            while self.dirty[w] != 0 {
                let d = (w << 6) | self.dirty[w].trailing_zeros() as usize;
                self.dirty[w] &= self.dirty[w] - 1;
                let pending = self.dirty[..self.nwords].iter().any(|&word| word != 0);
                self.dispatch_device::<RECORD>(d, now, pending);
            }
        }
    }

    /// Starts every startable op on device `d` at time `now`.
    ///
    /// When the op just started is guaranteed to produce the next event in the
    /// whole system — no other device finishes and no transfer arrives at or
    /// before its finish — the finish is processed inline ("fast-forward")
    /// instead of round-tripping through the outer event loop. Same-device
    /// chains, the dominant shape in real graphs, then drain in one tight loop.
    /// Ties fall back to the outer loop so the `(time, kind, op, dst)` drain
    /// order is untouched; every counter is updated exactly as the outer loop
    /// would have.
    ///
    /// `pending_dispatch` reports whether any *other* device still awaits its
    /// dispatch at this drain timestamp. It is loop-invariant here: within one
    /// `dispatch_device` call only this device's dirty bit can flip (fan-out
    /// delivers same-device only), so the caller computes it once.
    fn dispatch_device<const RECORD: bool>(
        &mut self,
        d: usize,
        mut now: f64,
        pending_dispatch: bool,
    ) {
        {
            while self.dev_free[d] <= now {
                let Some(Reverse(key)) = self.ready[d].pop() else { break };
                let (rt, op) = (key_time(key, 32), key as u32);
                let id = OpId(op);
                let node = self.graph.node(id);
                let exec = self.machine.exec_time(node.kind, node.flops, DeviceId(d as u8));
                let start = rt.max(self.dev_free[d]);
                let finish = start + exec;
                self.dev_free[d] = finish;
                self.device_busy[d] += exec;
                self.makespan = self.makespan.max(finish);
                self.scheduled += 1;
                if RECORD {
                    self.ops.push(OpSlot { op, device: d as u8, start, finish });
                }
                if exec == 0.0 {
                    self.fanout(id, finish);
                    // fanout re-marks this device dirty (same-device
                    // deliveries only — cross-device successors go through a
                    // positive-latency transfer); we are already draining its
                    // queue, so clear the flag again.
                    self.dirty[d >> 6] &= !(1 << (d & 63));
                } else {
                    let mut next_other = f64::INFINITY;
                    for (w, &word) in self.occupied[..self.nwords].iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let d2 = (w << 6) | bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let t = self.running[d2].0;
                            if t < next_other {
                                next_other = t;
                            }
                        }
                    }
                    if let Some(&Reverse(k)) = self.arrivals.peek() {
                        let at = key_time(k, 40);
                        if at < next_other {
                            next_other = at;
                        }
                    }
                    // A still-dirty device has ops that start at the current
                    // drain timestamp but are not yet visible as finish
                    // events; their finishes could precede ours, so the
                    // lookahead is only sound when no dispatch is pending.
                    if !pending_dispatch && finish < next_other {
                        // Fast-forward: this finish is provably the sole next
                        // event. The op is "running" from `start` to `finish`
                        // with nothing else sampling the queue in between, so
                        // one peak sample at start covers the whole interval.
                        self.peak_queue_depth =
                            self.peak_queue_depth.max(self.running_count + 1 + self.arrivals.len());
                        now = finish;
                        self.fanout(id, finish);
                        // fanout re-marks this device dirty (same-device
                        // deliveries only); we keep draining it here.
                        self.dirty[d >> 6] &= !(1 << (d & 63));
                    } else {
                        self.running[d] = (finish, op);
                        self.occupied[d >> 6] |= 1 << (d & 63);
                        self.running_count += 1;
                        self.peak_queue_depth =
                            self.peak_queue_depth.max(self.running_count + self.arrivals.len());
                    }
                }
            }
        }
    }

    /// Processes op `a` finishing at time `t`: delivers same-device consumers
    /// and books one transfer per remote destination device at its causal
    /// start time `max(t, link free)`.
    fn fanout(&mut self, a: OpId, t: f64) {
        let node = self.graph.node(a);
        let dev = self.placement.device(a);
        for &succ in self.graph.succs(a) {
            let sdev = self.placement.device(succ);
            if sdev == dev {
                self.deliver(succ, t);
            } else if self.shipped[sdev.index()] == a.0 {
                // Already bound for that device within this fan-out: the
                // consumer reads the one shipped copy, delivered by the
                // pending arrival event.
                self.transfers_deduped += 1;
            } else {
                self.shipped[sdev.index()] = a.0;
                let link = &mut self.link_free[dev.index() * self.nd + sdev.index()];
                let start = t.max(*link);
                let dur = self.machine.transfer_time(node.out_bytes);
                *link = start + dur;
                self.comm_time += dur;
                self.transfers.push(TransferSlot {
                    producer: a.0,
                    src: dev.0,
                    dst: sdev.0,
                    bytes: node.out_bytes,
                    start,
                    finish: start + dur,
                });
                self.arrivals.push(Reverse(arrival_key(start + dur, a.0, sdev.0)));
                self.peak_queue_depth =
                    self.peak_queue_depth.max(self.running_count + self.arrivals.len());
            }
        }
    }

    /// Processes the arrival of `producer`'s tensor on `dst` at time `t`:
    /// delivers every consumer of `producer` placed there.
    fn arrive(&mut self, producer: OpId, dst: DeviceId, t: f64) {
        for &succ in self.graph.succs(producer) {
            if self.placement.device(succ) == dst {
                self.deliver(succ, t);
            }
        }
    }

    /// Delivers one input to `succ` at time `t`; readiness is discovered in
    /// causal order, so the ready key equals the delivery time of the last
    /// arriving input.
    fn deliver(&mut self, succ: OpId, t: f64) {
        let s = succ.index();
        self.arrival[s] = self.arrival[s].max(t);
        self.in_remaining[s] -= 1;
        if self.in_remaining[s] == 0 {
            let d = self.placement.device(succ).index();
            self.ready[d].push(Reverse(ready_key(self.arrival[s], succ.0)));
            self.dirty[d >> 6] |= 1 << (d & 63);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    fn node(name: &str, flops: f64, out_bytes: u64) -> OpNode {
        OpNode::new(name, OpKind::MatMul, Phase::Forward)
            .with_flops(flops)
            .with_out_bytes(out_bytes)
    }

    #[test]
    fn schedule_is_causally_ordered_per_link() {
        // Three producers on gpu0 shipping to gpu1: bookings must be FIFO in
        // finish order with no overlap.
        let mut g = OpGraph::new("three_senders");
        let mut ids = Vec::new();
        for i in 0..3 {
            ids.push(g.add_node(node(&format!("p{i}"), 1e9, 64 << 20)));
        }
        let sink = g.add_node(node("sink", 0.0, 0));
        for &p in &ids {
            g.add_edge(p, sink);
        }
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[0], gpus[0], gpus[1]]);
        let s = schedule(&g, &m, &p);
        assert_eq!(s.transfers.len(), 3);
        for w in s.transfers.windows(2) {
            assert!(w[1].start >= w[0].start, "starts non-decreasing: {w:?}");
            assert!(w[1].start >= w[0].finish, "no overlap on one link: {w:?}");
            assert!(w[0].start >= 0.0);
        }
        for t in &s.transfers {
            let producer = s.ops.iter().find(|o| o.op == t.producer).unwrap();
            assert!(
                t.start >= producer.finish,
                "transfer cannot start before its producer finishes"
            );
        }
    }

    #[test]
    fn counters_count() {
        let mut g = OpGraph::new("fanout");
        let a = g.add_node(node("a", 1e9, 1024));
        let b = g.add_node(node("b", 1e9, 0));
        let c = g.add_node(node("c", 1e9, 0));
        g.add_edge(a, b);
        g.add_edge(a, c);
        let m = Machine::paper_machine();
        let gpus = m.gpu_ids();
        let p = Placement::new(vec![gpus[0], gpus[1], gpus[1]]);
        let s = schedule(&g, &m, &p);
        // One shipment a->gpu1 reused by both consumers.
        assert_eq!(s.transfers.len(), 1);
        assert_eq!(s.transfers_deduped, 1);
        // 3 finishes + 1 arrival.
        assert_eq!(s.events_processed, 4);
        assert!(s.peak_queue_depth >= 1);
    }

    #[test]
    fn single_device_fast_path_matches_general_engine() {
        // A diamond with a zero-exec join, all on one GPU: the specialized
        // single-device loop must reproduce the general event loop exactly —
        // times, op order, and every counter.
        let mut g = OpGraph::new("diamond");
        let a = g.add_node(node("a", 2e9, 1 << 20));
        let b = g.add_node(node("b", 1e9, 1 << 20));
        let c = g.add_node(node("c", 3e9, 1 << 20));
        let d = g.add_node(OpNode::new("join", OpKind::Reshape, Phase::Forward).with_flops(0.0));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let m = Machine::paper_machine();
        let p = Placement::uniform(4, m.gpu_ids()[0]);
        let fast = schedule(&g, &m, &p);
        let general = Engine::new(&g, &m, &p, true).run::<true>();
        assert_eq!(fast, general);
    }

    #[test]
    fn zero_exec_chains_terminate_and_stack_at_one_time() {
        // A chain of free ops collapses to time 0 without hanging the engine.
        let mut g = OpGraph::new("free_chain");
        let mut prev = None;
        for i in 0..5 {
            let id = g.add_node(
                OpNode::new(format!("f{i}"), OpKind::Reshape, Phase::Forward).with_flops(0.0),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        let mut m = Machine::paper_machine();
        for d in &mut m.devices {
            d.launch_overhead = 0.0;
        }
        let p = Placement::uniform(5, m.gpu_ids()[0]);
        let s = schedule(&g, &m, &p);
        assert_eq!(s.step_time, 0.0);
        assert_eq!(s.ops.len(), 5);
        // Dispatch order respects the dependency chain even at a single time.
        let order: Vec<u32> = s.ops.iter().map(|o| o.op).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
