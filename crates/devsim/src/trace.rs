//! Schedule tracing: per-op start/finish records and Chrome-trace export.
//!
//! `chrome://tracing` (or Perfetto) can load the exported JSON to visualize how a
//! placement executes — which device runs what when, and where transfers serialize —
//! the debugging view one needs when a "good-looking" placement simulates slow.

use eagle_opgraph::{OpGraph, OpId};
use serde::Serialize;

use crate::device::Machine;
use crate::placement::Placement;
use crate::sim::{simulate, SimOutcome};

/// One scheduled op in a simulated step.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduledOp {
    /// The op.
    pub op: u32,
    /// Op name.
    pub name: String,
    /// Device index the op ran on.
    pub device: u8,
    /// Start time in seconds from step begin.
    pub start: f64,
    /// Finish time in seconds.
    pub finish: f64,
}

/// A full step schedule.
#[derive(Debug, Clone, Serialize)]
pub struct StepTrace {
    /// Makespan in seconds.
    pub step_time: f64,
    /// Per-op schedule, in execution order.
    pub ops: Vec<ScheduledOp>,
}

/// Simulates one step and reconstructs the schedule. The reconstruction re-runs the
/// same event-driven list scheduling as [`simulate`], so `step_time` matches it
/// exactly (asserted in tests).
pub fn trace(graph: &OpGraph, machine: &Machine, placement: &Placement) -> Option<StepTrace> {
    // Memory feasibility gate identical to `simulate`.
    let expect = match simulate(graph, machine, placement) {
        SimOutcome::Valid(s) => s.step_time,
        SimOutcome::Oom { .. } => return None,
    };

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct T(f64);
    impl Eq for T {}
    impl PartialOrd for T {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for T {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0)
        }
    }

    let n = graph.len();
    let nd = machine.num_devices();
    let mut in_remaining: Vec<u32> =
        (0..n).map(|i| graph.preds(OpId(i as u32)).len() as u32).collect();
    let mut arrival = vec![0.0f64; n];
    let mut dev_free = vec![0.0f64; nd];
    let mut link_free = vec![0.0f64; nd * nd];
    let mut ready: BinaryHeap<Reverse<(T, u32)>> = BinaryHeap::new();
    for (i, &deps) in in_remaining.iter().enumerate() {
        if deps == 0 {
            ready.push(Reverse((T(0.0), i as u32)));
        }
    }
    let mut ops = Vec::with_capacity(n);
    let mut makespan = 0.0f64;
    // Same per-(producer, destination device) transfer dedup as `simulate`.
    let mut shipped: Vec<(u32, f64)> = vec![(u32::MAX, 0.0); nd];
    while let Some(Reverse((T(rt), idx))) = ready.pop() {
        let id = OpId(idx);
        let node = graph.node(id);
        let dev = placement.device(id);
        let exec = machine.exec_time(node.kind, node.flops, dev);
        let start = rt.max(dev_free[dev.index()]);
        let finish = start + exec;
        dev_free[dev.index()] = finish;
        makespan = makespan.max(finish);
        ops.push(ScheduledOp {
            op: idx,
            name: node.name.clone(),
            device: dev.0,
            start,
            finish,
        });
        for &succ in graph.succs(id) {
            let sdev = placement.device(succ);
            let data_at = if sdev == dev {
                finish
            } else if shipped[sdev.index()].0 == idx {
                shipped[sdev.index()].1
            } else {
                let link = &mut link_free[dev.index() * nd + sdev.index()];
                let t_start = finish.max(*link);
                let t = machine.transfer_time(node.out_bytes);
                *link = t_start + t;
                shipped[sdev.index()] = (idx, t_start + t);
                t_start + t
            };
            let s = succ.index();
            arrival[s] = arrival[s].max(data_at);
            in_remaining[s] -= 1;
            if in_remaining[s] == 0 {
                ready.push(Reverse((T(arrival[s]), succ.0)));
            }
        }
    }
    debug_assert!((makespan - expect).abs() < 1e-12, "trace must match simulate");
    Some(StepTrace { step_time: makespan, ops })
}

impl StepTrace {
    /// Exports the schedule in Chrome trace-event format (load in
    /// `chrome://tracing` or Perfetto). Times are emitted in microseconds.
    pub fn to_chrome_trace(&self, machine: &Machine) -> String {
        use serde_json::Value;
        let obj = |entries: Vec<(&str, Value)>| {
            Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let mut events: Vec<Value> = self
            .ops
            .iter()
            .map(|op| {
                obj(vec![
                    ("name", Value::from(op.name.as_str())),
                    ("cat", Value::from("op")),
                    ("ph", Value::from("X")),
                    ("ts", Value::from(op.start * 1e6)),
                    ("dur", Value::from((op.finish - op.start) * 1e6)),
                    ("pid", Value::U64(0)),
                    ("tid", Value::U64(op.device as u64)),
                ])
            })
            .collect();
        // Thread names = device names.
        events.extend(machine.devices.iter().enumerate().map(|(i, d)| {
            obj(vec![
                ("name", Value::from("thread_name")),
                ("ph", Value::from("M")),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(i as u64)),
                ("args", obj(vec![("name", Value::from(d.name.as_str()))])),
            ])
        }));
        let doc = obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::from("ms")),
        ]);
        serde_json::to_string(&doc).expect("trace serializes")
    }

    /// Per-device busy fraction of the step (utilization summary).
    pub fn utilization(&self, num_devices: usize) -> Vec<f64> {
        let mut busy = vec![0.0f64; num_devices];
        for op in &self.ops {
            busy[op.device as usize] += op.finish - op.start;
        }
        busy.iter().map(|b| b / self.step_time.max(f64::MIN_POSITIVE)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::predefined;

    #[test]
    fn trace_matches_simulate_on_benchmarks() {
        let machine = Machine::paper_machine();
        for b in Benchmark::ALL {
            let graph = b.graph_for(&machine);
            let placement = match b {
                Benchmark::InceptionV3 => predefined::single_gpu(&graph, &machine),
                Benchmark::Gnmt => predefined::human_expert(&graph, &machine).unwrap(),
                Benchmark::BertBase => predefined::bert_layer_split(&graph, &machine),
            };
            let t = trace(&graph, &machine, &placement).expect("valid placement");
            let s = simulate(&graph, &machine, &placement).step_time().unwrap();
            assert!((t.step_time - s).abs() < 1e-12, "{}: {} vs {}", b.name(), t.step_time, s);
            assert_eq!(t.ops.len(), graph.len(), "every op scheduled once");
        }
    }

    #[test]
    fn schedule_is_consistent() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let placement = predefined::single_gpu(&graph, &machine);
        let t = trace(&graph, &machine, &placement).unwrap();
        // No device runs two ops at once.
        let mut by_dev: std::collections::HashMap<u8, Vec<(f64, f64)>> = Default::default();
        for op in &t.ops {
            assert!(op.finish >= op.start);
            by_dev.entry(op.device).or_default().push((op.start, op.finish));
        }
        for intervals in by_dev.values_mut() {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "overlap: {w:?}");
            }
        }
    }

    #[test]
    fn oom_placement_has_no_trace() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::Gnmt.graph_for(&machine);
        let p = predefined::single_gpu(&graph, &machine);
        assert!(trace(&graph, &machine, &p).is_none());
    }

    #[test]
    fn chrome_trace_is_json_with_device_names() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let placement = predefined::single_gpu(&graph, &machine);
        let t = trace(&graph, &machine, &placement).unwrap();
        let json = t.to_chrome_trace(&machine);
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events.len() >= graph.len());
        assert!(json.contains("/gpu:0"));
        let util = t.utilization(machine.num_devices());
        assert!(util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
        // Single-GPU placement: gpu:0 dominates.
        assert!(util[1] > 0.5, "utilization {util:?}");
    }
}
