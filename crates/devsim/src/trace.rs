//! Schedule tracing: per-op start/finish records, booked link transfers, and
//! Chrome-trace export.
//!
//! `chrome://tracing` (or Perfetto) can load the exported JSON to visualize how a
//! placement executes — which device runs what when, and where transfers serialize —
//! the debugging view one needs when a "good-looking" placement simulates slow.
//!
//! The schedule itself comes from [`crate::engine`], the same causal
//! discrete-event core [`crate::simulate`] projects its step time from, so the
//! two views agree by construction (they used to be duplicated loops that had
//! to be patched in lockstep).

use eagle_opgraph::{OpGraph, OpId};
use serde::Serialize;

use crate::device::Machine;
use crate::engine;
use crate::placement::Placement;
use crate::sim::check_memory;

pub use crate::engine::TransferSlot;

/// One scheduled op in a simulated step.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduledOp {
    /// The op.
    pub op: u32,
    /// Op name.
    pub name: String,
    /// Device index the op ran on.
    pub device: u8,
    /// Start time in seconds from step begin.
    pub start: f64,
    /// Finish time in seconds.
    pub finish: f64,
}

/// A full step schedule.
#[derive(Debug, Clone, Serialize)]
pub struct StepTrace {
    /// Makespan in seconds.
    pub step_time: f64,
    /// Per-op schedule, in execution order.
    pub ops: Vec<ScheduledOp>,
    /// Booked cross-device transfers, in causal booking order (per link:
    /// non-overlapping, non-decreasing start times).
    pub transfers: Vec<TransferSlot>,
}

/// Simulates one step and exposes the full schedule. Runs the same
/// [`crate::engine`] as [`crate::simulate`], so `step_time` matches it exactly.
/// Returns `None` when the placement OOMs (same gate as `simulate`).
pub fn trace(graph: &OpGraph, machine: &Machine, placement: &Placement) -> Option<StepTrace> {
    if check_memory(graph, machine, placement).is_err() {
        return None;
    }
    let sched = engine::schedule(graph, machine, placement);
    let ops = sched
        .ops
        .iter()
        .map(|s| ScheduledOp {
            op: s.op,
            name: graph.node(OpId(s.op)).name.clone(),
            device: s.device,
            start: s.start,
            finish: s.finish,
        })
        .collect();
    Some(StepTrace { step_time: sched.step_time, ops, transfers: sched.transfers })
}

impl StepTrace {
    /// Exports the schedule in Chrome trace-event format (load in
    /// `chrome://tracing` or Perfetto). Times are emitted in microseconds.
    /// Devices render as threads `0..num_devices`; each directed link with
    /// booked transfers renders as its own thread after the devices.
    pub fn to_chrome_trace(&self, machine: &Machine) -> String {
        use serde_json::Value;
        let obj = |entries: Vec<(&str, Value)>| {
            Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let nd = machine.num_devices() as u64;
        let link_tid = |src: u8, dst: u8| nd + (src as u64) * nd + dst as u64;
        let mut events: Vec<Value> = self
            .ops
            .iter()
            .map(|op| {
                obj(vec![
                    ("name", Value::from(op.name.as_str())),
                    ("cat", Value::from("op")),
                    ("ph", Value::from("X")),
                    ("ts", Value::from(op.start * 1e6)),
                    ("dur", Value::from((op.finish - op.start) * 1e6)),
                    ("pid", Value::U64(0)),
                    ("tid", Value::U64(op.device as u64)),
                ])
            })
            .collect();
        events.extend(self.transfers.iter().map(|t| {
            obj(vec![
                ("name", Value::from(format!("xfer op{} ({} B)", t.producer, t.bytes))),
                ("cat", Value::from("transfer")),
                ("ph", Value::from("X")),
                ("ts", Value::from(t.start * 1e6)),
                ("dur", Value::from((t.finish - t.start) * 1e6)),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(link_tid(t.src, t.dst))),
            ])
        }));
        // Thread names = device names, then one lane per used link.
        events.extend(machine.devices.iter().enumerate().map(|(i, d)| {
            obj(vec![
                ("name", Value::from("thread_name")),
                ("ph", Value::from("M")),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(i as u64)),
                ("args", obj(vec![("name", Value::from(d.name.as_str()))])),
            ])
        }));
        let mut named_links: Vec<(u8, u8)> =
            self.transfers.iter().map(|t| (t.src, t.dst)).collect();
        named_links.sort_unstable();
        named_links.dedup();
        events.extend(named_links.into_iter().map(|(src, dst)| {
            let name = format!(
                "{}\u{2192}{}",
                machine.devices[src as usize].name, machine.devices[dst as usize].name
            );
            obj(vec![
                ("name", Value::from("thread_name")),
                ("ph", Value::from("M")),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(link_tid(src, dst))),
                ("args", obj(vec![("name", Value::from(name))])),
            ])
        }));
        let doc = obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::from("ms")),
        ]);
        serde_json::to_string(&doc).expect("trace serializes")
    }

    /// Per-device busy fraction of the step (utilization summary).
    pub fn utilization(&self, num_devices: usize) -> Vec<f64> {
        let mut busy = vec![0.0f64; num_devices];
        for op in &self.ops {
            busy[op.device as usize] += op.finish - op.start;
        }
        busy.iter().map(|b| b / self.step_time.max(f64::MIN_POSITIVE)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::predefined;
    use crate::sim::simulate;

    #[test]
    fn trace_matches_simulate_on_benchmarks() {
        let machine = Machine::paper_machine();
        for b in Benchmark::ALL {
            let graph = b.graph_for(&machine);
            let placement = match b {
                Benchmark::InceptionV3 => predefined::single_gpu(&graph, &machine),
                Benchmark::Gnmt => predefined::human_expert(&graph, &machine).unwrap(),
                Benchmark::BertBase => predefined::bert_layer_split(&graph, &machine),
            };
            let t = trace(&graph, &machine, &placement).expect("valid placement");
            let s = simulate(&graph, &machine, &placement).step_time().unwrap();
            assert_eq!(t.step_time, s, "{}: shared engine matches exactly", b.name());
            assert_eq!(t.ops.len(), graph.len(), "every op scheduled once");
        }
    }

    #[test]
    fn schedule_is_consistent() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let placement = predefined::single_gpu(&graph, &machine);
        let t = trace(&graph, &machine, &placement).unwrap();
        // No device runs two ops at once.
        let mut by_dev: std::collections::HashMap<u8, Vec<(f64, f64)>> = Default::default();
        for op in &t.ops {
            assert!(op.finish >= op.start);
            by_dev.entry(op.device).or_default().push((op.start, op.finish));
        }
        for intervals in by_dev.values_mut() {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "overlap: {w:?}");
            }
        }
    }

    #[test]
    fn transfers_are_causal_on_benchmarks() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::Gnmt.graph_for(&machine);
        let placement = predefined::human_expert(&graph, &machine).unwrap();
        let t = trace(&graph, &machine, &placement).unwrap();
        assert!(!t.transfers.is_empty(), "expert GNMT placement crosses devices");
        let finish_of: std::collections::HashMap<u32, f64> =
            t.ops.iter().map(|o| (o.op, o.finish)).collect();
        let mut by_link: std::collections::HashMap<(u8, u8), Vec<&TransferSlot>> =
            Default::default();
        for tr in &t.transfers {
            assert!(
                tr.start >= finish_of[&tr.producer],
                "transfer starts before its producer finishes: {tr:?}"
            );
            by_link.entry((tr.src, tr.dst)).or_default().push(tr);
        }
        // Booking order per link is FIFO: non-decreasing starts, no overlap.
        for slots in by_link.values() {
            for w in slots.windows(2) {
                assert!(w[1].start >= w[0].start);
                assert!(w[1].start >= w[0].finish);
            }
        }
    }

    #[test]
    fn oom_placement_has_no_trace() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::Gnmt.graph_for(&machine);
        let p = predefined::single_gpu(&graph, &machine);
        assert!(trace(&graph, &machine, &p).is_none());
    }

    #[test]
    fn chrome_trace_is_json_with_device_names() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let placement = predefined::single_gpu(&graph, &machine);
        let t = trace(&graph, &machine, &placement).unwrap();
        let json = t.to_chrome_trace(&machine);
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events.len() >= graph.len());
        assert!(json.contains("/gpu:0"));
        let util = t.utilization(machine.num_devices());
        assert!(util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
        // Single-GPU placement: gpu:0 dominates.
        assert!(util[1] > 0.5, "utilization {util:?}");
    }

    #[test]
    fn chrome_trace_renders_transfer_lanes() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::BertBase.graph_for(&machine);
        let placement = predefined::bert_layer_split(&graph, &machine);
        let t = trace(&graph, &machine, &placement).unwrap();
        assert!(!t.transfers.is_empty());
        let json = t.to_chrome_trace(&machine);
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc["traceEvents"].as_array().unwrap();
        let n_xfer = events.iter().filter(|e| e["cat"].as_str() == Some("transfer")).count();
        assert_eq!(n_xfer, t.transfers.len());
        assert!(json.contains('\u{2192}'), "link lanes are named src→dst");
    }
}
