//! Memoization of placement evaluations.
//!
//! Policy-gradient training re-proposes the same device assignment many times as
//! the policy converges, and each proposal costs a full discrete-event
//! simulation. The cache keys on the exact device-assignment bytes and stores
//! the *noiseless* outcome of the pure simulation step — the base step time, or
//! the OOM verdict — so repeated proposals skip the simulator and only re-draw
//! the cheap measurement noise (see `Environment::evaluate`).
//!
//! Eviction is strict FIFO (insertion order), not LRU, on purpose: hits do not
//! reorder entries, so the cache state after a sequence of evaluations is
//! independent of whether they were issued one-by-one or as a batch. That
//! property is what makes `Environment::evaluate_batch` bit-identical to a
//! serial evaluation loop for every worker count.

use std::collections::{HashMap, VecDeque};

use crate::placement::Placement;

/// Cached outcome of the pure (noise-free) simulation of one placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaseEval {
    /// The placement does not fit: some device exceeds its memory capacity.
    Invalid,
    /// The placement runs; noiseless per-step time in seconds.
    Valid {
        /// Simulated makespan of one training step.
        step_time: f64,
    },
}

impl BaseEval {
    /// True when the placement fits in memory.
    pub fn is_valid(&self) -> bool {
        matches!(self, BaseEval::Valid { .. })
    }

    /// The noiseless step time, if valid.
    pub fn step_time(&self) -> Option<f64> {
        match self {
            BaseEval::Valid { step_time } => Some(*step_time),
            BaseEval::Invalid => None,
        }
    }
}

/// Hit/miss/eviction counters of a [`PlacementCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that ran the simulator.
    pub misses: u64,
    /// Entries evicted (FIFO) to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of evaluations answered from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A bounded FIFO map from device assignments to their simulation outcome.
#[derive(Debug, Clone)]
pub struct PlacementCache {
    capacity: usize,
    map: HashMap<Box<[u8]>, BaseEval>,
    order: VecDeque<Box<[u8]>>,
    stats: CacheStats,
}

fn key_of(placement: &Placement) -> Box<[u8]> {
    placement.devices().iter().map(|d| d.0).collect()
}

impl PlacementCache {
    /// Creates a cache holding at most `capacity` placements; 0 disables it.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, map: HashMap::new(), order: VecDeque::new(), stats: CacheStats::default() }
    }

    /// True when the cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of cached placements (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached placements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks a placement up, counting the outcome as a hit or a miss.
    pub fn lookup(&mut self, placement: &Placement) -> Option<BaseEval> {
        if !self.enabled() {
            self.stats.misses += 1;
            return None;
        }
        match self.map.get(key_of(placement).as_ref()) {
            Some(&base) => {
                self.stats.hits += 1;
                Some(base)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Counts a hit that was answered outside the map (in-batch deduplication
    /// against an episode earlier in the same minibatch).
    pub(crate) fn note_duplicate_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// The cached entries in FIFO (insertion) order, as raw device-assignment
    /// bytes plus the memoized outcome — the serializable view a checkpoint
    /// persists so a resumed run replays the same hits, misses and evictions.
    pub fn entries_fifo(&self) -> impl Iterator<Item = (&[u8], BaseEval)> + '_ {
        self.order.iter().map(|key| {
            let base = *self.map.get(key.as_ref()).expect("order and map stay in sync");
            (key.as_ref(), base)
        })
    }

    /// Rebuilds a cache from a persisted snapshot: `entries` in FIFO order
    /// (oldest first) and the lifetime counters.
    ///
    /// # Panics
    /// Panics if more entries are supplied than `capacity` holds — a snapshot
    /// taken by [`PlacementCache::entries_fifo`] can never contain more.
    pub fn restore(
        capacity: usize,
        entries: impl IntoIterator<Item = (Box<[u8]>, BaseEval)>,
        stats: CacheStats,
    ) -> Self {
        let mut map = HashMap::new();
        let mut order = VecDeque::new();
        for (key, base) in entries {
            if map.insert(key.clone(), base).is_none() {
                order.push_back(key);
            }
        }
        assert!(
            map.len() <= capacity,
            "cache snapshot holds {} entries but capacity is {capacity}",
            map.len()
        );
        Self { capacity, map, order, stats }
    }

    /// Stores an outcome, evicting the oldest entry when full. No-op when
    /// disabled or the key is already present. Returns `true` when an entry
    /// was evicted to make room.
    pub fn insert(&mut self, placement: &Placement, base: BaseEval) -> bool {
        if !self.enabled() {
            return false;
        }
        let key = key_of(placement);
        if self.map.contains_key(key.as_ref()) {
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(oldest.as_ref());
                self.stats.evictions += 1;
                evicted = true;
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, base);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;

    fn p(devs: &[u8]) -> Placement {
        Placement::new(devs.iter().map(|&d| DeviceId(d)).collect())
    }

    #[test]
    fn lookup_counts_and_returns() {
        let mut c = PlacementCache::new(8);
        assert_eq!(c.lookup(&p(&[0, 1])), None);
        c.insert(&p(&[0, 1]), BaseEval::Valid { step_time: 2.0 });
        assert_eq!(c.lookup(&p(&[0, 1])), Some(BaseEval::Valid { step_time: 2.0 }));
        assert_eq!(c.lookup(&p(&[1, 0])), None);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 2, evictions: 0 });
        assert!((c.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_is_hit_order_independent() {
        let mut c = PlacementCache::new(2);
        c.insert(&p(&[0]), BaseEval::Invalid);
        c.insert(&p(&[1]), BaseEval::Valid { step_time: 1.0 });
        // A hit on the oldest entry must NOT protect it from eviction.
        assert!(c.lookup(&p(&[0])).is_some());
        assert!(c.insert(&p(&[2]), BaseEval::Valid { step_time: 2.0 }), "full cache evicts");
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup(&p(&[0])), None, "oldest evicted despite recent hit");
        assert!(c.lookup(&p(&[1])).is_some());
        assert!(c.lookup(&p(&[2])).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = PlacementCache::new(0);
        c.insert(&p(&[0]), BaseEval::Invalid);
        assert!(c.is_empty());
        assert_eq!(c.lookup(&p(&[0])), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn entries_roundtrip_preserves_fifo_and_stats() {
        let mut c = PlacementCache::new(3);
        c.insert(&p(&[0]), BaseEval::Invalid);
        c.insert(&p(&[1]), BaseEval::Valid { step_time: 1.5 });
        c.insert(&p(&[2]), BaseEval::Valid { step_time: 2.5 });
        let _ = c.lookup(&p(&[1]));
        let entries: Vec<(Box<[u8]>, BaseEval)> =
            c.entries_fifo().map(|(k, b)| (k.to_vec().into_boxed_slice(), b)).collect();
        let mut r = PlacementCache::restore(3, entries, c.stats());
        assert_eq!(r.len(), 3);
        assert_eq!(r.stats(), c.stats());
        // FIFO order survives: the next insert must evict [0], not [1] or [2].
        assert!(r.insert(&p(&[9]), BaseEval::Invalid));
        assert_eq!(r.lookup(&p(&[0])), None);
        assert_eq!(r.lookup(&p(&[1])), Some(BaseEval::Valid { step_time: 1.5 }));
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut c = PlacementCache::new(4);
        c.insert(&p(&[3, 3]), BaseEval::Invalid);
        c.insert(&p(&[3, 3]), BaseEval::Invalid);
        assert_eq!(c.len(), 1);
    }
}
