//! The `eagle-serve` daemon binary.
//!
//! ```text
//! eagle-serve run     --store DIR [--addr 127.0.0.1:7711] [--coalesce-us N]
//!                     [--sim-workers N] [--metrics-every-s N] [--max-wave N]
//!                     [--queue-capacity N] [--family-quota N]
//! eagle-serve publish --store DIR --family NAME --scale SCALE --checkpoint FILE
//! eagle-serve seed    --store DIR --family NAME [--scale quick] [--seed 1]
//! ```
//!
//! `run` serves placement requests forever (newline-delimited JSON, see
//! `eagle_serve::api`). `publish` installs a training checkpoint into the store
//! — republishing over a served family hot-reloads it without a restart.
//! `seed` publishes an untrained (warm-started) policy for one of the paper
//! benchmarks, so a demo or smoke store works without hours of training.

use std::sync::Arc;

use eagle_obs::Recorder;
use eagle_serve::{publish_checkpoint, publish_state, untrained_state, PolicyStore};

fn usage() -> ! {
    eprintln!(
        "usage:\n  eagle-serve run --store DIR [--addr A] [--coalesce-us N] [--sim-workers N] \
         [--metrics-every-s N] [--max-wave N] [--queue-capacity N] [--family-quota N]\n  \
         eagle-serve publish --store DIR --family NAME --scale SCALE \
         --checkpoint FILE\n  eagle-serve seed --store DIR --family BENCHMARK [--scale quick] \
         [--seed 1]"
    );
    std::process::exit(2);
}

/// Tiny flag parser: every flag takes one value; unknown flags abort.
fn parse_flags(args: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].strip_prefix("--").unwrap_or_else(|| {
            eprintln!("unexpected argument `{}`", args[i]);
            usage()
        });
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag --{flag} needs a value");
            usage()
        };
        out.push((flag.to_string(), value.clone()));
        i += 2;
    }
    out
}

fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(f, _)| f == name).map(|(_, v)| v.as_str())
}

fn require<'a>(flags: &'a [(String, String)], name: &str) -> &'a str {
    get(flags, name).unwrap_or_else(|| {
        eprintln!("missing required flag --{name}");
        usage()
    })
}

fn check_known(flags: &[(String, String)], known: &[&str]) {
    for (f, _) in flags {
        if !known.contains(&f.as_str()) {
            eprintln!("unknown flag --{f}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "run" => run(&flags),
        "publish" => publish(&flags),
        "seed" => seed(&flags),
        _ => usage(),
    }
}

fn run(flags: &[(String, String)]) {
    check_known(
        flags,
        &[
            "store",
            "addr",
            "coalesce-us",
            "sim-workers",
            "metrics-every-s",
            "max-wave",
            "queue-capacity",
            "family-quota",
        ],
    );
    let store_dir = require(flags, "store");
    let addr = get(flags, "addr").unwrap_or("127.0.0.1:7711");
    let mut router = eagle_serve::RouterConfig::default();
    if let Some(us) = get(flags, "coalesce-us") {
        let us: u64 = us.parse().expect("--coalesce-us takes an integer");
        router.coalesce = std::time::Duration::from_micros(us);
    }
    if let Some(w) = get(flags, "sim-workers") {
        router.sim_workers = w.parse().expect("--sim-workers takes an integer");
    }
    if let Some(n) = get(flags, "max-wave") {
        router.max_wave = n.parse().expect("--max-wave takes an integer");
        assert!(router.max_wave > 0, "--max-wave must be positive");
    }
    if let Some(n) = get(flags, "queue-capacity") {
        router.queue_capacity = n.parse().expect("--queue-capacity takes an integer");
        assert!(router.queue_capacity > 0, "--queue-capacity must be positive");
    }
    if let Some(n) = get(flags, "family-quota") {
        router.family_quota = n.parse().expect("--family-quota takes an integer");
    }
    let metrics_every: u64 =
        get(flags, "metrics-every-s").map_or(0, |s| s.parse().expect("--metrics-every-s integer"));

    let recorder = Recorder::new();
    let store = Arc::new(PolicyStore::open(store_dir, recorder.clone()));
    let config = eagle_serve::ServerConfig { addr: addr.to_string(), router };
    let server = match eagle_serve::Server::start(config, store, recorder.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("eagle-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("eagle-serve listening on {}", server.local_addr());

    // The daemon runs until killed; optionally print a metrics line on a cadence.
    let mut last_requests = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(metrics_every.max(1)));
        if metrics_every == 0 {
            continue;
        }
        let requests = recorder.counter_value("serve.requests");
        let rps = (requests - last_requests) as f64 / metrics_every as f64;
        last_requests = requests;
        let (p50, p99) =
            recorder.histogram("serve.latency_us").map_or((0.0, 0.0), |h| (h.p50, h.p99));
        println!(
            "requests={requests} rps={rps:.0} p50_us={p50:.0} p99_us={p99:.0} errors={} \
             waves={} forwards={} reloads={} shed={} depth={:.0}",
            recorder.counter_value("serve.errors"),
            recorder.counter_value("serve.waves"),
            recorder.counter_value("serve.forwards"),
            recorder.counter_value("serve.policy_reloads"),
            recorder.counter_value("serve.shed"),
            recorder.gauge_value("serve.queue_depth").unwrap_or(0.0),
        );
    }
}

fn publish(flags: &[(String, String)]) {
    check_known(flags, &["store", "family", "scale", "checkpoint"]);
    let store = require(flags, "store");
    let family = require(flags, "family");
    let scale = require(flags, "scale");
    let checkpoint = require(flags, "checkpoint");
    match publish_checkpoint(
        std::path::Path::new(store),
        family,
        scale,
        std::path::Path::new(checkpoint),
    ) {
        Ok(version) => println!("published {family} version {version}"),
        Err(e) => {
            eprintln!("eagle-serve publish: {e}");
            std::process::exit(1);
        }
    }
}

fn seed(flags: &[(String, String)]) {
    check_known(flags, &["store", "family", "scale", "seed"]);
    let store = require(flags, "store");
    let family = require(flags, "family");
    let scale_name = get(flags, "scale").unwrap_or("quick");
    let seed: u64 = get(flags, "seed").map_or(1, |s| s.parse().expect("--seed takes an integer"));
    let Some(bench) = eagle_devsim::Benchmark::ALL.iter().find(|b| b.name() == family) else {
        eprintln!(
            "eagle-serve seed: --family must be a paper benchmark ({}); \
             use `publish` for trained checkpoints",
            eagle_devsim::Benchmark::ALL.map(|b| b.name()).join("/")
        );
        std::process::exit(1);
    };
    let Some(scale) = eagle_core::AgentScale::from_name(scale_name) else {
        eprintln!("eagle-serve seed: unknown scale `{scale_name}`");
        std::process::exit(1);
    };
    let machine = eagle_devsim::Machine::paper_machine();
    let graph = bench.graph_for(&machine);
    let result = untrained_state(&graph, &machine, scale, seed)
        .and_then(|state| publish_state(std::path::Path::new(store), family, scale_name, &state));
    match result {
        Ok(version) => println!("seeded {family} ({scale_name}) version {version}"),
        Err(e) => {
            eprintln!("eagle-serve seed: {e}");
            std::process::exit(1);
        }
    }
}
