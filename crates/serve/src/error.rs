//! The unified crate-public error hierarchy.
//!
//! Every fallible surface a service client or operator touches — environment
//! construction, checkpoint decoding, machine validation, placement validation,
//! the wire protocol — folds into one [`EagleError`] enum with `From` impls and
//! stable display strings, replacing the per-crate `Result<_, String>` stragglers
//! the pre-serving API grew. Wire replies carry the typed [`ErrorCode`] projection
//! (see [`crate::api::ApiError`]), so clients can branch on the *kind* of failure
//! without parsing prose.

use eagle_core::CheckpointError;
use eagle_devsim::{EnvError, EnvStateError, MachineError, PlacementError};

use crate::api::{ApiError, ErrorCode};

/// Any failure the EAGLE system can report across its public API.
#[derive(Debug)]
pub enum EagleError {
    /// Environment construction rejected the graph/machine/knob configuration.
    Env(EnvError),
    /// A checkpointed environment state did not restore.
    EnvState(EnvStateError),
    /// A checkpoint file could not be read, verified, or decoded.
    Checkpoint(CheckpointError),
    /// A machine configuration failed builder validation.
    Machine(MachineError),
    /// A placement does not fit its graph/machine pair.
    Placement(PlacementError),
    /// Filesystem or socket error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// A request line was not a valid protocol message.
    Protocol(String),
    /// The request declared a wire schema version this build does not speak.
    SchemaVersion {
        /// Version found in the request.
        found: u64,
        /// Version this build speaks.
        expected: u64,
    },
    /// No policy is published for the requested graph family.
    UnknownFamily(String),
    /// A `graph_key` was not registered on this server.
    UnknownGraphKey(String),
    /// The stored policy's parameter layout does not fit the request's
    /// graph/machine (e.g. trained for a different device count).
    PolicyMismatch(String),
    /// The request was well-formed JSON but semantically invalid.
    BadRequest(String),
    /// Every sampled candidate placement was invalid (OOM) on the machine.
    Infeasible(String),
    /// Admission control shed the request: the router queue (or the family's
    /// quota share of it) is at capacity. Carries a retry hint derived from the
    /// queue depth and recent wave service time.
    Overloaded {
        /// Requests queued ahead at rejection time.
        queued: usize,
        /// The capacity that was hit (queue bound or family quota).
        capacity: usize,
        /// Estimated milliseconds until a retry is likely to be admitted.
        retry_after_ms: u64,
    },
    /// The request's `deadline_ms` budget expired before its wave ran.
    DeadlineExceeded(String),
}

impl std::fmt::Display for EagleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EagleError::Env(e) => write!(f, "environment error: {e}"),
            EagleError::EnvState(e) => write!(f, "environment state error: {e}"),
            EagleError::Checkpoint(e) => write!(f, "{e}"),
            EagleError::Machine(e) => write!(f, "machine error: {e}"),
            EagleError::Placement(e) => write!(f, "placement error: {e}"),
            EagleError::Io(e) => write!(f, "I/O error: {e}"),
            EagleError::Json(e) => write!(f, "{e}"),
            EagleError::Protocol(m) => write!(f, "protocol error: {m}"),
            EagleError::SchemaVersion { found, expected } => {
                write!(f, "unsupported schema version {found}; this server speaks {expected}")
            }
            EagleError::UnknownFamily(name) => write!(f, "no policy published for family {name}"),
            EagleError::UnknownGraphKey(key) => write!(f, "unknown graph key {key}"),
            EagleError::PolicyMismatch(m) => write!(f, "policy mismatch: {m}"),
            EagleError::BadRequest(m) => write!(f, "bad request: {m}"),
            EagleError::Infeasible(m) => write!(f, "infeasible: {m}"),
            EagleError::Overloaded { queued, capacity, retry_after_ms } => write!(
                f,
                "overloaded: {queued} requests queued against capacity {capacity}; \
                 retry in ~{retry_after_ms} ms"
            ),
            EagleError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
        }
    }
}

impl std::error::Error for EagleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EagleError::Env(e) => Some(e),
            EagleError::EnvState(e) => Some(e),
            EagleError::Checkpoint(e) => Some(e),
            EagleError::Machine(e) => Some(e),
            EagleError::Placement(e) => Some(e),
            EagleError::Io(e) => Some(e),
            EagleError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvError> for EagleError {
    fn from(e: EnvError) -> Self {
        EagleError::Env(e)
    }
}

impl From<EnvStateError> for EagleError {
    fn from(e: EnvStateError) -> Self {
        EagleError::EnvState(e)
    }
}

impl From<CheckpointError> for EagleError {
    fn from(e: CheckpointError) -> Self {
        EagleError::Checkpoint(e)
    }
}

impl From<MachineError> for EagleError {
    fn from(e: MachineError) -> Self {
        EagleError::Machine(e)
    }
}

impl From<PlacementError> for EagleError {
    fn from(e: PlacementError) -> Self {
        EagleError::Placement(e)
    }
}

impl From<std::io::Error> for EagleError {
    fn from(e: std::io::Error) -> Self {
        EagleError::Io(e)
    }
}

impl From<serde_json::Error> for EagleError {
    fn from(e: serde_json::Error) -> Self {
        EagleError::Json(e)
    }
}

impl EagleError {
    /// The wire-level error code clients branch on.
    pub fn code(&self) -> ErrorCode {
        match self {
            EagleError::Protocol(_) | EagleError::Json(_) => ErrorCode::Protocol,
            EagleError::SchemaVersion { .. } => ErrorCode::SchemaVersion,
            EagleError::UnknownFamily(_) => ErrorCode::UnknownFamily,
            EagleError::UnknownGraphKey(_) => ErrorCode::UnknownGraphKey,
            EagleError::PolicyMismatch(_) => ErrorCode::PolicyMismatch,
            EagleError::BadRequest(_)
            | EagleError::Placement(_)
            | EagleError::Machine(_)
            | EagleError::Env(_) => ErrorCode::BadRequest,
            EagleError::Infeasible(_) => ErrorCode::Infeasible,
            EagleError::Overloaded { .. } => ErrorCode::Overloaded,
            EagleError::DeadlineExceeded(_) => ErrorCode::DeadlineExceeded,
            EagleError::EnvState(_) | EagleError::Checkpoint(_) | EagleError::Io(_) => {
                ErrorCode::Internal
            }
        }
    }

    /// The typed wire reply for this error. Only `Overloaded` carries the
    /// `retry_after_ms` hint; every other code sends `null`.
    pub fn to_api(&self) -> ApiError {
        let retry_after_ms = match self {
            EagleError::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        };
        ApiError { code: self.code(), message: self.to_string(), retry_after_ms }
    }
}

impl From<EagleError> for ApiError {
    fn from(e: EagleError) -> Self {
        e.to_api()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(
            EagleError::UnknownFamily("gnmt".into()).to_string(),
            "no policy published for family gnmt"
        );
        assert_eq!(
            EagleError::SchemaVersion { found: 9, expected: 1 }.to_string(),
            "unsupported schema version 9; this server speaks 1"
        );
        assert_eq!(
            EagleError::from(EnvError::EmptyGraph).to_string(),
            "environment error: op graph has no nodes"
        );
        assert_eq!(
            EagleError::from(MachineError::NoDevices).to_string(),
            "machine error: machine has no devices"
        );
        assert_eq!(
            EagleError::from(PlacementError::LengthMismatch { placement: 2, graph: 3 }).to_string(),
            "placement error: placement covers 2 ops but graph has 3"
        );
    }

    #[test]
    fn codes_partition_the_variants() {
        assert_eq!(EagleError::Protocol("x".into()).code(), ErrorCode::Protocol);
        assert_eq!(EagleError::Infeasible("x".into()).code(), ErrorCode::Infeasible);
        assert_eq!(EagleError::BadRequest("x".into()).code(), ErrorCode::BadRequest);
        assert_eq!(EagleError::Io(std::io::Error::other("boom")).code(), ErrorCode::Internal);
        let over = EagleError::Overloaded { queued: 8, capacity: 8, retry_after_ms: 5 };
        assert_eq!(over.code(), ErrorCode::Overloaded);
        assert_eq!(EagleError::DeadlineExceeded("x".into()).code(), ErrorCode::DeadlineExceeded);
    }

    #[test]
    fn only_overloaded_carries_the_retry_hint() {
        let over = EagleError::Overloaded { queued: 8, capacity: 8, retry_after_ms: 5 };
        assert_eq!(over.to_api().retry_after_ms, Some(5));
        assert_eq!(
            over.to_string(),
            "overloaded: 8 requests queued against capacity 8; retry in ~5 ms"
        );
        assert_eq!(EagleError::DeadlineExceeded("late".into()).to_api().retry_after_ms, None);
        assert_eq!(EagleError::BadRequest("x".into()).to_api().retry_after_ms, None);
    }
}
