//! The request router: coalesces concurrent placement requests into waves and
//! answers each wave's policy work with batched forwards.
//!
//! Connection threads validate and [`submit`](Router::submit) requests into a
//! shared queue; a single router thread drains the queue into a **wave**,
//! groups the wave by (family, graph, machine), and answers each group with
//! exactly one `sample_batch` and one `decode_batch` forward — the batched-first
//! policy API's contract makes this bit-identical to serving each request
//! alone, because every candidate consumes only its own seeded RNG stream. So
//! at concurrency ≥ 2 the daemon does *less than one* forward per request
//! (`serve.forwards / serve.requests < 1`), which is the whole point of wave
//! batching.
//!
//! Each request contributes `candidates` episodes to its group's batch; the
//! sampled placements are simulated (in parallel across the wave) and the best
//! valid one — minimum predicted step time, ties to the lowest candidate index
//! — is returned with its predicted time and the producing policy version. A
//! request whose every candidate OOMs gets a typed `infeasible` reply.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use eagle_core::{fnv1a64, EagleAgent, PlacementAgent};
use eagle_devsim::{simulate, Machine, Placement};
use eagle_obs::{resolve_workers, Recorder};
use eagle_opgraph::OpGraph;
use eagle_rl::{fork_streams, StochasticPolicy};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::api::{PlaceRequest, PlaceResponse, API_SCHEMA_VERSION};
use crate::error::EagleError;
use crate::store::{PolicyEntry, PolicyStore, GENERALIST_FAMILY};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Extra time the router waits after the first pending request before
    /// cutting a wave, letting concurrent arrivals pile in. Zero disables the
    /// wait (waves still form naturally while a previous wave computes).
    pub coalesce: Duration,
    /// Maximum requests per wave.
    pub max_wave: usize,
    /// Candidate count used when a request sends `candidates: 0`.
    pub default_candidates: u32,
    /// Upper bound on per-request `candidates` (typed error beyond).
    pub max_candidates: u32,
    /// Worker threads for candidate simulation (0 = auto).
    pub sim_workers: usize,
    /// Registered-graph slots kept (FIFO eviction).
    pub graph_capacity: usize,
    /// Built serving agents kept, keyed by (family, version, graph, machine).
    pub agent_capacity: usize,
    /// Upper bound on requests queued awaiting a wave. Admission beyond this
    /// replies with a typed `Overloaded` error (plus a `retry_after_ms` hint)
    /// instead of queueing, so a burst degrades by shedding rather than by
    /// unbounded memory growth and tail latency.
    pub queue_capacity: usize,
    /// Upper bound on queued requests *per policy family*, so one noisy family
    /// cannot starve the others out of the shared queue. `0` disables the
    /// per-family quota (the shared `queue_capacity` still applies).
    pub family_quota: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            coalesce: Duration::from_micros(200),
            max_wave: 64,
            default_candidates: 1,
            max_candidates: 16,
            sim_workers: 0,
            graph_capacity: 256,
            agent_capacity: 32,
            queue_capacity: 256,
            family_quota: 0,
        }
    }
}

/// A validated request waiting for its wave.
struct Pending {
    req: PlaceRequest,
    /// The family resolved at admission: the request's own, or
    /// [`GENERALIST_FAMILY`] when it named none. Quota accounting and wave
    /// grouping both key on this so the per-family counts stay consistent.
    family: String,
    candidates: u32,
    graph: Arc<OpGraph>,
    graph_fp: u64,
    machine: Arc<Machine>,
    machine_fp: u64,
    reply: mpsc::Sender<PlaceResponse>,
    enqueued: Instant,
    /// Absolute expiry computed from the request's `deadline_ms` at admission.
    deadline: Option<Instant>,
}

/// The admission-controlled queue: the pending FIFO plus per-family occupancy
/// counts, kept consistent under one mutex so quota checks are race-free.
#[derive(Default)]
struct Queue {
    pending: VecDeque<Pending>,
    per_family: HashMap<String, usize>,
}

#[derive(Default)]
struct GraphRegistry {
    by_key: HashMap<String, Arc<OpGraph>>,
    order: VecDeque<String>,
}

/// A serving agent rebuilt around a policy's parameters for one
/// (graph, machine) pair; cached because construction walks the whole graph.
struct ServingAgent {
    agent: EagleAgent,
    draws: usize,
}

/// The shared router. Connection threads call [`submit`](Self::submit) /
/// [`register_graph`](Self::register_graph); one thread runs [`run`](Self::run).
pub struct Router {
    queue: Mutex<Queue>,
    cv: Condvar,
    store: Arc<PolicyStore>,
    graphs: Mutex<GraphRegistry>,
    default_machine: (Arc<Machine>, u64),
    cfg: RouterConfig,
    recorder: Recorder,
    stop: AtomicBool,
    /// EWMA of recent wave service time in microseconds, feeding the
    /// `retry_after_ms` hint on `Overloaded` replies.
    wave_us: AtomicU64,
}

fn machine_fingerprint(machine: &Machine) -> u64 {
    let json = serde_json::to_string(machine).expect("machine serializes");
    fnv1a64(json.as_bytes())
}

fn graph_fingerprint(graph: &OpGraph) -> u64 {
    fnv1a64(graph.to_json().as_bytes())
}

/// Re-validates a wire-supplied machine through the builder, yielding the same
/// typed errors local construction would.
fn validated_machine(machine: Machine) -> Result<Machine, EagleError> {
    let mut b = Machine::builder()
        .link_bandwidth(machine.link_bandwidth)
        .transfer_latency(machine.transfer_latency);
    for d in machine.devices {
        b = b.device(d);
    }
    Ok(b.build()?)
}

impl Router {
    /// Builds a router serving policies from `store`.
    pub fn new(store: Arc<PolicyStore>, cfg: RouterConfig, recorder: Recorder) -> Arc<Self> {
        let machine = Machine::paper_machine();
        let fp = machine_fingerprint(&machine);
        Arc::new(Self {
            queue: Mutex::new(Queue::default()),
            cv: Condvar::new(),
            store,
            graphs: Mutex::new(GraphRegistry::default()),
            default_machine: (Arc::new(machine), fp),
            cfg,
            recorder,
            stop: AtomicBool::new(false),
            wave_us: AtomicU64::new(0),
        })
    }

    /// The per-family queue quota actually enforced: `family_quota`, clamped to
    /// the shared bound; `0` means no separate per-family limit.
    fn effective_family_quota(&self) -> usize {
        match self.cfg.family_quota {
            0 => self.cfg.queue_capacity,
            q => q.min(self.cfg.queue_capacity),
        }
    }

    /// Estimates how long a shed client should wait before retrying: the
    /// number of waves queued ahead times the recent per-wave service time
    /// (coalesce window included), floored at 1 ms so clients never spin.
    fn retry_after_hint_ms(&self, queued: usize) -> u64 {
        let wave_us = self.wave_us.load(Ordering::Relaxed);
        let per_wave_us = wave_us + self.cfg.coalesce.as_micros() as u64;
        let waves_ahead = (queued / self.cfg.max_wave.max(1)) as u64 + 1;
        (waves_ahead * per_wave_us / 1000).max(1)
    }

    /// Publishes the shared and per-family queue-depth gauges. Called with the
    /// queue lock held so the gauges never go backwards against each other.
    fn publish_depth_gauges(&self, q: &Queue, family: &str) {
        self.recorder.gauge("serve.queue_depth", q.pending.len() as f64);
        let fam_depth = q.per_family.get(family).copied().unwrap_or(0);
        self.recorder.gauge(format!("serve.queue_depth.{family}"), fam_depth as f64);
    }

    /// The router's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Validates and registers `graph`, returning its content-addressed key.
    /// Registering the same graph twice returns the same key.
    pub fn register_graph(&self, graph: OpGraph) -> Result<String, EagleError> {
        if graph.is_empty() {
            return Err(EagleError::BadRequest("graph has no nodes".into()));
        }
        if !graph.is_acyclic() {
            return Err(EagleError::BadRequest("graph has a cycle".into()));
        }
        let key = format!("{:016x}", graph_fingerprint(&graph));
        let mut reg = self.graphs.lock().expect("graph registry lock");
        if !reg.by_key.contains_key(&key) {
            while reg.order.len() >= self.cfg.graph_capacity {
                if let Some(old) = reg.order.pop_front() {
                    reg.by_key.remove(&old);
                }
            }
            reg.by_key.insert(key.clone(), Arc::new(graph));
            reg.order.push_back(key.clone());
            self.recorder.add("serve.graphs_registered", 1);
        }
        Ok(key)
    }

    /// Validates `req` and enqueues it for the next wave. Returns the channel
    /// the (single) reply arrives on; validation failures are returned
    /// immediately instead of occupying wave capacity.
    pub fn submit(&self, req: PlaceRequest) -> Result<mpsc::Receiver<PlaceResponse>, EagleError> {
        let candidates = match req.candidates {
            0 => self.cfg.default_candidates,
            k if k <= self.cfg.max_candidates => k,
            k => {
                return Err(EagleError::BadRequest(format!(
                    "candidates {k} exceeds the server cap {}",
                    self.cfg.max_candidates
                )))
            }
        };
        let (graph, graph_fp) = match (&req.graph, &req.graph_key) {
            (Some(_), Some(_)) => {
                return Err(EagleError::BadRequest(
                    "set either `graph` or `graph_key`, not both".into(),
                ))
            }
            (None, None) => {
                return Err(EagleError::BadRequest("one of `graph`/`graph_key` required".into()))
            }
            (Some(g), None) => {
                if g.is_empty() {
                    return Err(EagleError::BadRequest("graph has no nodes".into()));
                }
                if !g.is_acyclic() {
                    return Err(EagleError::BadRequest("graph has a cycle".into()));
                }
                (Arc::new(g.clone()), graph_fingerprint(g))
            }
            (None, Some(key)) => {
                let reg = self.graphs.lock().expect("graph registry lock");
                match reg.by_key.get(key) {
                    Some(g) => {
                        let fp = u64::from_str_radix(key, 16)
                            .expect("registered keys are hex fingerprints");
                        (g.clone(), fp)
                    }
                    None => return Err(EagleError::UnknownGraphKey(key.clone())),
                }
            }
        };
        let (machine, machine_fp) = match &req.machine {
            None => (self.default_machine.0.clone(), self.default_machine.1),
            Some(m) => {
                let m = validated_machine(m.clone())?;
                let fp = machine_fingerprint(&m);
                (Arc::new(m), fp)
            }
        };
        let enqueued = Instant::now();
        let deadline = match req.deadline_ms {
            // A zero budget can never survive even an empty queue's coalesce
            // window; shed it at admission rather than let it occupy a slot.
            Some(0) => {
                self.recorder.add("serve.deadline_exceeded", 1);
                self.recorder.add("serve.shed", 1);
                return Err(EagleError::DeadlineExceeded(
                    "deadline_ms 0 expires before any wave can run".into(),
                ));
            }
            Some(ms) => Some(enqueued + Duration::from_millis(ms)),
            None => None,
        };
        let (tx, rx) = mpsc::channel();
        // No family preference means "answer with the generalist policy": the
        // zero-shot path for graphs no dedicated family was trained on.
        let family = req.family.clone().unwrap_or_else(|| GENERALIST_FAMILY.to_string());
        let pending = Pending {
            req,
            family: family.clone(),
            candidates,
            graph,
            graph_fp,
            machine,
            machine_fp,
            reply: tx,
            enqueued,
            deadline,
        };
        {
            // Admission gate: bounded shared queue, then the per-family quota.
            // Both reject with a typed `Overloaded` carrying a retry hint —
            // the request never occupies a slot, so a burst costs O(capacity)
            // memory and admitted requests keep a bounded wait.
            let mut q = self.queue.lock().expect("router queue lock");
            let queued = q.pending.len();
            if queued >= self.cfg.queue_capacity {
                drop(q);
                self.recorder.add("serve.overloaded", 1);
                self.recorder.add("serve.shed", 1);
                return Err(EagleError::Overloaded {
                    queued,
                    capacity: self.cfg.queue_capacity,
                    retry_after_ms: self.retry_after_hint_ms(queued),
                });
            }
            let quota = self.effective_family_quota();
            let fam_queued = q.per_family.get(&family).copied().unwrap_or(0);
            if fam_queued >= quota {
                drop(q);
                self.recorder.add("serve.overloaded", 1);
                self.recorder.add("serve.shed", 1);
                return Err(EagleError::Overloaded {
                    queued: fam_queued,
                    capacity: quota,
                    retry_after_ms: self.retry_after_hint_ms(queued),
                });
            }
            q.pending.push_back(pending);
            *q.per_family.entry(family.clone()).or_insert(0) += 1;
            self.publish_depth_gauges(&q, &family);
        }
        self.cv.notify_one();
        Ok(rx)
    }

    /// Asks the router loop to exit after the current wave.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// The router loop: runs until [`shutdown`](Self::shutdown). Call from a
    /// dedicated thread.
    pub fn run(&self) {
        let sim_workers = resolve_workers(self.cfg.sim_workers);
        let mut agents = AgentCache::new(self.cfg.agent_capacity);
        loop {
            let wave = {
                let mut q = self.queue.lock().expect("router queue lock");
                while q.pending.is_empty() {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let (guard, _) =
                        self.cv.wait_timeout(q, Duration::from_millis(50)).expect("router wait");
                    q = guard;
                }
                // Let concurrent arrivals join the wave — but never delay a
                // wave that is already full: at saturation the coalesce window
                // would only inflate latency without growing the batch.
                if !self.cfg.coalesce.is_zero() && q.pending.len() < self.cfg.max_wave {
                    drop(q);
                    std::thread::sleep(self.cfg.coalesce);
                    q = self.queue.lock().expect("router queue lock");
                }
                // The depth each wave starts from; its max is the bench's
                // bounded-memory witness (<= queue_capacity by admission).
                self.recorder.observe("serve.queue_depth", q.pending.len() as f64);
                let n = q.pending.len().min(self.cfg.max_wave);
                let wave: Vec<Pending> = q.pending.drain(..n).collect();
                for p in &wave {
                    if let Some(count) = q.per_family.get_mut(&p.family) {
                        *count = count.saturating_sub(1);
                        if *count == 0 {
                            q.per_family.remove(&p.family);
                        }
                    }
                }
                for p in &wave {
                    self.publish_depth_gauges(&q, &p.family);
                }
                wave
            };
            if wave.is_empty() {
                continue;
            }
            // Shed admitted requests whose deadline has already passed before
            // spending any policy or simulation work on them.
            let started = Instant::now();
            let wave = self.prune_expired(wave, started);
            if wave.is_empty() {
                continue;
            }
            self.recorder.add("serve.waves", 1);
            self.recorder.observe("serve.wave_size", wave.len() as f64);
            self.process_wave(wave, &mut agents, sim_workers);
            let elapsed_us = started.elapsed().as_micros() as u64;
            let old = self.wave_us.load(Ordering::Relaxed);
            self.wave_us.store((old * 3 + elapsed_us) / 4, Ordering::Relaxed);
        }
    }

    /// Replies `DeadlineExceeded` to every request in `wave` whose deadline is
    /// at or before `now`, returning the still-live remainder.
    fn prune_expired(&self, wave: Vec<Pending>, now: Instant) -> Vec<Pending> {
        let mut live = Vec::with_capacity(wave.len());
        for p in wave {
            match p.deadline {
                Some(d) if d <= now => {
                    self.recorder.add("serve.deadline_exceeded", 1);
                    self.recorder.add("serve.shed", 1);
                    let err = EagleError::DeadlineExceeded(format!(
                        "deadline_ms {} expired while queued ({} ms elapsed)",
                        p.req.deadline_ms.unwrap_or(0),
                        p.enqueued.elapsed().as_millis()
                    ));
                    let resp = PlaceResponse::failure(p.req.id, &err);
                    self.finish(&p, resp);
                }
                _ => live.push(p),
            }
        }
        live
    }

    /// Answers one wave: group by (family, graph, machine), one batched
    /// sample + decode per group, wave-wide parallel simulation.
    fn process_wave(&self, wave: Vec<Pending>, agents: &mut AgentCache, sim_workers: usize) {
        let mut groups: HashMap<(String, u64, u64), Vec<Pending>> = HashMap::new();
        for p in wave {
            groups.entry((p.family.clone(), p.graph_fp, p.machine_fp)).or_default().push(p);
        }
        for ((family, _, _), group) in groups {
            self.process_group(&family, group, agents, sim_workers);
        }
    }

    fn process_group(
        &self,
        family: &str,
        group: Vec<Pending>,
        agents: &mut AgentCache,
        sim_workers: usize,
    ) {
        // Unknown family falls back to the generalist policy when the store
        // publishes one — the multi-graph-trained zero-shot path. The original
        // error is kept if the fallback also misses, so a store with no
        // generalist reports the family the client actually asked for.
        let entry = match self.store.get(family) {
            Ok(e) => e,
            Err(EagleError::UnknownFamily(_)) if family != GENERALIST_FAMILY => {
                match self.store.get(GENERALIST_FAMILY) {
                    Ok(e) => {
                        self.recorder.add("serve.generalist_fallbacks", 1);
                        e
                    }
                    Err(_) => {
                        return self.fail_group(group, &EagleError::UnknownFamily(family.into()))
                    }
                }
            }
            Err(e) => return self.fail_group(group, &e),
        };
        let serving = match agents.get(
            &entry,
            &group[0].graph,
            group[0].graph_fp,
            &group[0].machine,
            group[0].machine_fp,
        ) {
            Ok(a) => a,
            Err(e) => return self.fail_group(group, &e),
        };

        // Per-candidate RNG streams, forked from each request's own seed: the
        // results depend only on the request, never on its wave-mates.
        let mut streams: Vec<ChaCha8Rng> = Vec::new();
        let mut spans = Vec::with_capacity(group.len());
        for p in &group {
            let mut master = ChaCha8Rng::seed_from_u64(p.req.seed);
            let forked = fork_streams(&mut master, serving.draws, p.candidates as usize);
            spans.push((streams.len(), forked.len()));
            streams.extend(forked);
        }
        let mut stream_refs: Vec<&mut dyn rand::RngCore> =
            streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();

        // The two batched forwards for the whole group.
        let sampled = serving.agent.sample_batch(&entry.params, &mut stream_refs);
        self.recorder.add("serve.forwards", 1);
        let actions: Vec<Vec<usize>> = sampled.into_iter().map(|(a, _)| a).collect();
        let placements = serving.agent.decode_batch(&entry.params, &actions);
        self.recorder.add("serve.forwards", 1);

        // Predicted step times for every candidate, simulated across workers.
        let graph = &group[0].graph;
        let machine = &group[0].machine;
        let times = simulate_all(graph, machine, &placements, sim_workers);

        for (p, (start, count)) in group.iter().zip(&spans) {
            let mut best: Option<(f64, usize)> = None;
            for (c, t) in times.iter().enumerate().skip(*start).take(*count) {
                if let Some(t) = *t {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, c));
                    }
                }
            }
            let resp = match best {
                Some((t, c)) => PlaceResponse {
                    schema_version: API_SCHEMA_VERSION,
                    id: p.req.id,
                    placement: Some(placements[c].devices().iter().map(|d| d.0).collect()),
                    predicted_step_time: Some(t),
                    policy_version: Some(entry.version.clone()),
                    error: None,
                },
                None => {
                    self.recorder.add("serve.infeasible", 1);
                    PlaceResponse::failure(
                        p.req.id,
                        &EagleError::Infeasible(format!(
                            "all {count} sampled candidates exceed device memory"
                        )),
                    )
                }
            };
            self.finish(p, resp);
        }
    }

    fn fail_group(&self, group: Vec<Pending>, err: &EagleError) {
        for p in group {
            let resp = PlaceResponse::failure(p.req.id, err);
            self.finish(&p, resp);
        }
    }

    fn finish(&self, p: &Pending, resp: PlaceResponse) {
        self.recorder.add("serve.requests", 1);
        if resp.error.is_some() {
            self.recorder.add("serve.errors", 1);
        }
        self.recorder.observe("serve.latency_us", p.enqueued.elapsed().as_secs_f64() * 1e6);
        // A gone client (disconnected while queued) is not a router error.
        let _ = p.reply.send(resp);
    }
}

/// Simulates every placement, striped across up to `workers` threads.
fn simulate_all(
    graph: &OpGraph,
    machine: &Machine,
    placements: &[Placement],
    workers: usize,
) -> Vec<Option<f64>> {
    let w = workers.min(placements.len()).max(1);
    if w == 1 {
        return placements.iter().map(|p| simulate(graph, machine, p).step_time()).collect();
    }
    let chunk = placements.len().div_ceil(w);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = placements
            .chunks(chunk)
            .map(|ps| {
                s.spawn(move |_| {
                    ps.iter().map(|p| simulate(graph, machine, p).step_time()).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("sim worker")).collect()
    })
    .expect("sim scope")
}

/// FIFO-bounded cache of built serving agents.
struct AgentCache {
    capacity: usize,
    map: HashMap<(String, String, u64, u64), Arc<ServingAgent>>,
    order: VecDeque<(String, String, u64, u64)>,
}

impl AgentCache {
    fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), map: HashMap::new(), order: VecDeque::new() }
    }

    /// The serving agent for (policy entry, graph, machine), built and
    /// layout-validated on first use.
    fn get(
        &mut self,
        entry: &PolicyEntry,
        graph: &OpGraph,
        graph_fp: u64,
        machine: &Machine,
        machine_fp: u64,
    ) -> Result<Arc<ServingAgent>, EagleError> {
        let key = (entry.family.clone(), entry.version.clone(), graph_fp, machine_fp);
        if let Some(a) = self.map.get(&key) {
            return Ok(a.clone());
        }
        let serving = Arc::new(build_serving_agent(entry, graph, machine)?);
        while self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key.clone(), serving.clone());
        self.order.push_back(key);
        Ok(serving)
    }
}

/// Rebuilds the agent architecture around `entry.params` for one
/// (graph, machine) pair and verifies the parameter layouts agree — parameter
/// ids align by construction order, so equal (name, shape) sequences mean the
/// checkpoint's tensors drop in exactly.
fn build_serving_agent(
    entry: &PolicyEntry,
    graph: &OpGraph,
    machine: &Machine,
) -> Result<ServingAgent, EagleError> {
    let mut scratch = Params::new();
    // The constructor RNG only writes initial values that entry.params replace;
    // any seed yields the same layout.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let agent = EagleAgent::new_for_inference(&mut scratch, graph, machine, entry.scale, &mut rng);
    if scratch.len() != entry.params.len() {
        return Err(EagleError::PolicyMismatch(format!(
            "policy `{}` has {} tensors but this graph/machine needs {}",
            entry.family,
            entry.params.len(),
            scratch.len()
        )));
    }
    for id in scratch.ids() {
        let (want_name, want) = (scratch.name(id), scratch.get(id));
        let (have_name, have) = (entry.params.name(id), entry.params.get(id));
        if want_name != have_name || want.rows() != have.rows() || want.cols() != have.cols() {
            return Err(EagleError::PolicyMismatch(format!(
                "policy `{}` tensor {have_name} ({}x{}) does not fit required {want_name} ({}x{}); \
                 was it trained for a different graph size or device count?",
                entry.family,
                have.rows(),
                have.cols(),
                want.rows(),
                want.cols()
            )));
        }
    }
    let draws = agent.rng_draws_per_sample();
    Ok(ServingAgent { agent, draws })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{publish_state, untrained_state};
    use eagle_core::AgentScale;
    use eagle_devsim::Benchmark;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eagle-serve-router-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn serve_setup(name: &str) -> (Arc<Router>, Arc<OpGraph>, Machine, String) {
        let root = tmp(name);
        let machine = Machine::small_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let state = untrained_state(&graph, &machine, AgentScale::tiny(), 5).unwrap();
        publish_state(&root, "fam", "tiny", &state).unwrap();
        let store = Arc::new(PolicyStore::open(&root, Recorder::new()));
        let router = Router::new(store, RouterConfig::default(), Recorder::new());
        (router, Arc::new(graph), machine, "fam".to_string())
    }

    #[test]
    fn submit_validates_before_queueing() {
        let (router, graph, _machine, family) = serve_setup("validate");
        // Neither graph nor key.
        let mut req = PlaceRequest::by_key(1, &family, "0000000000000000");
        req.graph_key = None;
        assert!(matches!(router.submit(req), Err(EagleError::BadRequest(_))));
        // Unknown key.
        let req = PlaceRequest::by_key(2, &family, "ffffffffffffffff");
        assert!(matches!(router.submit(req), Err(EagleError::UnknownGraphKey(_))));
        // Over the candidate cap.
        let mut req = PlaceRequest::inline(3, &family, (*graph).clone());
        req.candidates = 10_000;
        assert!(matches!(router.submit(req), Err(EagleError::BadRequest(_))));
        // Invalid wire machine.
        let mut req = PlaceRequest::inline(4, &family, (*graph).clone());
        let mut m = Machine::small_machine();
        m.transfer_latency = 0.0;
        req.machine = Some(m);
        assert!(matches!(router.submit(req), Err(EagleError::Machine(_))));
    }

    fn serve_setup_with(
        name: &str,
        cfg: RouterConfig,
    ) -> (Arc<Router>, Arc<OpGraph>, Machine, String) {
        let root = tmp(name);
        let machine = Machine::small_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let state = untrained_state(&graph, &machine, AgentScale::tiny(), 5).unwrap();
        publish_state(&root, "fam", "tiny", &state).unwrap();
        let store = Arc::new(PolicyStore::open(&root, Recorder::new()));
        let router = Router::new(store, cfg, Recorder::new());
        (router, Arc::new(graph), machine, "fam".to_string())
    }

    /// Regression: a full wave must not sit out the coalesce window. With a
    /// 2-second window and `max_wave` requests already queued, every reply must
    /// arrive well before the window elapses — the old loop slept
    /// unconditionally and would take >2 s here.
    #[test]
    fn full_wave_skips_the_coalesce_window() {
        let cfg = RouterConfig {
            coalesce: Duration::from_secs(2),
            max_wave: 4,
            ..RouterConfig::default()
        };
        let (router, graph, machine, family) = serve_setup_with("coalesce_skip", cfg);
        let start = Instant::now();
        let rxs: Vec<_> = (0..4)
            .map(|i| {
                let mut req = PlaceRequest::inline(i, &family, (*graph).clone());
                req.machine = Some(machine.clone());
                router.submit(req).expect("admit")
            })
            .collect();
        let r = router.clone();
        let handle = std::thread::spawn(move || r.run());
        for rx in rxs {
            let resp = rx.recv_timeout(Duration::from_secs(10)).expect("reply");
            assert!(resp.error.is_none(), "wave request failed: {:?}", resp.error);
        }
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "full wave waited out the coalesce window ({:?})",
            start.elapsed()
        );
        router.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn admission_sheds_beyond_queue_capacity_with_retry_hint() {
        let cfg = RouterConfig { queue_capacity: 2, ..RouterConfig::default() };
        let (router, graph, _machine, family) = serve_setup_with("overload", cfg);
        // No router thread: the queue only fills.
        for i in 0..2 {
            router.submit(PlaceRequest::inline(i, &family, (*graph).clone())).expect("admit");
        }
        match router.submit(PlaceRequest::inline(9, &family, (*graph).clone())) {
            Err(EagleError::Overloaded { queued, capacity, retry_after_ms }) => {
                assert_eq!(queued, 2);
                assert_eq!(capacity, 2);
                assert!(retry_after_ms >= 1, "hint must be at least 1 ms");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(router.recorder().counter_value("serve.overloaded"), 1);
        assert_eq!(router.recorder().counter_value("serve.shed"), 1);
    }

    #[test]
    fn family_quota_sheds_one_family_without_starving_others() {
        let cfg = RouterConfig { queue_capacity: 8, family_quota: 1, ..RouterConfig::default() };
        let (router, graph, _machine, family) = serve_setup_with("quota", cfg);
        router.submit(PlaceRequest::inline(1, &family, (*graph).clone())).expect("admit");
        // Second request for the same family hits the quota...
        match router.submit(PlaceRequest::inline(2, &family, (*graph).clone())) {
            Err(EagleError::Overloaded { queued, capacity, .. }) => {
                assert_eq!(queued, 1);
                assert_eq!(capacity, 1);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // ...but another family still gets a seat in the shared queue
        // (admission does not require the family's policy to exist).
        router.submit(PlaceRequest::inline(3, "other", (*graph).clone())).expect("admit");
    }

    #[test]
    fn zero_deadline_is_shed_at_admission() {
        let (router, graph, _machine, family) = serve_setup("deadline_zero");
        let req = PlaceRequest::inline(1, &family, (*graph).clone()).with_deadline_ms(0);
        match router.submit(req) {
            Err(EagleError::DeadlineExceeded(_)) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(router.recorder().counter_value("serve.deadline_exceeded"), 1);
        assert_eq!(router.recorder().counter_value("serve.shed"), 1);
    }

    #[test]
    fn expired_deadline_is_shed_at_wave_start() {
        let (router, graph, _machine, family) = serve_setup("deadline_expired");
        let req = PlaceRequest::inline(1, &family, (*graph).clone()).with_deadline_ms(1);
        let rx = router.submit(req).expect("a 1 ms budget is admitted");
        // Let the deadline lapse before the router thread even starts.
        std::thread::sleep(Duration::from_millis(20));
        let r = router.clone();
        let handle = std::thread::spawn(move || r.run());
        let resp = rx.recv_timeout(Duration::from_secs(10)).expect("reply");
        let err = resp.error.expect("expired request must get a typed error");
        assert_eq!(err.code, crate::api::ErrorCode::DeadlineExceeded);
        assert_eq!(err.retry_after_ms, None);
        router.shutdown();
        handle.join().unwrap();
        assert_eq!(router.recorder().counter_value("serve.deadline_exceeded"), 1);
    }

    #[test]
    fn register_graph_is_content_addressed() {
        let (router, graph, _, _) = serve_setup("register");
        let k1 = router.register_graph((*graph).clone()).unwrap();
        let k2 = router.register_graph((*graph).clone()).unwrap();
        assert_eq!(k1, k2);
        assert!(matches!(
            router.register_graph(OpGraph::new("empty")),
            Err(EagleError::BadRequest(_))
        ));
    }
}
