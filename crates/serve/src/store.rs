//! The checkpoint-backed policy store.
//!
//! On disk, a store is a directory with one subdirectory per graph family:
//!
//! ```text
//! store/
//!   inception_v3/
//!     policy.json      — manifest: agent kind + scale (how to rebuild the agent)
//!     checkpoint.json  — a standard trainer checkpoint (same format training writes)
//! ```
//!
//! The checkpoint file is exactly what `--checkpoint-dir` training produces, so
//! "publish" is copy-with-validation and a training run can point its checkpoint
//! dir straight into the store for live updates. [`PolicyStore::get`] hashes the
//! checkpoint contents on every call and transparently **hot-reloads** when the
//! bytes change (training published a newer version): the new parameters are
//! swapped in behind an `Arc`, so requests already holding the old entry finish
//! on the old policy — nothing in flight is dropped. Freshness is *content*
//! identity, not a `(len, mtime)` stamp — a same-size rewrite landing within the
//! filesystem's mtime granularity is exactly what a fast re-publish produces,
//! and a stamp check silently serves the stale policy forever. A failed reload
//! (torn copy, version skew) keeps serving the previous entry and bumps
//! `serve.policy_reload_errors`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use eagle_core::{fnv1a64, load_checkpoint, AgentScale, EagleAgent, TrainerState, CHECKPOINT_FILE};
use eagle_devsim::Machine;
use eagle_obs::Recorder;
use eagle_opgraph::OpGraph;
use eagle_tensor::Params;
use serde::{Deserialize, Serialize};

use crate::error::EagleError;

/// Manifest file name inside a family directory.
pub const MANIFEST_FILE: &str = "policy.json";

/// The family name the server falls back to when a request names an unknown
/// family or none at all: a policy trained on a *distribution* of graphs (the
/// multi-graph generalist trainer) rather than one benchmark. Publishing a
/// policy under this name opts the store into zero-shot answers.
pub const GENERALIST_FAMILY: &str = "generalist";

/// Manifest schema version.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// Per-family manifest: everything needed to rebuild the serving agent around
/// the checkpoint's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyManifest {
    /// Manifest schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Graph family this policy serves.
    pub family: String,
    /// Agent architecture; only `"eagle"` is currently served.
    pub agent: String,
    /// [`AgentScale`] preset name (`"paper"` / `"quick"` / `"tiny"`).
    pub scale: String,
}

/// One loaded policy: trained parameters plus how to rebuild their agent.
#[derive(Debug)]
pub struct PolicyEntry {
    /// Graph family.
    pub family: String,
    /// Agent scale the parameters were trained at.
    pub scale: AgentScale,
    /// Preset name of `scale`.
    pub scale_name: String,
    /// The trained parameters.
    pub params: Params,
    /// Content version: FNV-1a-64 of the checkpoint file bytes, in hex. This is
    /// the `policy_version` echoed in every [`crate::api::PlaceResponse`], and
    /// also the freshness check [`PolicyStore::get`] compares against.
    pub version: String,
}

/// A lazy, hot-reloading view over a store directory.
pub struct PolicyStore {
    root: PathBuf,
    entries: Mutex<HashMap<String, Arc<PolicyEntry>>>,
    recorder: Recorder,
}

impl PolicyStore {
    /// Opens a store rooted at `root`. Families load lazily on first
    /// [`get`](Self::get); the directory need not exist yet.
    pub fn open(root: impl Into<PathBuf>, recorder: Recorder) -> Self {
        Self { root: root.into(), entries: Mutex::new(HashMap::new()), recorder }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn family_dir(&self, family: &str) -> Result<PathBuf, EagleError> {
        // Family keys become path components; refuse separators and dot-files
        // so a wire-supplied family cannot escape the store root.
        if family.is_empty()
            || family.starts_with('.')
            || !family.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(EagleError::BadRequest(format!(
                "family key `{family}` is not a valid store name"
            )));
        }
        Ok(self.root.join(family))
    }

    fn load_entry(&self, family: &str) -> Result<PolicyEntry, EagleError> {
        let dir = self.family_dir(family)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest_bytes = match std::fs::read_to_string(&manifest_path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(EagleError::UnknownFamily(family.to_string()));
            }
            Err(e) => return Err(EagleError::Io(e)),
        };
        let manifest: PolicyManifest = serde_json::from_str(&manifest_bytes)?;
        if manifest.schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(EagleError::PolicyMismatch(format!(
                "manifest schema version {} (this build reads {MANIFEST_SCHEMA_VERSION})",
                manifest.schema_version
            )));
        }
        if manifest.agent != "eagle" {
            return Err(EagleError::PolicyMismatch(format!(
                "agent kind `{}` is not servable (only `eagle`)",
                manifest.agent
            )));
        }
        let scale = AgentScale::from_name(&manifest.scale).ok_or_else(|| {
            EagleError::PolicyMismatch(format!("unknown agent scale `{}`", manifest.scale))
        })?;
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let bytes = std::fs::read(&ckpt_path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                EagleError::UnknownFamily(family.to_string())
            } else {
                EagleError::Io(e)
            }
        })?;
        let version = format!("{:016x}", fnv1a64(&bytes));
        let state = load_checkpoint(&ckpt_path)?;
        Ok(PolicyEntry {
            family: family.to_string(),
            scale,
            scale_name: manifest.scale,
            params: state.params,
            version,
        })
    }

    /// The current policy for `family`, loading it on first use and hot-
    /// reloading when a newer checkpoint file has appeared. Callers keep the
    /// returned `Arc` for the duration of one request/wave; a concurrent reload
    /// swaps the map entry without invalidating it.
    pub fn get(&self, family: &str) -> Result<Arc<PolicyEntry>, EagleError> {
        let mut entries = self.entries.lock().expect("policy store lock");
        if let Some(current) = entries.get(family).cloned() {
            let ckpt_path = self.family_dir(family)?.join(CHECKPOINT_FILE);
            // Freshness is content identity: hash the bytes and compare with
            // the served version. A (len, mtime) stamp misses the same-size
            // rewrite inside one mtime tick that back-to-back publishes hit.
            match std::fs::read(&ckpt_path) {
                Ok(bytes) if format!("{:016x}", fnv1a64(&bytes)) == current.version => {
                    return Ok(current)
                }
                // Changed (or temporarily unreadable): attempt a reload, but
                // never stop serving the version we already have.
                _ => match self.load_entry(family) {
                    Ok(fresh) => {
                        self.recorder.add("serve.policy_reloads", 1);
                        let fresh = Arc::new(fresh);
                        entries.insert(family.to_string(), fresh.clone());
                        return Ok(fresh);
                    }
                    Err(_) => {
                        self.recorder.add("serve.policy_reload_errors", 1);
                        return Ok(current);
                    }
                },
            }
        }
        let entry = Arc::new(self.load_entry(family)?);
        self.recorder.add("serve.policy_loads", 1);
        entries.insert(family.to_string(), entry.clone());
        Ok(entry)
    }
}

/// Publishes `state` into `root/<family>/` as a servable policy, returning the
/// content version. The checkpoint is written in the standard trainer format
/// (atomically), then the manifest — so a reader never observes a manifest
/// pointing at a missing checkpoint on first publish, and re-publishes swap the
/// checkpoint in place under the existing manifest.
pub fn publish_state(
    root: &Path,
    family: &str,
    scale_name: &str,
    state: &TrainerState,
) -> Result<String, EagleError> {
    if AgentScale::from_name(scale_name).is_none() {
        return Err(EagleError::BadRequest(format!("unknown agent scale `{scale_name}`")));
    }
    let dir = root.join(family);
    std::fs::create_dir_all(&dir)?;
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    eagle_core::save_checkpoint(state, &ckpt_path)?;
    let manifest = PolicyManifest {
        schema_version: MANIFEST_SCHEMA_VERSION,
        family: family.to_string(),
        agent: "eagle".to_string(),
        scale: scale_name.to_string(),
    };
    let manifest_json = serde_json::to_string(&manifest)?;
    eagle_obs::write_atomic(dir.join(MANIFEST_FILE), manifest_json.as_bytes())?;
    let bytes = std::fs::read(&ckpt_path)?;
    Ok(format!("{:016x}", fnv1a64(&bytes)))
}

/// Publishes an existing checkpoint file (e.g. from a training run's
/// `--checkpoint-dir`) into the store, validating that it decodes first.
pub fn publish_checkpoint(
    root: &Path,
    family: &str,
    scale_name: &str,
    checkpoint: &Path,
) -> Result<String, EagleError> {
    let state = load_checkpoint(checkpoint)?;
    publish_state(root, family, scale_name, &state)
}

/// Fabricates a servable (untrained but warm-started) policy state for
/// `graph`/`machine` at `scale` — how demo stores and CI smoke stores get a
/// policy without hours of training. The grouper warm start gives balanced
/// groupings, so sampled placements are structured rather than degenerate.
pub fn untrained_state(
    graph: &OpGraph,
    machine: &Machine,
    scale: AgentScale,
    seed: u64,
) -> Result<TrainerState, EagleError> {
    use eagle_devsim::{EnvSnapshot, Environment, MeasureConfig, RngState};
    use rand::SeedableRng;

    let env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::exact())
        .seed(seed)
        .build()?;
    let mut params = Params::new();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let _agent = EagleAgent::new(&mut params, graph, machine, scale, &mut rng);
    Ok(TrainerState {
        samples: 0,
        minibatches: 0,
        num_invalid: 0,
        since_ce: 0,
        rng: RngState::capture(&rng),
        source: eagle_core::SourceState::initial(seed),
        wall: 0.0,
        history_actions: Vec::new(),
        history_rewards: Vec::new(),
        curve: eagle_core::Curve::new("untrained-seed"),
        params,
        opt_reinforce: eagle_tensor::optim::Adam::new(0.01),
        opt_ppo: eagle_tensor::optim::Adam::new(0.01),
        opt_ce: eagle_tensor::optim::Adam::new(0.01),
        entries: vec![eagle_core::GraphEntryState {
            origin: eagle_core::GraphOrigin::fixed(),
            name: graph.model_name.clone(),
            env: env.save_state(),
            baseline: eagle_rl::EmaBaseline::new(0.1),
            best: None,
            graph_samples: 0,
        }],
        retired_snapshot: EnvSnapshot::default(),
        start_snapshot: EnvSnapshot::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_devsim::Benchmark;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("eagle-serve-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publish_then_get_roundtrips_params() {
        let root = tmp("roundtrip");
        let machine = Machine::small_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let state = untrained_state(&graph, &machine, AgentScale::tiny(), 3).unwrap();
        let version = publish_state(&root, "inception_v3", "tiny", &state).unwrap();

        let store = PolicyStore::open(&root, Recorder::new());
        let entry = store.get("inception_v3").unwrap();
        assert_eq!(entry.version, version);
        assert_eq!(entry.scale_name, "tiny");
        assert_eq!(entry.params.len(), state.params.len());
        // Second get is a cache hit (stamp unchanged), same Arc.
        let again = store.get("inception_v3").unwrap();
        assert!(Arc::ptr_eq(&entry, &again));
    }

    #[test]
    fn missing_family_is_typed() {
        let store = PolicyStore::open(tmp("missing"), Recorder::new());
        assert!(matches!(store.get("nope"), Err(EagleError::UnknownFamily(_))));
        // Path-escaping family keys are rejected, not resolved.
        assert!(matches!(store.get("../etc"), Err(EagleError::BadRequest(_))));
        assert!(matches!(store.get(""), Err(EagleError::BadRequest(_))));
    }

    #[test]
    fn hot_reload_swaps_without_invalidating_old_entry() {
        let root = tmp("reload");
        let machine = Machine::small_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let s1 = untrained_state(&graph, &machine, AgentScale::tiny(), 1).unwrap();
        let v1 = publish_state(&root, "fam", "tiny", &s1).unwrap();
        let rec = Recorder::new();
        let store = PolicyStore::open(&root, rec.clone());
        let old = store.get("fam").unwrap();
        assert_eq!(old.version, v1);

        let s2 = untrained_state(&graph, &machine, AgentScale::tiny(), 2).unwrap();
        let v2 = publish_state(&root, "fam", "tiny", &s2).unwrap();
        assert_ne!(v1, v2, "different seeds produce different checkpoint bytes");

        let new = store.get("fam").unwrap();
        assert_eq!(new.version, v2);
        assert_eq!(rec.counter_value("serve.policy_reloads"), 1);
        // The old Arc is still fully usable: in-flight requests finish on it.
        assert_eq!(old.version, v1);
        assert_eq!(old.params.len(), s1.params.len());
    }

    /// Regression: a republish that changes content but keeps the byte length
    /// AND lands within the filesystem's mtime granularity must still reload.
    /// The old `(len, mtime)` stamp check served the stale policy forever in
    /// exactly this case; the test pins the collision by forcing the rewritten
    /// file back to the original mtime.
    #[test]
    fn hot_reload_sees_same_size_same_mtime_rewrite() {
        let root = tmp("stealth_rewrite");
        let machine = Machine::small_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let mut s1 = untrained_state(&graph, &machine, AgentScale::tiny(), 7).unwrap();
        s1.samples = 1;
        let v1 = publish_state(&root, "fam", "tiny", &s1).unwrap();
        let store = PolicyStore::open(&root, Recorder::new());
        assert_eq!(store.get("fam").unwrap().version, v1);

        let ckpt = root.join("fam").join(CHECKPOINT_FILE);
        let before = std::fs::metadata(&ckpt).unwrap();
        let (len, mtime) = (before.len(), before.modified().unwrap());

        // Same seed, different `samples`: different bytes, identical length.
        // (The header checksum is a decimal u64 whose digit count can move the
        // total length by a byte, so probe until a republish lands same-size.)
        let mut v2 = None;
        for samples in 2..=64u64 {
            let mut s2 = untrained_state(&graph, &machine, AgentScale::tiny(), 7).unwrap();
            s2.samples = samples;
            let v = publish_state(&root, "fam", "tiny", &s2).unwrap();
            if std::fs::metadata(&ckpt).unwrap().len() == len {
                v2 = Some(v);
                break;
            }
        }
        let v2 = v2.expect("some samples value republishes at the original length");
        assert_ne!(v1, v2, "content must actually differ");
        // Pin the mtime back so a (len, mtime) stamp cannot tell them apart.
        let f = std::fs::OpenOptions::new().write(true).open(&ckpt).unwrap();
        f.set_modified(mtime).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let fresh = store.get("fam").unwrap();
        assert_eq!(fresh.version, v2, "stale policy served across a stealth rewrite");
        assert_eq!(fresh.params.len(), s1.params.len());
    }
}
