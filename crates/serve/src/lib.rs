//! # eagle-serve
//!
//! Placement-as-a-service: a long-lived daemon that turns the trained EAGLE
//! placer into something clients hit over a socket, behind a versioned public
//! API. See DESIGN.md's "Serving path" section for the architecture argument.
//!
//! * [`api`] — the versioned wire schema (`schema_version: 1`): typed
//!   requests/replies shared by the daemon, the [`Client`], the bench CLI, and
//!   tests.
//! * [`EagleError`] — the unified error hierarchy folding `EnvError`,
//!   `CheckpointError`, `MachineError`, `PlacementError` and the serve-side
//!   failures into one crate-public enum with typed wire projections.
//! * [`PolicyStore`] — checkpoint-backed policies keyed by graph family, with
//!   graceful hot-reload when a newer checkpoint appears on disk.
//! * [`Router`] — coalesces concurrent requests into waves; one batched
//!   `sample_batch` + `decode_batch` pair per wave group (< 1 forward per
//!   request at concurrency ≥ 2). Admission is bounded: beyond
//!   `queue_capacity` (or a family's `family_quota` share) requests are shed
//!   with a typed `overloaded` reply carrying a `retry_after_ms` hint, and a
//!   request whose `deadline_ms` budget expires before its wave runs gets a
//!   typed `deadline_exceeded` instead of stale work. A request naming an
//!   unknown family — or no family at all — is answered zero-shot by the
//!   store's [`GENERALIST_FAMILY`] policy when one is published.
//! * [`Server`] / [`Client`] — the newline-delimited-JSON TCP front end.
//!   [`Client::place_with_retry`] implements the backpressure contract
//!   (sleep the hint, retry `overloaded` only).
//!
//! Telemetry (all through [`eagle_obs::Recorder`]): counters `serve.requests`,
//! `serve.errors`, `serve.infeasible`, `serve.waves`, `serve.forwards`,
//! `serve.graphs_registered`, `serve.policy_loads`, `serve.policy_reloads`,
//! `serve.policy_reload_errors`, `serve.shed`, `serve.overloaded`,
//! `serve.deadline_exceeded`, `serve.generalist_fallbacks`,
//! `serve.handler_panics`; gauges
//! `serve.queue_depth` and per-family `serve.queue_depth.<family>`; histograms
//! `serve.wave_size`, `serve.latency_us`, and `serve.queue_depth` (depth at
//! each wave cut — its max bounds the burst memory; p50/p99 come from
//! [`eagle_obs::HistogramSnapshot`]).

#![warn(missing_docs)]

pub mod api;
mod client;
mod error;
mod router;
mod server;
mod store;

pub use client::Client;
pub use error::EagleError;
pub use router::{Router, RouterConfig};
pub use server::{Server, ServerConfig};
pub use store::{
    publish_checkpoint, publish_state, untrained_state, PolicyEntry, PolicyManifest, PolicyStore,
    GENERALIST_FAMILY, MANIFEST_FILE, MANIFEST_SCHEMA_VERSION,
};
