//! # eagle-serve
//!
//! Placement-as-a-service: a long-lived daemon that turns the trained EAGLE
//! placer into something clients hit over a socket, behind a versioned public
//! API. See DESIGN.md's "Serving path" section for the architecture argument.
//!
//! * [`api`] — the versioned wire schema (`schema_version: 1`): typed
//!   requests/replies shared by the daemon, the [`Client`], the bench CLI, and
//!   tests.
//! * [`EagleError`] — the unified error hierarchy folding `EnvError`,
//!   `CheckpointError`, `MachineError`, `PlacementError` and the serve-side
//!   failures into one crate-public enum with typed wire projections.
//! * [`PolicyStore`] — checkpoint-backed policies keyed by graph family, with
//!   graceful hot-reload when a newer checkpoint appears on disk.
//! * [`Router`] — coalesces concurrent requests into waves; one batched
//!   `sample_batch` + `decode_batch` pair per wave group (< 1 forward per
//!   request at concurrency ≥ 2).
//! * [`Server`] / [`Client`] — the newline-delimited-JSON TCP front end.
//!
//! Telemetry (all through [`eagle_obs::Recorder`]): counters `serve.requests`,
//! `serve.errors`, `serve.infeasible`, `serve.waves`, `serve.forwards`,
//! `serve.graphs_registered`, `serve.policy_loads`, `serve.policy_reloads`,
//! `serve.policy_reload_errors`; gauge `serve.queue_depth`; histograms
//! `serve.wave_size` and `serve.latency_us` (p50/p99 come from
//! [`eagle_obs::HistogramSnapshot`]).

#![warn(missing_docs)]

pub mod api;
mod client;
mod error;
mod router;
mod server;
mod store;

pub use client::Client;
pub use error::EagleError;
pub use router::{Router, RouterConfig};
pub use server::{Server, ServerConfig};
pub use store::{
    publish_checkpoint, publish_state, untrained_state, PolicyEntry, PolicyManifest, PolicyStore,
    MANIFEST_FILE, MANIFEST_SCHEMA_VERSION,
};
