//! A small blocking client over the versioned wire API — the same typed
//! surface the daemon speaks, used by the bench CLI and tests (and a template
//! for clients in other languages: one JSON line out, one JSON line back).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use eagle_opgraph::OpGraph;

use crate::api::{
    self, PlaceRequest, PlaceResponse, RegisterGraphRequest, Request, Response, API_SCHEMA_VERSION,
};
use crate::error::EagleError;

/// A blocking connection to an `eagle-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, EagleError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(stream), writer })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, EagleError> {
        let mut line = api::encode_request(req);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(EagleError::Protocol("server closed the connection".into()));
        }
        api::decode_response(reply.trim_end())
    }

    /// Registers `graph`, returning the key for subsequent
    /// [`PlaceRequest::by_key`] calls.
    pub fn register_graph(&mut self, graph: &OpGraph) -> Result<String, EagleError> {
        let req = Request::RegisterGraph(RegisterGraphRequest {
            schema_version: API_SCHEMA_VERSION,
            id: 0,
            graph: graph.clone(),
        });
        match self.roundtrip(&req)? {
            Response::RegisterGraph(r) => match (r.graph_key, r.error) {
                (Some(key), None) => Ok(key),
                (_, Some(err)) => {
                    Err(EagleError::BadRequest(format!("{:?}: {}", err.code, err.message)))
                }
                (None, None) => {
                    Err(EagleError::Protocol("reply carries neither key nor error".into()))
                }
            },
            Response::Place(_) => {
                Err(EagleError::Protocol("expected register_graph_result".into()))
            }
        }
    }

    /// Sends one placement request and waits for its reply. The reply may
    /// carry a typed `error`; [`PlaceResponse`] is returned either way so
    /// callers can inspect the code.
    pub fn place(&mut self, req: PlaceRequest) -> Result<PlaceResponse, EagleError> {
        match self.roundtrip(&Request::Place(req))? {
            Response::Place(r) => Ok(r),
            Response::RegisterGraph(_) => Err(EagleError::Protocol("expected place_result".into())),
        }
    }

    /// [`place`](Self::place), honoring the server's backpressure contract: an
    /// `overloaded` reply is retried after sleeping the server's
    /// `retry_after_ms` hint (1 ms when the hint is absent), up to `retries`
    /// additional attempts. Every other reply — success or error — returns as
    /// is; in particular `deadline_exceeded` is *not* retried, because the
    /// caller's budget is already spent.
    pub fn place_with_retry(
        &mut self,
        req: PlaceRequest,
        retries: u32,
    ) -> Result<PlaceResponse, EagleError> {
        let mut attempts_left = retries;
        loop {
            let resp = self.place(req.clone())?;
            let hint = match &resp.error {
                Some(err) if err.code == api::ErrorCode::Overloaded && attempts_left > 0 => {
                    err.retry_after_ms.unwrap_or(1).max(1)
                }
                _ => return Ok(resp),
            };
            attempts_left -= 1;
            std::thread::sleep(std::time::Duration::from_millis(hint));
        }
    }
}
