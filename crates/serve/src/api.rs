//! The versioned wire schema: one typed surface shared by the daemon, the
//! client, the bench CLI, and tests — no ad-hoc JSON anywhere.
//!
//! # Protocol
//!
//! Newline-delimited JSON over a TCP socket. Every line is one message: a JSON
//! object whose `type` field selects the payload shape, with the remaining keys
//! being exactly the fields of the corresponding struct below. Every message
//! carries `schema_version` ([`API_SCHEMA_VERSION`], currently 1) and a
//! client-chosen `id` that the server echoes back, so clients can correlate
//! replies. Field sets are pinned by `tests/api_schema.rs`.
//!
//! Request types:
//!
//! * `place` — [`PlaceRequest`]: place a graph (inline or by registered key) on
//!   a machine under a named policy family.
//! * `register_graph` — [`RegisterGraphRequest`]: upload a graph once, get back
//!   a content-addressed `graph_key` for cheap repeated `place` lines.
//!
//! Reply types (`place_result` — [`PlaceResponse`]; `register_graph_result` —
//! [`RegisterGraphResponse`]) carry either a result or a typed [`ApiError`];
//! malformed lines get a `place_result` with `id: 0` and a `protocol` error
//! instead of a dropped connection.

use eagle_devsim::Machine;
use eagle_opgraph::OpGraph;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::error::EagleError;

/// Version of the wire schema this build speaks. Bump whenever any message's
/// field set or meaning changes; servers reject other versions with a typed
/// [`ErrorCode::SchemaVersion`] reply instead of misreading silently.
pub const API_SCHEMA_VERSION: u64 = 1;

/// Machine-readable failure class of a reply; the stable part clients branch on
/// (the `message` is prose and may change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ErrorCode {
    Protocol,
    SchemaVersion,
    BadRequest,
    UnknownFamily,
    UnknownGraphKey,
    PolicyMismatch,
    Infeasible,
    Internal,
}

/// A typed error reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail (not stable; do not parse).
    pub message: String,
}

/// A placement request: place `graph` (or the graph registered under
/// `graph_key`) on `machine` using the policy published for `family`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlaceRequest {
    /// Wire schema version; must equal [`API_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// Policy family key in the server's policy store (e.g. `"inception_v3"`).
    pub family: String,
    /// Inline op graph. Exactly one of `graph` / `graph_key` must be set.
    pub graph: Option<OpGraph>,
    /// Key of a previously registered graph (see [`RegisterGraphRequest`]).
    pub graph_key: Option<String>,
    /// Target machine; `null` means the server's default (the paper machine).
    pub machine: Option<Machine>,
    /// Number of candidate placements to sample (best by predicted step time
    /// wins); `0` means the server default of 1.
    pub candidates: u32,
    /// Seed for the candidate-sampling RNG. Placements are a deterministic
    /// function of (policy version, graph, machine, candidates, seed),
    /// independent of what other requests share the wave.
    pub seed: u64,
}

/// Reply to a [`PlaceRequest`]: either a placement or a typed error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlaceResponse {
    /// Wire schema version of the reply.
    pub schema_version: u64,
    /// Echo of the request id (0 for lines too malformed to carry one).
    pub id: u64,
    /// Device assignment, one device index per op in the graph's id order.
    pub placement: Option<Vec<u8>>,
    /// Predicted per-step time of `placement` from the event engine, seconds.
    pub predicted_step_time: Option<f64>,
    /// Content version (hex) of the checkpoint that produced the placement.
    pub policy_version: Option<String>,
    /// Set iff the request failed; all result fields are `null` then.
    pub error: Option<ApiError>,
}

/// Registers a graph once so subsequent [`PlaceRequest`]s can reference it by
/// key instead of re-uploading (and re-parsing) it per request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterGraphRequest {
    /// Wire schema version; must equal [`API_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// The graph to register.
    pub graph: OpGraph,
}

/// Reply to a [`RegisterGraphRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterGraphResponse {
    /// Wire schema version of the reply.
    pub schema_version: u64,
    /// Echo of the request id.
    pub id: u64,
    /// Content-addressed key of the registered graph (stable across servers:
    /// the FNV-1a-64 hex of the graph's canonical JSON).
    pub graph_key: Option<String>,
    /// Set iff registration failed.
    pub error: Option<ApiError>,
}

/// Any request message.
#[derive(Debug, Clone)]
pub enum Request {
    /// A `place` line.
    Place(PlaceRequest),
    /// A `register_graph` line.
    RegisterGraph(RegisterGraphRequest),
}

/// Any reply message.
#[derive(Debug, Clone)]
pub enum Response {
    /// A `place_result` line.
    Place(PlaceResponse),
    /// A `register_graph_result` line.
    RegisterGraph(RegisterGraphResponse),
}

/// Deserializes a typed payload out of an already-parsed JSON value.
fn from_value<T: Deserialize>(v: &Value) -> Result<T, EagleError> {
    T::from_content(&Serialize::to_content(v)).map_err(|e| EagleError::Protocol(e.0))
}

/// Serializes `payload` with a leading `type` tag into one wire line (no
/// trailing newline).
fn envelope<T: Serialize>(kind: &str, payload: &T) -> String {
    let mut v = serde_json::to_value(payload);
    match &mut v {
        Value::Object(entries) => entries.insert(0, ("type".into(), Value::String(kind.into()))),
        _ => unreachable!("wire payloads are structs"),
    }
    serde_json::to_string(&v).expect("wire value serializes")
}

/// Splits a parsed wire line into its `type` tag and checks `schema_version`.
fn check_line(v: &Value) -> Result<&str, EagleError> {
    let kind = v["type"]
        .as_str()
        .ok_or_else(|| EagleError::Protocol("message has no string `type` field".into()))?;
    let found = v["schema_version"]
        .as_u64()
        .ok_or_else(|| EagleError::Protocol("message has no `schema_version` field".into()))?;
    if found != API_SCHEMA_VERSION {
        return Err(EagleError::SchemaVersion { found, expected: API_SCHEMA_VERSION });
    }
    Ok(kind)
}

/// Encodes a request as one wire line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Place(r) => envelope("place", r),
        Request::RegisterGraph(r) => envelope("register_graph", r),
    }
}

/// Parses one request line.
pub fn decode_request(line: &str) -> Result<Request, EagleError> {
    let v: Value = serde_json::from_str(line)?;
    match check_line(&v)? {
        "place" => Ok(Request::Place(from_value(&v)?)),
        "register_graph" => Ok(Request::RegisterGraph(from_value(&v)?)),
        other => Err(EagleError::Protocol(format!("unknown request type `{other}`"))),
    }
}

/// Encodes a reply as one wire line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Place(r) => envelope("place_result", r),
        Response::RegisterGraph(r) => envelope("register_graph_result", r),
    }
}

/// Parses one reply line.
pub fn decode_response(line: &str) -> Result<Response, EagleError> {
    let v: Value = serde_json::from_str(line)?;
    match check_line(&v)? {
        "place_result" => Ok(Response::Place(from_value(&v)?)),
        "register_graph_result" => Ok(Response::RegisterGraph(from_value(&v)?)),
        other => Err(EagleError::Protocol(format!("unknown response type `{other}`"))),
    }
}

impl PlaceRequest {
    /// A minimal valid request for `family` placing the graph under `graph_key`
    /// on the server's default machine.
    pub fn by_key(id: u64, family: impl Into<String>, graph_key: impl Into<String>) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            family: family.into(),
            graph: None,
            graph_key: Some(graph_key.into()),
            machine: None,
            candidates: 0,
            seed: id,
        }
    }

    /// A minimal valid request inlining `graph`.
    pub fn inline(id: u64, family: impl Into<String>, graph: OpGraph) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            family: family.into(),
            graph: Some(graph),
            graph_key: None,
            machine: None,
            candidates: 0,
            seed: id,
        }
    }
}

impl PlaceResponse {
    /// An error reply echoing `id`.
    pub fn failure(id: u64, err: &EagleError) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            placement: None,
            predicted_step_time: None,
            policy_version: None,
            error: Some(err.to_api()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut g = OpGraph::new("t");
        g.add_node(eagle_opgraph::OpNode::new(
            "op0",
            eagle_opgraph::OpKind::MatMul,
            eagle_opgraph::Phase::Forward,
        ));
        let req = Request::Place(PlaceRequest::inline(7, "fam", g));
        let line = encode_request(&req);
        match decode_request(&line).unwrap() {
            Request::Place(r) => {
                assert_eq!(r.id, 7);
                assert_eq!(r.family, "fam");
                assert_eq!(r.graph.unwrap().len(), 1);
                assert_eq!(r.graph_key, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn bad_lines_are_typed_errors() {
        assert!(matches!(decode_request("not json"), Err(EagleError::Json(_))));
        assert!(matches!(decode_request("{\"x\":1}"), Err(EagleError::Protocol(_))));
        let line = "{\"type\":\"place\",\"schema_version\":99}";
        assert!(matches!(
            decode_request(line),
            Err(EagleError::SchemaVersion { found: 99, expected: 1 })
        ));
        let line = "{\"type\":\"warp\",\"schema_version\":1}";
        assert!(matches!(decode_request(line), Err(EagleError::Protocol(_))));
    }

    #[test]
    fn error_reply_roundtrip() {
        let resp =
            Response::Place(PlaceResponse::failure(3, &EagleError::UnknownFamily("bert".into())));
        let line = encode_response(&resp);
        match decode_response(&line).unwrap() {
            Response::Place(r) => {
                assert_eq!(r.id, 3);
                assert!(r.placement.is_none());
                let err = r.error.unwrap();
                assert_eq!(err.code, ErrorCode::UnknownFamily);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
