//! The versioned wire schema: one typed surface shared by the daemon, the
//! client, the bench CLI, and tests — no ad-hoc JSON anywhere.
//!
//! # Protocol
//!
//! Newline-delimited JSON over a TCP socket. Every line is one message: a JSON
//! object whose `type` field selects the payload shape, with the remaining keys
//! being exactly the fields of the corresponding struct below. Every message
//! carries `schema_version` ([`API_SCHEMA_VERSION`], currently 1) and a
//! client-chosen `id` that the server echoes back, so clients can correlate
//! replies. Field sets are pinned by `tests/api_schema.rs`.
//!
//! Request types:
//!
//! * `place` — [`PlaceRequest`]: place a graph (inline or by registered key) on
//!   a machine under a named policy family.
//! * `register_graph` — [`RegisterGraphRequest`]: upload a graph once, get back
//!   a content-addressed `graph_key` for cheap repeated `place` lines.
//!
//! Reply types (`place_result` — [`PlaceResponse`]; `register_graph_result` —
//! [`RegisterGraphResponse`]) carry either a result or a typed [`ApiError`];
//! malformed lines get a `place_result` with `id: 0` and a `protocol` error
//! instead of a dropped connection.

use eagle_devsim::Machine;
use eagle_opgraph::OpGraph;
use serde::{Content, Deserialize, Serialize};
use serde_json::Value;

use crate::error::EagleError;

/// Version of the wire schema this build speaks. Bump whenever any message's
/// field set or meaning changes; servers reject other versions with a typed
/// [`ErrorCode::SchemaVersion`] reply instead of misreading silently.
pub const API_SCHEMA_VERSION: u64 = 1;

/// Machine-readable failure class of a reply; the stable part clients branch on
/// (the `message` is prose and may change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ErrorCode {
    Protocol,
    SchemaVersion,
    BadRequest,
    UnknownFamily,
    UnknownGraphKey,
    PolicyMismatch,
    Infeasible,
    Overloaded,
    DeadlineExceeded,
    Internal,
}

/// A typed error reply.
///
/// Decoding tolerates a missing `retry_after_ms` (treated as `null`), so
/// replies from pre-admission-control servers still parse — the field is an
/// additive, optional extension of schema v1.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ApiError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail (not stable; do not parse).
    pub message: String,
    /// For [`ErrorCode::Overloaded`] replies: the server's estimate of when
    /// retrying is likely to be admitted, in milliseconds. `null` otherwise.
    pub retry_after_ms: Option<u64>,
}

/// A placement request: place `graph` (or the graph registered under
/// `graph_key`) on `machine` using the policy published for `family`.
///
/// Decoding tolerates a missing `deadline_ms` (treated as `null`), so lines
/// from pre-admission-control clients still parse — the field is an additive,
/// optional extension of schema v1.
#[derive(Debug, Clone, Serialize)]
pub struct PlaceRequest {
    /// Wire schema version; must equal [`API_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// Policy family key in the server's policy store (e.g. `"inception_v3"`).
    /// `null` (or absent) means "no family preference": the server answers with
    /// its generalist policy (the multi-graph-trained fallback family) — the
    /// zero-shot path for graphs no specialist was ever trained on.
    pub family: Option<String>,
    /// Inline op graph. Exactly one of `graph` / `graph_key` must be set.
    pub graph: Option<OpGraph>,
    /// Key of a previously registered graph (see [`RegisterGraphRequest`]).
    pub graph_key: Option<String>,
    /// Target machine; `null` means the server's default (the paper machine).
    pub machine: Option<Machine>,
    /// Number of candidate placements to sample (best by predicted step time
    /// wins); `0` means the server default of 1.
    pub candidates: u32,
    /// Seed for the candidate-sampling RNG. Placements are a deterministic
    /// function of (policy version, graph, machine, candidates, seed),
    /// independent of what other requests share the wave.
    pub seed: u64,
    /// Optional deadline budget in milliseconds, measured from the server's
    /// admission of the request. A request that would expire before its wave
    /// runs is shed with a typed [`ErrorCode::DeadlineExceeded`] reply instead
    /// of being simulated pointlessly; `null` means no deadline.
    pub deadline_ms: Option<u64>,
}

/// Looks up a required struct field during hand-written decoding.
fn field<T: Deserialize>(c: &Content, ty: &str, name: &str) -> Result<T, serde::Error> {
    let v = c
        .get_field(name)
        .ok_or_else(|| serde::Error::msg(format!("missing field `{name}` in {ty}")))?;
    T::from_content(v)
}

/// Looks up an optional struct field: absent and `null` both decode to `None`,
/// keeping additive schema-v1 extensions compatible with older peers.
fn opt_field<T: Deserialize>(c: &Content, name: &str) -> Result<Option<T>, serde::Error> {
    match c.get_field(name) {
        None => Ok(None),
        Some(v) => Option::<T>::from_content(v),
    }
}

// Hand-written (not derived) so the optional `deadline_ms` may be absent: the
// vendored serde derive requires every field to be present on the wire.
impl Deserialize for PlaceRequest {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        if !matches!(c, Content::Map(_)) {
            return Err(serde::Error::msg("expected object for PlaceRequest"));
        }
        Ok(Self {
            schema_version: field(c, "PlaceRequest", "schema_version")?,
            id: field(c, "PlaceRequest", "id")?,
            family: opt_field(c, "family")?,
            graph: opt_field(c, "graph")?,
            graph_key: opt_field(c, "graph_key")?,
            machine: opt_field(c, "machine")?,
            candidates: field(c, "PlaceRequest", "candidates")?,
            seed: field(c, "PlaceRequest", "seed")?,
            deadline_ms: opt_field(c, "deadline_ms")?,
        })
    }
}

// Hand-written for the same reason: `retry_after_ms` may be absent in replies
// from older servers.
impl Deserialize for ApiError {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        if !matches!(c, Content::Map(_)) {
            return Err(serde::Error::msg("expected object for ApiError"));
        }
        Ok(Self {
            code: field(c, "ApiError", "code")?,
            message: field(c, "ApiError", "message")?,
            retry_after_ms: opt_field(c, "retry_after_ms")?,
        })
    }
}

/// Reply to a [`PlaceRequest`]: either a placement or a typed error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlaceResponse {
    /// Wire schema version of the reply.
    pub schema_version: u64,
    /// Echo of the request id (0 for lines too malformed to carry one).
    pub id: u64,
    /// Device assignment, one device index per op in the graph's id order.
    pub placement: Option<Vec<u8>>,
    /// Predicted per-step time of `placement` from the event engine, seconds.
    pub predicted_step_time: Option<f64>,
    /// Content version (hex) of the checkpoint that produced the placement.
    pub policy_version: Option<String>,
    /// Set iff the request failed; all result fields are `null` then.
    pub error: Option<ApiError>,
}

/// Registers a graph once so subsequent [`PlaceRequest`]s can reference it by
/// key instead of re-uploading (and re-parsing) it per request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterGraphRequest {
    /// Wire schema version; must equal [`API_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// The graph to register.
    pub graph: OpGraph,
}

/// Reply to a [`RegisterGraphRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterGraphResponse {
    /// Wire schema version of the reply.
    pub schema_version: u64,
    /// Echo of the request id.
    pub id: u64,
    /// Content-addressed key of the registered graph (stable across servers:
    /// the FNV-1a-64 hex of the graph's canonical JSON).
    pub graph_key: Option<String>,
    /// Set iff registration failed.
    pub error: Option<ApiError>,
}

/// Any request message.
#[derive(Debug, Clone)]
pub enum Request {
    /// A `place` line.
    Place(PlaceRequest),
    /// A `register_graph` line.
    RegisterGraph(RegisterGraphRequest),
}

/// Any reply message.
#[derive(Debug, Clone)]
pub enum Response {
    /// A `place_result` line.
    Place(PlaceResponse),
    /// A `register_graph_result` line.
    RegisterGraph(RegisterGraphResponse),
}

/// Deserializes a typed payload out of an already-parsed JSON value.
fn from_value<T: Deserialize>(v: &Value) -> Result<T, EagleError> {
    T::from_content(&Serialize::to_content(v)).map_err(|e| EagleError::Protocol(e.0))
}

/// Serializes `payload` with a leading `type` tag into one wire line (no
/// trailing newline).
fn envelope<T: Serialize>(kind: &str, payload: &T) -> String {
    let mut v = serde_json::to_value(payload);
    match &mut v {
        Value::Object(entries) => entries.insert(0, ("type".into(), Value::String(kind.into()))),
        _ => unreachable!("wire payloads are structs"),
    }
    serde_json::to_string(&v).expect("wire value serializes")
}

/// Splits a parsed wire line into its `type` tag and checks `schema_version`.
fn check_line(v: &Value) -> Result<&str, EagleError> {
    let kind = v["type"]
        .as_str()
        .ok_or_else(|| EagleError::Protocol("message has no string `type` field".into()))?;
    let found = v["schema_version"]
        .as_u64()
        .ok_or_else(|| EagleError::Protocol("message has no `schema_version` field".into()))?;
    if found != API_SCHEMA_VERSION {
        return Err(EagleError::SchemaVersion { found, expected: API_SCHEMA_VERSION });
    }
    Ok(kind)
}

/// Encodes a request as one wire line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Place(r) => envelope("place", r),
        Request::RegisterGraph(r) => envelope("register_graph", r),
    }
}

/// Parses one request line.
pub fn decode_request(line: &str) -> Result<Request, EagleError> {
    let v: Value = serde_json::from_str(line)?;
    match check_line(&v)? {
        "place" => Ok(Request::Place(from_value(&v)?)),
        "register_graph" => Ok(Request::RegisterGraph(from_value(&v)?)),
        other => Err(EagleError::Protocol(format!("unknown request type `{other}`"))),
    }
}

/// Encodes a reply as one wire line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Place(r) => envelope("place_result", r),
        Response::RegisterGraph(r) => envelope("register_graph_result", r),
    }
}

/// Parses one reply line.
pub fn decode_response(line: &str) -> Result<Response, EagleError> {
    let v: Value = serde_json::from_str(line)?;
    match check_line(&v)? {
        "place_result" => Ok(Response::Place(from_value(&v)?)),
        "register_graph_result" => Ok(Response::RegisterGraph(from_value(&v)?)),
        other => Err(EagleError::Protocol(format!("unknown response type `{other}`"))),
    }
}

impl PlaceRequest {
    /// A minimal valid request for `family` placing the graph under `graph_key`
    /// on the server's default machine.
    pub fn by_key(id: u64, family: impl Into<String>, graph_key: impl Into<String>) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            family: Some(family.into()),
            graph: None,
            graph_key: Some(graph_key.into()),
            machine: None,
            candidates: 0,
            seed: id,
            deadline_ms: None,
        }
    }

    /// A minimal valid request inlining `graph`.
    pub fn inline(id: u64, family: impl Into<String>, graph: OpGraph) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            family: Some(family.into()),
            graph: Some(graph),
            graph_key: None,
            machine: None,
            candidates: 0,
            seed: id,
            deadline_ms: None,
        }
    }

    /// A zero-shot request: place an inline `graph` with no family preference,
    /// answered by the server's generalist policy.
    pub fn zero_shot(id: u64, graph: OpGraph) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            family: None,
            graph: Some(graph),
            graph_key: None,
            machine: None,
            candidates: 0,
            seed: id,
            deadline_ms: None,
        }
    }

    /// Sets the deadline budget (milliseconds from server admission).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }
}

impl PlaceResponse {
    /// An error reply echoing `id`.
    pub fn failure(id: u64, err: &EagleError) -> Self {
        Self {
            schema_version: API_SCHEMA_VERSION,
            id,
            placement: None,
            predicted_step_time: None,
            policy_version: None,
            error: Some(err.to_api()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut g = OpGraph::new("t");
        g.add_node(eagle_opgraph::OpNode::new(
            "op0",
            eagle_opgraph::OpKind::MatMul,
            eagle_opgraph::Phase::Forward,
        ));
        let req = Request::Place(PlaceRequest::inline(7, "fam", g));
        let line = encode_request(&req);
        match decode_request(&line).unwrap() {
            Request::Place(r) => {
                assert_eq!(r.id, 7);
                assert_eq!(r.family.as_deref(), Some("fam"));
                assert_eq!(r.graph.unwrap().len(), 1);
                assert_eq!(r.graph_key, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn bad_lines_are_typed_errors() {
        assert!(matches!(decode_request("not json"), Err(EagleError::Json(_))));
        assert!(matches!(decode_request("{\"x\":1}"), Err(EagleError::Protocol(_))));
        let line = "{\"type\":\"place\",\"schema_version\":99}";
        assert!(matches!(
            decode_request(line),
            Err(EagleError::SchemaVersion { found: 99, expected: 1 })
        ));
        let line = "{\"type\":\"warp\",\"schema_version\":1}";
        assert!(matches!(decode_request(line), Err(EagleError::Protocol(_))));
    }

    #[test]
    fn legacy_lines_without_optional_fields_decode() {
        // A pre-admission-control client line has no `deadline_ms`.
        let line = "{\"type\":\"place\",\"schema_version\":1,\"id\":4,\"family\":\"fam\",\
                    \"graph\":null,\"graph_key\":\"00ff00ff00ff00ff\",\"machine\":null,\
                    \"candidates\":2,\"seed\":9}";
        match decode_request(line).unwrap() {
            Request::Place(r) => {
                assert_eq!(r.id, 4);
                assert_eq!(r.deadline_ms, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A pre-admission-control server's error object has no `retry_after_ms`.
        let line = "{\"type\":\"place_result\",\"schema_version\":1,\"id\":4,\
                    \"placement\":null,\"predicted_step_time\":null,\"policy_version\":null,\
                    \"error\":{\"code\":\"Internal\",\"message\":\"m\"}}";
        match decode_response(line).unwrap() {
            Response::Place(r) => {
                let err = r.error.unwrap();
                assert_eq!(err.code, ErrorCode::Internal);
                assert_eq!(err.retry_after_ms, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn error_reply_roundtrip() {
        let resp =
            Response::Place(PlaceResponse::failure(3, &EagleError::UnknownFamily("bert".into())));
        let line = encode_response(&resp);
        match decode_response(&line).unwrap() {
            Response::Place(r) => {
                assert_eq!(r.id, 3);
                assert!(r.placement.is_none());
                let err = r.error.unwrap();
                assert_eq!(err.code, ErrorCode::UnknownFamily);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
