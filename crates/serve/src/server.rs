//! The TCP front end: newline-delimited JSON connections feeding the router.
//!
//! One listener thread accepts connections; each connection gets a thread that
//! reads request lines, routes them ([`crate::api::decode_request`] →
//! [`Router::submit`] / [`Router::register_graph`]), and writes exactly one
//! reply line per request line, in order. Malformed lines produce a typed error
//! reply (never a dropped connection); the connection closes when the client
//! does. Concurrency across connections is what forms waves — each connection
//! blocks on its own reply, so N clients keep up to N requests in flight.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use eagle_obs::Recorder;

use crate::api::{
    self, PlaceResponse, RegisterGraphResponse, Request, Response, API_SCHEMA_VERSION,
};
use crate::error::EagleError;
use crate::router::{Router, RouterConfig};
use crate::store::PolicyStore;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Router tuning.
    pub router: RouterConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:0".into(), router: RouterConfig::default() }
    }
}

/// A running daemon: listener + router threads, with graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    // Live client sockets, keyed by connection id. Handlers block in `read`
    // until the peer closes, so shutdown half-closes these to unwedge them;
    // each handler removes its own entry on exit.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    listener_thread: Option<JoinHandle<()>>,
    router_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the router and listener threads, and returns immediately.
    pub fn start(
        config: ServerConfig,
        store: Arc<PolicyStore>,
        recorder: Recorder,
    ) -> Result<Server, EagleError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Poll accept so shutdown can stop the loop without a self-connect.
        listener.set_nonblocking(true)?;
        let router = Router::new(store, config.router, recorder);
        let stop = Arc::new(AtomicBool::new(false));

        let router_thread = {
            let router = router.clone();
            std::thread::spawn(move || router.run())
        };
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let listener_thread = {
            let router = router.clone();
            let stop = stop.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                let mut conn_threads = Vec::new();
                let mut next_id: u64 = 0;
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let id = next_id;
                            next_id += 1;
                            if let Ok(clone) = stream.try_clone() {
                                lock_conns(&conns).insert(id, clone);
                            }
                            let router = router.clone();
                            let conns = conns.clone();
                            conn_threads.push(std::thread::spawn(move || {
                                // A panicking handler must not take the daemon
                                // (or the conns map) with it: count it, drop the
                                // connection, keep serving everyone else.
                                let result =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        serve_connection(stream, &router)
                                    }));
                                if result.is_err() {
                                    router.recorder().add("serve.handler_panics", 1);
                                }
                                lock_conns(&conns).remove(&id);
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })
        };
        Ok(Server {
            addr,
            router,
            stop,
            conns,
            listener_thread: Some(listener_thread),
            router_thread: Some(router_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        self.router.recorder()
    }

    /// The router (for in-process submission, e.g. benches).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stops accepting, closes client connections, stops the router, and
    /// joins all threads. Idle connections (blocked in `read`) see EOF;
    /// requests still in flight at shutdown get their connection torn down.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Handlers block in `read` until the peer closes; half-close every
        // live socket so they observe EOF and exit.
        for stream in lock_conns(&self.conns).values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        self.router.shutdown();
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Locks the live-connection map, recovering a poisoned guard: the map holds
/// plain sockets, so a thread that died mid-insert/remove leaves it usable —
/// at worst one stale entry — and shutdown must still be able to half-close
/// every other client instead of panicking the whole daemon.
fn lock_conns(
    conns: &Mutex<HashMap<u64, TcpStream>>,
) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
    conns.lock().unwrap_or_else(|e| e.into_inner())
}

/// One connection: line in, line out, until EOF.
fn serve_connection(stream: TcpStream, router: &Router) {
    // Placement replies are ~one small line; turning Nagle off keeps p99 low.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&line, router);
        let mut out = api::encode_response(&response);
        out.push('\n');
        if writer.write_all(out.as_bytes()).and_then(|()| writer.flush()).is_err() {
            return;
        }
    }
}

/// Routes one request line to one reply, mapping every failure to a typed
/// error reply that echoes the request id when one was parseable.
fn handle_line(line: &str, router: &Router) -> Response {
    // Routed requests are counted inside the router; replies produced here
    // (validation and protocol failures) are counted at this boundary so
    // `serve.errors` covers every error reply the daemon sends.
    let fail = |id: u64, e: &EagleError| {
        router.recorder().add("serve.errors", 1);
        Response::Place(PlaceResponse::failure(id, e))
    };
    match api::decode_request(line) {
        Ok(Request::Place(req)) => {
            let id = req.id;
            match router.submit(req) {
                Ok(rx) => match rx.recv() {
                    Ok(resp) => Response::Place(resp),
                    Err(_) => {
                        fail(id, &EagleError::Protocol("router shut down mid-request".into()))
                    }
                },
                Err(e) => fail(id, &e),
            }
        }
        Ok(Request::RegisterGraph(req)) => {
            let (graph_key, error) = match router.register_graph(req.graph) {
                Ok(key) => (Some(key), None),
                Err(e) => {
                    router.recorder().add("serve.errors", 1);
                    (None, Some(e.to_api()))
                }
            };
            Response::RegisterGraph(RegisterGraphResponse {
                schema_version: API_SCHEMA_VERSION,
                id: req.id,
                graph_key,
                error,
            })
        }
        // The line did not parse far enough to know what was asked: reply with
        // a `place_result` error envelope and id 0 (the one id we never echo).
        Err(e) => fail(0, &e),
    }
}
