//! The end-of-run telemetry snapshot attached to training results.

use serde::{Deserialize, Serialize};

/// Rollout and cache counters of one training run.
///
/// This is the one-stop snapshot a trainer attaches to its result and curve
/// (it subsumes the former `RolloutStats`): throughput, cache behavior and
/// evaluation counts in a single value, instead of counters scattered across
/// the environment and the curve.
///
/// `episodes_per_sec` is real (host) time and thus machine-dependent; every
/// other field is deterministic for a fixed seed and worker count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Episodes (placement evaluations) completed per second of host time.
    pub episodes_per_sec: f64,
    /// Placement evaluations performed.
    pub evals: u64,
    /// Evaluations that came back invalid (OOM).
    pub invalid_evals: u64,
    /// Evaluations answered from the placement cache.
    pub cache_hits: u64,
    /// Evaluations that ran the simulator.
    pub cache_misses: u64,
    /// Cache entries evicted (FIFO) to stay within capacity.
    pub cache_evictions: u64,
    /// Fraction of evaluations answered from the cache.
    pub cache_hit_rate: f64,
    /// Simulated wall-clock charged for the run's measurements (seconds) —
    /// the currency of the paper's sample-cost argument (Sec. III-D).
    pub sim_wall_clock: f64,
    /// Worker threads the rollout engine ran with (resolved, never 0).
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let t = Telemetry {
            episodes_per_sec: 12.5,
            evals: 40,
            invalid_evals: 3,
            cache_hits: 10,
            cache_misses: 30,
            cache_evictions: 0,
            cache_hit_rate: 0.25,
            sim_wall_clock: 1234.5,
            workers: 4,
        };
        let j = serde_json::to_string(&t).unwrap();
        let back: Telemetry = serde_json::from_str(&j).unwrap();
        assert_eq!(back, t);
    }
}
