//! Host-runtime helpers shared across the workspace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Per-process override installed by [`set_available_workers`]; 0 = no override.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker threads available on this host. Every consumer (the rollout engine,
/// sharded matmuls) sizes its thread pools off this single value.
///
/// The host parallelism is queried from the OS once per process, but an
/// explicit [`set_available_workers`] override takes precedence *even after
/// the first query* — previously the value was latched in a `OnceLock` at the
/// first matmul, so a bench could not pin its thread count once anything had
/// touched the tensor path. Perf-smoke runs on shared CI hosts pin this to 1
/// via the bench `--workers` flag for reproducible timings.
pub fn available_workers() -> usize {
    let over = WORKER_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Overrides the worker count [`available_workers`] reports for the rest of
/// the process (0 restores OS detection). Benches use this to make timings
/// reproducible on shared hosts whose visible core count varies.
pub fn set_available_workers(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Resolves a requested worker count: 0 means one per available core.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        available_workers()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_host_parallelism() {
        assert!(available_workers() >= 1);
        assert_eq!(resolve_workers(0), available_workers());
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn override_wins_even_after_first_query() {
        let detected = available_workers(); // latches the OnceLock
        set_available_workers(detected + 7);
        assert_eq!(available_workers(), detected + 7);
        assert_eq!(resolve_workers(0), detected + 7);
        set_available_workers(0); // restore OS detection for other tests
        assert_eq!(available_workers(), detected);
    }
}
