//! Host-runtime helpers shared across the workspace.

use std::sync::OnceLock;

/// Worker threads available on this host, queried once per process. Every
/// consumer (the rollout engine, sharded matmuls) sizes its thread pools off
/// this single cached value.
pub fn available_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Resolves a requested worker count: 0 means one per available core.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        available_workers()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_host_parallelism() {
        assert!(available_workers() >= 1);
        assert_eq!(resolve_workers(0), available_workers());
        assert_eq!(resolve_workers(3), 3);
    }
}
