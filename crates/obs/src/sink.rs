//! Sinks: the JSONL metric stream and the human-readable summary table.

use std::io::Write;
use std::path::Path;

use serde_json::Value;

use crate::fsio::write_atomic;
use crate::recorder::Recorder;

/// Version stamped into the leading `meta` line of every JSONL stream. Bump it
/// whenever a line type gains, loses or retypes a field — the golden test
/// (`tests/telemetry_schema.rs`) pins the schema at this version.
pub const SCHEMA_VERSION: u64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Non-finite floats are not representable in JSON; they can only arise from a
/// degenerate run (e.g. an empty histogram's range) and are written as 0.
fn num(v: f64) -> Value {
    Value::F64(if v.is_finite() { v } else { 0.0 })
}

/// Writes the recorder's contents as JSON Lines:
///
/// ```text
/// {"type":"meta","schema_version":1,"run":"table4"}
/// {"type":"span","name":"trainer.sample_us","seq":1,"us":412.0}
/// {"type":"counter","name":"devsim.cache.hits","value":151}
/// {"type":"gauge","name":"rl.loss","value":-0.0123}
/// {"type":"histogram","name":"trainer.update_us","count":40,"sum":...,"min":...,
///  "max":...,"p50":...,"p90":...,"p99":...,"buckets":[[512.0,3],...]}
/// ```
///
/// One object per line; the `type` field discriminates. Span events stream in
/// completion order, then the final counter/gauge/histogram state, each group
/// sorted by name. A disabled recorder writes just the `meta` line, so the
/// file is valid JSONL either way.
///
/// The stream is rendered in memory and published with [`write_atomic`]: a
/// crash mid-write never leaves a truncated metrics file behind.
pub fn write_jsonl(rec: &Recorder, path: &Path, run: &str) -> std::io::Result<()> {
    let mut out: Vec<u8> = Vec::new();
    let meta = obj(vec![
        ("type", Value::from("meta")),
        ("schema_version", Value::U64(SCHEMA_VERSION)),
        ("run", Value::from(run)),
    ]);
    writeln!(out, "{}", serde_json::to_string(&meta).expect("serialize meta"))?;
    for s in rec.spans() {
        let line = obj(vec![
            ("type", Value::from("span")),
            ("name", Value::from(s.name)),
            ("seq", Value::U64(s.seq)),
            ("us", num(s.micros)),
        ]);
        writeln!(out, "{}", serde_json::to_string(&line).expect("serialize span"))?;
    }
    for (name, value) in rec.counters() {
        let line = obj(vec![
            ("type", Value::from("counter")),
            ("name", Value::from(name.as_ref())),
            ("value", Value::U64(value)),
        ]);
        writeln!(out, "{}", serde_json::to_string(&line).expect("serialize counter"))?;
    }
    for (name, value) in rec.gauges() {
        let line = obj(vec![
            ("type", Value::from("gauge")),
            ("name", Value::from(name.as_ref())),
            ("value", num(value)),
        ]);
        writeln!(out, "{}", serde_json::to_string(&line).expect("serialize gauge"))?;
    }
    for (name, h) in rec.histograms() {
        let buckets = Value::Array(
            h.buckets.iter().map(|&(ub, c)| Value::Array(vec![num(ub), Value::U64(c)])).collect(),
        );
        let line = obj(vec![
            ("type", Value::from("histogram")),
            ("name", Value::from(name.as_ref())),
            ("count", Value::U64(h.count)),
            ("sum", num(h.sum)),
            ("min", num(h.min)),
            ("max", num(h.max)),
            ("p50", num(h.p50)),
            ("p90", num(h.p90)),
            ("p99", num(h.p99)),
            ("buckets", buckets),
        ]);
        writeln!(out, "{}", serde_json::to_string(&line).expect("serialize histogram"))?;
    }
    write_atomic(path, &out)
}

/// Renders the end-of-run summary table: counters, gauges, and one row per
/// histogram with count / mean / p50 / p90 / max. Histogram names ending in
/// `_us` hold microseconds (the span-timer convention).
pub fn summary(rec: &Recorder) -> String {
    if !rec.is_enabled() {
        return String::from("telemetry: disabled\n");
    }
    let mut s = String::from("== telemetry summary ==\n");
    let counters = rec.counters();
    if !counters.is_empty() {
        s.push_str("counters:\n");
        for (name, v) in counters {
            s.push_str(&format!("  {name:<28} {v:>14}\n"));
        }
    }
    let gauges = rec.gauges();
    if !gauges.is_empty() {
        s.push_str("gauges:\n");
        for (name, v) in gauges {
            s.push_str(&format!("  {name:<28} {v:>14.4}\n"));
        }
    }
    let hists = rec.histograms();
    if !hists.is_empty() {
        s.push_str(&format!(
            "histograms ({}):\n  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            "`_us` names are microseconds", "name", "count", "mean", "p50", "p90", "max"
        ));
        for (name, h) in hists {
            let mean = if h.count == 0 { 0.0 } else { h.sum / h.count as f64 };
            s.push_str(&format!(
                "  {:<28} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                name, h.count, mean, h.p50, h.p90, h.max
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_parse_and_carry_types() {
        let r = Recorder::new();
        r.add("c.total", 3);
        r.gauge("g.last", 2.5);
        r.observe("h.us", 100.0);
        drop(r.span("s.phase_us"));
        let path = std::env::temp_dir().join("eagle_obs_sink_test.jsonl");
        write_jsonl(&r, &path, "unit").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("every line is valid JSON"))
            .collect();
        assert_eq!(lines[0]["type"].as_str(), Some("meta"));
        assert_eq!(lines[0]["schema_version"].as_u64(), Some(SCHEMA_VERSION));
        let types: Vec<&str> = lines.iter().filter_map(|l| l["type"].as_str()).collect();
        for t in ["span", "counter", "gauge", "histogram"] {
            assert!(types.contains(&t), "missing line type {t}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_recorder_still_writes_valid_meta() {
        let r = Recorder::disabled();
        let path = std::env::temp_dir().join("eagle_obs_sink_disabled.jsonl");
        write_jsonl(&r, &path, "off").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(summary(&r).contains("disabled"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_lists_all_metric_kinds() {
        let r = Recorder::new();
        r.add("devsim.evals", 7);
        r.gauge("rl.loss", -0.5);
        r.observe("trainer.update_us", 40.0);
        let s = summary(&r);
        assert!(s.contains("devsim.evals"));
        assert!(s.contains("rl.loss"));
        assert!(s.contains("trainer.update_us"));
        assert!(s.contains("p90"));
    }
}
