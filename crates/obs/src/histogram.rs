//! Fixed log-bucket histogram: allocation-free recording, coarse quantiles.

/// Number of power-of-two buckets a [`Histogram`] holds. Bucket `0` counts
/// values `<= 1`; bucket `i` counts values in `(2^(i-1), 2^i]`. With 64
/// buckets the histogram spans 19 decades — enough for nanoseconds through
/// hours when recording microseconds.
pub const NUM_BUCKETS: usize = 64;

/// A histogram over non-negative values with power-of-two buckets.
///
/// Recording is allocation-free: one branchless bucket-index computation
/// (integer bit math, no `log`), two float adds and two compares. Exact
/// `count`/`sum`/`min`/`max` are kept alongside the buckets, so means are
/// exact and only the quantiles are bucket-resolution estimates (within 2x,
/// reported at the bucket's upper bound and clamped to the observed range).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

/// Index of the bucket covering `v` (values `<= 1` land in bucket 0).
fn bucket_of(v: f64) -> usize {
    if v <= 1.0 {
        return 0;
    }
    // ceil(log2(n)) for n >= 2 via leading zeros; `as u64` saturates huge
    // floats to u64::MAX, which lands in the last bucket as intended.
    let n = v.ceil() as u64;
    let idx = 64 - (n - 1).leading_zeros() as usize;
    idx.min(NUM_BUCKETS - 1)
}

impl Histogram {
    /// Records one value. Negative or non-finite values are ignored — they can
    /// only come from a broken clock and must not poison the buckets.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`, clamped to the
    /// observed `[min, max]` range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let upper = (1u64 << i) as f64;
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in increasing order.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| ((1u64 << i) as f64, c))
            .collect()
    }

    /// A self-contained copy for sinks and assertions.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Detached summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Median estimate (bucket resolution).
    pub p50: f64,
    /// 90th-percentile estimate (bucket resolution).
    pub p90: f64,
    /// 99th-percentile estimate (bucket resolution).
    pub p99: f64,
    /// Non-empty `(upper_bound, count)` buckets in increasing order.
    pub buckets: Vec<(f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.5), 0);
        assert_eq!(bucket_of(1.0), 0);
        assert_eq!(bucket_of(1.5), 1);
        assert_eq!(bucket_of(2.0), 1);
        assert_eq!(bucket_of(2.1), 2);
        assert_eq!(bucket_of(4.0), 2);
        assert_eq!(bucket_of(1024.0), 10);
        assert_eq!(bucket_of(1e300), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_moments_and_range() {
        let mut h = Histogram::default();
        for v in [3.0, 5.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 108.0);
        assert_eq!(h.mean(), 36.0);
        assert_eq!(h.min(), 3.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        // p50 of 1..=1000 is ~500; the covering bucket's upper bound is 512.
        assert_eq!(h.quantile(0.5), 512.0);
        // Quantiles never leave the observed range.
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn empty_and_garbage_inputs() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0, "garbage must be ignored");
    }

    #[test]
    fn snapshot_reports_nonzero_buckets() {
        let mut h = Histogram::default();
        h.record(3.0);
        h.record(3.5);
        h.record(100.0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets, vec![(4.0, 2), (128.0, 1)]);
    }
}
