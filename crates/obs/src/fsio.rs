//! Crash-safe file writes: the tmp + fsync + rename protocol.
//!
//! A bare `fs::write` truncates the destination before writing, so a crash (or
//! `kill -9`) mid-write leaves a corrupt file — fatal when the file is a
//! checkpoint the run exists to protect. Every durable artifact in the
//! workspace (checkpoints, params, curves, metric streams) goes through
//! [`write_atomic`] instead: readers only ever observe the old contents or the
//! complete new contents, never a torn mix.

use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// Writes to a sibling `<name>.tmp.<pid>` file, fsyncs it, renames it over
/// `path` (atomic on POSIX filesystems), then best-effort fsyncs the parent
/// directory so the rename itself survives a power loss. On any error the
/// destination is left untouched and the temp file is cleaned up.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // The rename is durable only once the directory entry is synced; failure
    // here is not fatal to correctness (the file is consistent either way).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eagle-obs-fsio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let path = tmp_dir().join("atomic.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmp_dir().join("clean");
        std::fs::create_dir_all(&dir).unwrap();
        write_atomic(dir.join("a.json"), b"{}").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.json".to_string()], "no .tmp litter: {names:?}");
    }

    #[test]
    fn failed_write_preserves_destination() {
        let path = tmp_dir().join("keep.txt");
        write_atomic(&path, b"precious").unwrap();
        // Writing into a directory that does not exist fails before any rename.
        let bad = tmp_dir().join("missing-dir").join("keep.txt");
        assert!(write_atomic(&bad, b"x").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"precious");
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(write_atomic(std::path::Path::new("/"), b"x").is_err());
    }
}
