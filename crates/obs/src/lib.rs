//! # eagle-obs
//!
//! Structured telemetry for the EAGLE training loop — the instrumentation layer
//! that makes the paper's sample-cost accounting (Sec. III-D) visible in our
//! reproduction: where a run spends its time (sample vs decode vs simulate vs
//! policy update), how the placement cache behaves, and what every policy
//! update did to the gradients.
//!
//! The design constraints, in order:
//!
//! 1. **Free when off.** A disabled [`Recorder`] is a `None` behind one branch;
//!    every recording call returns immediately and allocates nothing. The
//!    training loop can keep its instrumentation unconditionally.
//! 2. **Never perturbs determinism.** The recorder only *observes* — it owns no
//!    RNG and is never consulted by the code it measures, so curves are
//!    bit-identical with telemetry on and off (locked by
//!    `tests/rollout_determinism.rs`).
//! 3. **No allocation on the hot path.** Histograms use a fixed array of
//!    power-of-two buckets ([`Histogram`]); recording a value is an index
//!    computation and two adds. Metric names are `&'static str`, so counter
//!    and gauge updates never build strings.
//!
//! Two sinks consume a recorder: [`write_jsonl`] streams every span event and
//! the final counter/gauge/histogram state as JSON Lines (one self-describing
//! object per line — the schema is pinned by `tests/telemetry_schema.rs`), and
//! [`summary`] renders a human-readable end-of-run table.
//!
//! [`Telemetry`] is the end-of-run snapshot the trainer attaches to its
//! `TrainResult`/`Curve` (it subsumes the `RolloutStats` type earlier
//! revisions bolted onto the curve).

#![warn(missing_docs)]

mod fsio;
mod histogram;
mod recorder;
pub mod runtime;
mod sink;
mod telemetry;

pub use fsio::write_atomic;
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use recorder::{MetricName, Recorder, Span, SpanEvent};
pub use runtime::{available_workers, resolve_workers, set_available_workers};
pub use sink::{summary, write_jsonl, SCHEMA_VERSION};
pub use telemetry::Telemetry;
