//! The recording handle threaded through trainer, environment and RL updates.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};

/// A metric name: a `&'static str` on hot paths (no allocation), or an owned
/// `String` for names built at runtime (e.g. the serving daemon's per-family
/// `serve.queue_depth.<family>` gauges).
pub type MetricName = Cow<'static, str>;

/// One completed span: a named, timed scope (e.g. one minibatch's decode phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Span name (also the histogram its duration was recorded into).
    pub name: &'static str,
    /// 1-based occurrence index of this span name.
    pub seq: u64,
    /// Wall-clock duration in microseconds.
    pub micros: f64,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, f64>,
    histograms: BTreeMap<MetricName, Histogram>,
    spans: Vec<SpanEvent>,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
}

/// A cloneable telemetry handle.
///
/// Clones share one underlying store, so the same recorder can live in the
/// environment, the trainer and every RL algorithm at once and produce a
/// single coherent stream. The default recorder is *disabled*: every method
/// is a no-op behind one `Option` check, no clock is read, nothing is
/// allocated — instrumented code needs no `if telemetry` branches of its own.
///
/// All methods take `&self` and the store is internally synchronized, so
/// recording from rollout worker threads is safe. Determinism note: the
/// recorder never feeds back into the code it observes, so enabling it
/// cannot change curves, placements or cache behavior.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates an enabled recorder with an empty store.
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(Inner { state: Mutex::new(State::default()) })) }
    }

    /// Creates a disabled recorder: all operations are no-ops (same as
    /// `Recorder::default()`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// True when this recorder actually stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(&mut inner.state.lock().expect("telemetry store poisoned")))
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&self, name: impl Into<MetricName>, delta: u64) {
        self.with_state(|s| *s.counters.entry(name.into()).or_insert(0) += delta);
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge(&self, name: impl Into<MetricName>, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(name.into(), value);
        });
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: impl Into<MetricName>, value: f64) {
        self.with_state(|s| s.histograms.entry(name.into()).or_default().record(value));
    }

    /// Opens a timed scope. When the returned guard drops, the elapsed time in
    /// microseconds is recorded into the histogram `name` and appended to the
    /// span-event stream. On a disabled recorder no clock is read. The guard
    /// owns a handle to the store, so it can outlive borrows of the recorder.
    #[must_use = "a span records its duration when dropped; binding it to _ discards the timing"]
    pub fn span(&self, name: &'static str) -> Span {
        Span { active: self.inner.clone().map(|inner| (inner, name, Instant::now())) }
    }

    /// Current value of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.with_state(|s| s.counters.get(name).copied().unwrap_or(0)).unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.with_state(|s| s.gauges.get(name).copied()).flatten()
    }

    /// Snapshot of a histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.with_state(|s| s.histograms.get(name).map(Histogram::snapshot)).flatten()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(MetricName, u64)> {
        self.with_state(|s| s.counters.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(MetricName, f64)> {
        self.with_state(|s| s.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default()
    }

    /// Snapshots of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(MetricName, HistogramSnapshot)> {
        self.with_state(|s| s.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect())
            .unwrap_or_default()
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.with_state(|s| s.spans.clone()).unwrap_or_default()
    }
}

/// Guard returned by [`Recorder::span`]; records the scope's duration on drop.
#[derive(Debug)]
pub struct Span {
    active: Option<(Arc<Inner>, &'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.active.take() {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            let mut s = inner.state.lock().expect("telemetry store poisoned");
            let h = s.histograms.entry(Cow::Borrowed(name)).or_default();
            h.record(micros);
            let seq = h.count();
            s.spans.push(SpanEvent { name, seq, micros });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        r.add("c", 5);
        r.gauge("g", 1.0);
        r.observe("h", 2.0);
        drop(r.span("s"));
        assert!(!r.is_enabled());
        assert_eq!(r.counter_value("c"), 0);
        assert_eq!(r.gauge_value("g"), None);
        assert!(r.histogram("h").is_none());
        assert!(r.spans().is_empty());
        assert!(r.counters().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let r = Recorder::new();
        r.add("evals", 2);
        r.add("evals", 3);
        r.gauge("wall", 1.0);
        r.gauge("wall", 7.5);
        r.observe("t", 10.0);
        r.observe("t", 20.0);
        assert_eq!(r.counter_value("evals"), 5);
        assert_eq!(r.gauge_value("wall"), Some(7.5));
        let h = r.histogram("t").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30.0);
    }

    #[test]
    fn runtime_built_names_work_alongside_static_ones() {
        let r = Recorder::new();
        r.gauge("serve.queue_depth", 3.0);
        for fam in ["inception_v3", "gnmt"] {
            r.gauge(format!("serve.queue_depth.{fam}"), 1.0);
            r.add(format!("serve.shed.{fam}"), 2);
        }
        assert_eq!(r.gauge_value("serve.queue_depth.gnmt"), Some(1.0));
        assert_eq!(r.counter_value("serve.shed.inception_v3"), 2);
        let names: Vec<_> = r.gauges().into_iter().map(|(n, _)| n.into_owned()).collect();
        assert_eq!(
            names,
            vec!["serve.queue_depth", "serve.queue_depth.gnmt", "serve.queue_depth.inception_v3"]
        );
    }

    #[test]
    fn clones_share_the_store() {
        let r = Recorder::new();
        let c = r.clone();
        c.add("x", 1);
        assert_eq!(r.counter_value("x"), 1);
    }

    #[test]
    fn spans_record_duration_and_sequence() {
        let r = Recorder::new();
        for _ in 0..3 {
            let _s = r.span("phase");
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2].seq, 3);
        assert!(spans.iter().all(|s| s.micros >= 0.0));
        assert_eq!(r.histogram("phase").unwrap().count, 3);
    }

    #[test]
    fn recording_is_thread_safe() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        r.add("n", 1);
                        r.observe("v", 1.0);
                    }
                });
            }
        });
        assert_eq!(r.counter_value("n"), 400);
        assert_eq!(r.histogram("v").unwrap().count, 400);
    }
}
