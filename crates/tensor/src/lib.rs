//! # eagle-tensor
//!
//! Minimal 2-D tensor library with reverse-mode automatic differentiation, built as
//! the numerical substrate for the EAGLE device-placement agent (the paper implements
//! its agent in PyTorch; this crate supplies the equivalent machinery in pure Rust).
//!
//! The design is deliberately small and auditable:
//!
//! * [`Tensor`] — dense row-major `f32` matrix with a crossbeam-parallel matmul.
//! * [`Params`] / [`ParamId`] — named parameter store shared by all modules.
//! * [`Tape`] / [`Var`] — define-by-run autodiff: record a forward pass, call
//!   [`Tape::backward`], read gradients out of the [`Params`] store.
//! * [`optim`] — Adam and SGD with global-norm gradient clipping
//!   (the paper uses Adam, lr 0.01, clip 1.0).
//! * [`init`] — Xavier / Kaiming initializers driven by an explicit RNG.
//!
//! ## Example
//!
//! ```
//! use eagle_tensor::{Params, Tape, Tensor, optim::Adam};
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::scalar(0.0));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     params.zero_grad();
//!     let mut tape = Tape::new();
//!     let wv = tape.param(&params, w);
//!     let err = tape.add_scalar(wv, -2.0);     // w - 2
//!     let sq = tape.mul_elem(err, err);        // (w - 2)^2
//!     let loss = tape.sum_all(sq);
//!     tape.backward(loss, &mut params);
//!     opt.step(&mut params);
//! }
//! assert!((params.get(w).item() - 2.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

mod grads;
pub mod init;
pub mod optim;
mod params;
mod tape;
mod tensor;

pub use grads::{GradSink, Grads};
pub use params::{ParamId, Params};
pub use tape::{FusedAct, Tape, Var};
pub use tensor::{
    matmul_kernel, set_matmul_kernel, softmax_row, MatmulKernel, Tensor, PAR_MATMUL_THRESHOLD,
};
