//! Weight initializers.
//!
//! All initializers take an explicit RNG so every experiment in the repository is
//! reproducible bit-for-bit from a seed (see `rng` module).

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for tanh/sigmoid
/// networks such as the LSTM placer.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect())
}

/// Kaiming/He uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`,
/// appropriate for ReLU layers (the grouper FFN and the GCN placer).
pub fn kaiming_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / rows.max(1) as f32).sqrt();
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect())
}

/// Uniform initialization `U(-bound, bound)`.
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect())
}

/// All-zeros initialization (biases).
pub fn zeros(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_within_bound_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = xavier_uniform(16, 48, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.data().iter().all(|&x| x > -a && x < a));
        // Deterministic for a fixed seed.
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(t, xavier_uniform(16, 48, &mut rng2));
    }

    #[test]
    fn xavier_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = xavier_uniform(32, 32, &mut rng);
        assert!(t.norm() > 0.0);
        // Mean should be near zero for a symmetric distribution.
        assert!(t.mean().abs() < 0.05);
    }

    #[test]
    fn kaiming_bound_uses_fan_in() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = kaiming_uniform(6, 1000, &mut rng);
        let a = 1.0f32; // sqrt(6/6)
        assert!(t.data().iter().all(|&x| x.abs() < a));
        assert!(t.max() > 0.5, "should actually use the range");
    }
}
