//! Dense 2-D tensor in row-major layout.
//!
//! Everything in the EAGLE agent is expressible with rank-2 tensors (a batch of
//! vectors, a weight matrix, a sequence of embeddings), so the engine deliberately
//! supports only rank 2: it keeps indexing, broadcasting and the autodiff rules simple
//! and auditable. A row vector is `(1, n)`; a scalar is `(1, 1)`.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Threshold (in multiply-adds, `m * n * k`) above which [`Tensor::matmul`]
/// shards the computation across threads. Counting flops rather than output
/// elements keeps skinny products with a large inner dimension (e.g. `64x1024
/// @ 1024x8`) on the parallel path and tiny-`k` products off it, where thread
/// spawn overhead would dominate.
///
/// Re-measured for the cache-blocked kernel with the `matmul_bench` bin
/// (see `results/BENCH_matmul.json`): a `crossbeam::scope` round costs
/// roughly 100us of spawn overhead while the serial blocked kernel streams
/// ~11G multiply-adds/sec, so sharding across `T` threads only wins once the
/// saved work `(1 - 1/T) * t_serial` exceeds the spawn cost — at `T = 4`
/// that puts the crossover in the 1-2M multiply-add range. `128^3` (~2.1M)
/// sits just above it; below, the serial blocked kernel wins even with
/// spare cores.
pub const PAR_MATMUL_THRESHOLD: usize = 128 * 128 * 128;

/// Worker threads available for sharded matmuls — the workspace-wide cached
/// host parallelism (shared with the rollout engine's worker resolution, and
/// overridable per-run via `eagle_obs::set_available_workers`).
fn matmul_threads() -> usize {
    eagle_obs::available_workers()
}

/// Selects the inner kernel [`Tensor::matmul`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKernel {
    /// The original triple-loop `ikj` kernel (kept for bench comparisons).
    Naive,
    /// Cache-blocked kernel with packed-B micro-panels (the default).
    Blocked,
}

/// Process-wide kernel selection (0 = naive, 1 = blocked). Benches flip this
/// to time the old kernel; everything else runs the default.
static MATMUL_KERNEL: AtomicU8 = AtomicU8::new(1);

/// Installs the kernel [`Tensor::matmul`] uses for the rest of the process.
///
/// Both kernels produce *bit-identical* outputs (see [`matmul_rows_blocked`]'s
/// ordering argument), so this is purely a performance switch for benches.
pub fn set_matmul_kernel(kernel: MatmulKernel) {
    MATMUL_KERNEL.store(kernel as u8, Ordering::Relaxed);
}

/// The kernel [`Tensor::matmul`] currently dispatches to.
pub fn matmul_kernel() -> MatmulKernel {
    match MATMUL_KERNEL.load(Ordering::Relaxed) {
        0 => MatmulKernel::Naive,
        _ => MatmulKernel::Blocked,
    }
}

/// A dense matrix of `f32` values in row-major order.
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from raw row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a `1 x 1` tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// The value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary combination; shapes must match.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += other`, shapes must match.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other`, shapes must match.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Returns `s * self`.
    pub fn scaled(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self @ other`.
    ///
    /// Dispatches to the kernel selected by [`set_matmul_kernel`] (default: the
    /// cache-blocked kernel with packed-B micro-panels). Large products are
    /// sharded across threads with `crossbeam::scope`, splitting the *output
    /// rows* so each thread writes a disjoint region (no synchronization on
    /// the hot path). Both kernels and every thread count produce bit-identical
    /// results: each output element is one ascending-`k` f32 accumulation.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        self.matmul_with(other, matmul_kernel())
    }

    /// Matrix product through the original `ikj` kernel, bypassing the
    /// process-wide kernel selection. Benches use this as the comparison
    /// column; the result is bit-identical to [`Tensor::matmul`].
    pub fn matmul_naive(&self, other: &Self) -> Self {
        self.matmul_with(other, MatmulKernel::Naive)
    }

    fn matmul_with(&self, other: &Self, kernel: MatmulKernel) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let run = match kernel {
            MatmulKernel::Naive => matmul_rows,
            MatmulKernel::Blocked => matmul_rows_blocked,
        };
        let mut out = Self::zeros(m, n);
        let threads = matmul_threads().min(m);
        if threads > 1 && m * n * k >= PAR_MATMUL_THRESHOLD && m >= 2 {
            let chunk_rows = m.div_ceil(threads);
            let a = &self.data;
            let b = &other.data;
            crossbeam::thread::scope(|s| {
                for (ci, out_chunk) in out.data.chunks_mut(chunk_rows * n).enumerate() {
                    let row0 = ci * chunk_rows;
                    s.spawn(move |_| {
                        run(a, b, out_chunk, row0, k, n);
                    });
                }
            })
            .expect("matmul worker panicked");
        } else {
            run(&self.data, &other.data, &mut out.data, 0, k, n);
        }
        out
    }

    /// Concatenates tensors horizontally (same number of rows).
    pub fn concat_cols(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols row mismatch");
        }
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Concatenates tensors vertically (same number of columns).
    pub fn concat_rows(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat_rows of zero tensors");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows column mismatch");
            data.extend_from_slice(&p.data);
        }
        Self { rows, cols, data }
    }

    /// Copies rows `[start, start + len)` into a new tensor.
    pub fn slice_rows(&self, start: usize, len: usize) -> Self {
        assert!(start + len <= self.rows, "slice_rows out of range");
        Self {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows (duplicates allowed) into a new tensor.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "select_rows index {idx} out of range");
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Row-wise numerically-stable softmax.
    pub fn softmax_rows(&self) -> Self {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_row(out.row_mut(r));
        }
        out
    }

    /// True when all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute element-wise difference with `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(&a, &b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

/// In-place numerically-stable softmax of one row.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    // `sum >= 1` because the max element maps to exp(0) = 1, so division is safe.
    for x in row.iter_mut() {
        *x /= sum;
    }
}

/// Computes rows `[row0, row0 + out.len()/n)` of `A @ B` into `out`.
///
/// `a` is the full `? x k` left matrix, `b` the full `k x n` right matrix. The `ikj`
/// order keeps the inner loop streaming over contiguous memory in both `b` and `out`.
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out.len() / n.max(1);
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kj;
            }
        }
    }
}

/// Register-tile height of the blocked microkernel (rows of `A` per pass).
const MR: usize = 4;
/// Register-tile width (one packed `B` micro-panel; 8 f32 = 32 bytes, two
/// SSE2 lanes). The `MR x NR` accumulator tile occupies 8 of the baseline
/// x86-64 target's 16 xmm registers, leaving room for the packed-`B` vectors
/// and the broadcast `A` element. `NR = 16` (a full cache line) spilled the
/// tile to the stack on the SSE2 baseline and lost to the naive kernel at
/// mid sizes — see `results/BENCH_matmul.json`.
const NR: usize = 8;
/// Cache-block depth over the inner dimension: one packed panel is
/// `KC x NR` f32 = 16 KiB, comfortably inside L1 alongside the `A` rows.
const KC: usize = 512;

/// Cache-blocked variant of [`matmul_rows`]: computes the same output rows of
/// `A @ B` through a GEBP-style loop nest with a "transposed-B" packing step.
///
/// For each `(k-block, column-block)` pair, the `KC x NR` slice of `B` is
/// packed k-major into a contiguous micro-panel (so the microkernel streams it
/// linearly regardless of `n`), then an `MR x NR` register tile of output
/// accumulators is updated for `MR` rows of `A` at a time. The inner loop body
/// — broadcast `a[r][kk]`, multiply into `NR` independent accumulators — is
/// the shape LLVM autovectorizes across the tile without reassociating any
/// single accumulation chain.
///
/// # Bit-identity with the naive kernel
///
/// Every output element is produced by exactly one f32 accumulator that starts
/// at `+0.0` and adds `a[i][kk] * b[kk][j]` for `kk` ascending — k-blocks are
/// visited in order and the accumulator round-trips through `out` between
/// blocks, which is exact. That is the naive kernel's summation order, so the
/// results match bit for bit. The one textual difference is that the naive
/// kernel *skips* `kk` where `a[i][kk] == 0.0`; for the finite values the tape
/// guarantees, adding those `±0.0` products is a bitwise no-op (the
/// accumulator can never be `-0.0`: it starts at `+0.0`, cancellation rounds
/// to `+0.0`, and `+0.0 + -0.0 = +0.0`), so batched layers built on
/// zero-padding — e.g. the GCN placer's block-diagonal adjacency — keep their
/// per-episode bit-identity under either kernel.
fn matmul_rows_blocked(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out.len() / n.max(1);
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    let mut packed = [0.0f32; KC * NR];
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        for jb in (0..n).step_by(NR) {
            let nr = NR.min(n - jb);
            // Pack B[kb..kb+kc, jb..jb+nr] k-major; pad tail columns with
            // zeros so full-width tiles can run over the padded lanes.
            for kk in 0..kc {
                let src = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + nr];
                packed[kk * NR..kk * NR + nr].copy_from_slice(src);
                packed[kk * NR + nr..(kk + 1) * NR].fill(0.0);
            }
            let mut i = 0;
            while i < rows {
                let mr = MR.min(rows - i);
                let mut acc = [[0.0f32; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    let o = &out[(i + r) * n + jb..(i + r) * n + jb + nr];
                    acc_row[..nr].copy_from_slice(o);
                }
                if mr == MR {
                    // Full tile: constant trip counts, NR independent lanes.
                    for kk in 0..kc {
                        let bp = &packed[kk * NR..(kk + 1) * NR];
                        for (r, acc_row) in acc.iter_mut().enumerate() {
                            let ar = a[(row0 + i + r) * k + kb + kk];
                            for (c, &bv) in acc_row.iter_mut().zip(bp) {
                                *c += ar * bv;
                            }
                        }
                    }
                } else {
                    for kk in 0..kc {
                        let bp = &packed[kk * NR..(kk + 1) * NR];
                        for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                            let ar = a[(row0 + i + r) * k + kb + kk];
                            for (c, &bv) in acc_row.iter_mut().zip(bp) {
                                *c += ar * bv;
                            }
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    out[(i + r) * n + jb..(i + r) * n + jb + nr].copy_from_slice(&acc_row[..nr]);
                }
                i += mr;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(3, 3, (0..9).map(|x| x as f32).collect());
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Large enough to cross PAR_MATMUL_THRESHOLD.
        let m = 97;
        let k = 53;
        let n = 71;
        let a = Tensor::from_vec(m, k, (0..m * k).map(|x| (x % 13) as f32 - 6.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|x| (x % 7) as f32 - 3.0).collect());
        let big = a.matmul(&b);
        // Serial reference.
        let mut reference = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                reference.set(i, j, acc);
            }
        }
        assert!(big.max_abs_diff(&reference) < 1e-3);
    }

    /// Deterministic pseudo-random fill that exercises signs, zeros and a wide
    /// dynamic range without depending on an RNG crate in this test module.
    fn fill(rows: usize, cols: usize, salt: u32) -> Tensor {
        let mut state = salt.wrapping_mul(2654435761).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                match state % 11 {
                    0 => 0.0, // exercise the naive kernel's zero-skip path
                    r => ((state >> 8) as f32 / (1 << 24) as f32 - 0.5) * r as f32,
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_edge_shapes() {
        // Shapes chosen to hit every tile-boundary case: below one register
        // tile, exact multiples of MR/NR/KC, and ragged tails in each of m, n
        // and k (including k > KC so multiple k-blocks round-trip through the
        // output buffer).
        let shapes = [
            (1, 1, 1),
            (3, 2, 5),
            (4, 16, 256), // exactly one full tile in every dimension
            (5, 17, 257), // one past each block boundary
            (8, 300, 33), // k-blocking with ragged n tail
            (7, 5, 300),  // multiple k-blocks, tiny tiles
            (97, 53, 71), // the parallel-path shape
            (2, 1, 400),
        ];
        for (m, k, n) in shapes {
            let a = fill(m, k, (m * 1000 + k) as u32);
            let b = fill(k, n, (k * 1000 + n) as u32);
            let naive = a.matmul_naive(&b);
            let blocked = a.matmul_with(&b, MatmulKernel::Blocked);
            for (i, (x, y)) in naive.data().iter().zip(blocked.data()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "({m}x{k})@({k}x{n}) elem {i}: naive {x} vs blocked {y}"
                );
            }
        }
    }

    #[test]
    fn kernel_toggle_switches_default_matmul() {
        let a = fill(6, 40, 1);
        let b = fill(40, 19, 2);
        let expect = a.matmul_naive(&b);
        set_matmul_kernel(MatmulKernel::Naive);
        let via_naive = a.matmul(&b);
        set_matmul_kernel(MatmulKernel::Blocked);
        let via_blocked = a.matmul(&b);
        assert_eq!(via_naive, expect);
        assert_eq!(via_blocked, expect); // kernels are bitwise-interchangeable
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_ordering() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1000.0]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(s.get(1, 2) > 0.999, "huge logit should dominate");
        assert!(s.all_finite());
    }

    #[test]
    fn concat_and_slice() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let v = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.slice_rows(1, 1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn select_rows_with_duplicates() {
        let t = Tensor::from_vec(3, 2, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let s = t.select_rows(&[2, 0, 2]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[20.0, 21.0]);
        assert_eq!(s.row(1), &[0.0, 1.0]);
        assert_eq!(s.row(2), &[20.0, 21.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert!((t.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(1, 3);
        let g = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        a.add_scaled(&g, 0.5);
        a.add_scaled(&g, 0.5);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
    }
}
