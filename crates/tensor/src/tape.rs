//! Reverse-mode automatic differentiation over a per-forward-pass tape.
//!
//! A [`Tape`] records every operation of one forward pass as a node holding its output
//! value and the identities of its inputs. [`Tape::backward_into`] then walks the nodes
//! in reverse, applying each op's vector-Jacobian product, and deposits gradients of
//! registered parameters into a [`GradSink`] — detached [`Grads`] buffers for the RL
//! update loops, or the legacy in-[`Params`] accumulators via [`Tape::backward`].
//!
//! The tape is rebuilt for every forward pass ("define-by-run"), which is exactly how
//! the paper's PyTorch agent operates, and keeps dynamic structures (per-sample
//! sequence lengths, sampled placements feeding back into the decoder) trivial.
//!
//! ## Node layout
//!
//! `Op` is a small `Copy` value: variable-length payloads (concat parts, gather
//! indices) live in two arena pools on the tape ([`Span32`] ranges into them),
//! so recording an op never allocates beyond the amortized growth of three
//! flat `Vec`s. On the placer workloads this removes one heap allocation per
//! concat/select/pick node — tens of thousands per minibatch.

use std::collections::HashMap;

use crate::grads::{GradSink, Grads};
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Handle to a node (an intermediate value) on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Range into one of the tape's arena pools (`u32` keeps `Op` at 16 bytes).
#[derive(Debug, Clone, Copy)]
struct Span32 {
    start: u32,
    len: u32,
}

/// Activation fused into [`Tape::affine`]. `None` gives plain `x @ w + b`.
///
/// The fused VJP is computed from the activation *output*, which is exact for
/// these choices: `tanh' = 1 - y^2`, and `relu`'s mask `y > 0` coincides with
/// `x > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation.
    None,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

/// The recorded operation producing a node's value.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Constant input (no gradient flows into it).
    Leaf,
    /// Parameter injected from a [`Params`] store (gradient target).
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    /// `(n,m) + (1,m)` with the row vector broadcast across rows.
    AddRowBroadcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, #[allow(dead_code)] f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    Ln(Var),
    Softmax(Var),
    LogSoftmax(Var),
    ConcatRows(Span32),
    ConcatCols(Span32),
    SliceRows(Var, usize, usize),
    SliceCols(Var, usize, usize),
    SelectRows(Var, Span32),
    Transpose(Var),
    SumAll(Var),
    MeanAll(Var),
    RowSums(Var),
    PickPerRow(Var, Span32),
    Clamp(Var, f32, f32),
    MinElem(Var, Var),
    /// n-ary elementwise sum over a pool span (one node instead of a chain).
    AddN(Span32),
    /// Fused `act(x @ w + b)` — the dense-layer pattern every placer emits.
    Affine(Var, Var, Var, FusedAct),
    /// Fused row-wise `log_softmax` + per-row gather: `(n,m) -> (n,1)`.
    LogSoftmaxPick(Var, Span32),
}

struct Node {
    op: Op,
    value: Tensor,
    needs_grad: bool,
}

/// A single forward pass recorded for differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Arena for multi-`Var` op payloads (concat parts, summed losses).
    var_pool: Vec<Var>,
    /// Arena for index payloads (row selections, per-row picks).
    idx_pool: Vec<usize>,
    /// Parameters already injected this pass, so repeated use shares one node.
    param_cache: HashMap<ParamId, Var>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { op, value, needs_grad });
        Var(self.nodes.len() - 1)
    }

    fn ng(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    fn intern_vars(&mut self, parts: &[Var]) -> Span32 {
        let start = self.var_pool.len() as u32;
        self.var_pool.extend_from_slice(parts);
        Span32 { start, len: parts.len() as u32 }
    }

    fn intern_idxs(&mut self, indices: &[usize]) -> Span32 {
        let start = self.idx_pool.len() as u32;
        self.idx_pool.extend_from_slice(indices);
        Span32 { start, len: indices.len() as u32 }
    }

    fn vars(&self, s: Span32) -> &[Var] {
        &self.var_pool[s.start as usize..(s.start + s.len) as usize]
    }

    fn idxs(&self, s: Span32) -> &[usize] {
        &self.idx_pool[s.start as usize..(s.start + s.len) as usize]
    }

    /// Records a constant input; no gradient will flow into it.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value, false)
    }

    /// Injects a parameter from `params`. Re-injecting the same handle returns the
    /// same node, so gradient contributions from all uses accumulate correctly.
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let v = self.push(Op::Param(id), params.get(id).clone(), true);
        self.param_cache.insert(id, v);
        v
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(Op::MatMul(a, b), value, g)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(Op::Add(a, b), value, g)
    }

    /// Element-wise difference (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(Op::Sub(a, b), value, g)
    }

    /// Element-wise (Hadamard) product (same shapes).
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul_elem(self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(Op::MulElem(a, b), value, g)
    }

    /// `(n,m) + (1,m)`: adds a row vector (e.g. a bias) to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(b).rows(), 1, "broadcast operand must be a row vector");
        assert_eq!(self.value(a).cols(), self.value(b).cols(), "broadcast column mismatch");
        let b_row = self.value(b).row(0).to_vec();
        let mut value = self.value(a).clone();
        for r in 0..value.rows() {
            for (x, &bb) in value.row_mut(r).iter_mut().zip(&b_row) {
                *x += bb;
            }
        }
        let g = self.ng(a) || self.ng(b);
        self.push(Op::AddRowBroadcast(a, b), value, g)
    }

    /// `s * a`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scaled(s);
        let g = self.ng(a);
        self.push(Op::Scale(a, s), value, g)
    }

    /// `a + s` element-wise.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).map(|x| x + s);
        let g = self.ng(a);
        self.push(Op::AddScalar(a, s), value, g)
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let g = self.ng(a);
        self.push(Op::Sigmoid(a), value, g)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let g = self.ng(a);
        self.push(Op::Tanh(a), value, g)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        let g = self.ng(a);
        self.push(Op::Relu(a), value, g)
    }

    /// Element-wise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::exp);
        let g = self.ng(a);
        self.push(Op::Exp(a), value, g)
    }

    /// Element-wise natural log (inputs must be positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::ln);
        let g = self.ng(a);
        self.push(Op::Ln(a), value, g)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        let g = self.ng(a);
        self.push(Op::Softmax(a), value, g)
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let mut value = self.value(a).clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        let g = self.ng(a);
        self.push(Op::LogSoftmax(a), value, g)
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Tensor::concat_rows(&tensors);
        let g = parts.iter().any(|&v| self.ng(v));
        let span = self.intern_vars(parts);
        self.push(Op::ConcatRows(span), value, g)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Tensor::concat_cols(&tensors);
        let g = parts.iter().any(|&v| self.ng(v));
        let span = self.intern_vars(parts);
        self.push(Op::ConcatCols(span), value, g)
    }

    /// Copies rows `[start, start+len)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let value = self.value(a).slice_rows(start, len);
        let g = self.ng(a);
        self.push(Op::SliceRows(a, start, len), value, g)
    }

    /// Copies columns `[start, start+len)` (e.g. one gate block of a fused LSTM).
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let t = self.value(a);
        assert!(start + len <= t.cols(), "slice_cols out of range");
        let mut value = Tensor::zeros(t.rows(), len);
        for r in 0..t.rows() {
            value.row_mut(r).copy_from_slice(&t.row(r)[start..start + len]);
        }
        let g = self.ng(a);
        self.push(Op::SliceCols(a, start, len), value, g)
    }

    /// Gathers rows by index (duplicates allowed); gradients scatter-add back.
    pub fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let value = self.value(a).select_rows(indices);
        let g = self.ng(a);
        let span = self.intern_idxs(indices);
        self.push(Op::SelectRows(a, span), value, g)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        let g = self.ng(a);
        self.push(Op::Transpose(a), value, g)
    }

    /// Sum of all elements, as a `1x1` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        let g = self.ng(a);
        self.push(Op::SumAll(a), value, g)
    }

    /// Mean of all elements, as a `1x1` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).mean());
        let g = self.ng(a);
        self.push(Op::MeanAll(a), value, g)
    }

    /// Per-row sums: `(n,m) -> (n,1)`.
    pub fn row_sums(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let mut value = Tensor::zeros(t.rows(), 1);
        for r in 0..t.rows() {
            value.set(r, 0, t.row(r).iter().sum());
        }
        let g = self.ng(a);
        self.push(Op::RowSums(a), value, g)
    }

    /// Picks element `indices[r]` from each row: `(n,m) -> (n,1)`.
    ///
    /// This is the log-probability gather used when scoring sampled actions.
    pub fn pick_per_row(&mut self, a: Var, indices: &[usize]) -> Var {
        let t = self.value(a);
        assert_eq!(indices.len(), t.rows(), "one index per row required");
        let mut value = Tensor::zeros(t.rows(), 1);
        for (r, &c) in indices.iter().enumerate() {
            assert!(c < t.cols(), "pick_per_row column {c} out of range");
            value.set(r, 0, t.get(r, c));
        }
        let g = self.ng(a);
        let span = self.intern_idxs(indices);
        self.push(Op::PickPerRow(a, span), value, g)
    }

    /// Element-wise clamp to `[lo, hi]` (zero gradient outside the interval),
    /// i.e. PPO's `clip`.
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        let value = self.value(a).map(|x| x.clamp(lo, hi));
        let g = self.ng(a);
        self.push(Op::Clamp(a, lo, hi), value, g)
    }

    /// Element-wise minimum of two tensors (gradient flows to the smaller side).
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), f32::min);
        let g = self.ng(a) || self.ng(b);
        self.push(Op::MinElem(a, b), value, g)
    }

    /// n-ary elementwise sum: `parts[0] + parts[1] + ...` in slice order, as one
    /// node. The minibatch update loops use this to fold per-episode losses
    /// into a single scalar, so the whole batch backpropagates in one
    /// [`Tape::backward_into`] traversal instead of one per episode.
    ///
    /// # Panics
    /// Panics when `parts` is empty or shapes differ.
    pub fn add_n(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "add_n of zero terms");
        let mut value = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            value.add_assign(self.value(p));
        }
        let g = parts.iter().any(|&v| self.ng(v));
        let span = self.intern_vars(parts);
        self.push(Op::AddN(span), value, g)
    }

    /// Fused dense layer `act(x @ w + b)`: one node for the
    /// matmul + bias-broadcast + activation chain every placer emits.
    ///
    /// Bitwise-equal to the composed `matmul`/`add_row_broadcast`/activation
    /// sequence — the forward applies the same float ops in the same order,
    /// and the backward reproduces each composed VJP exactly (activation
    /// gradient from the output, bias row-sum in ascending row order, then the
    /// two matmul products). Saves two intermediate tensors and two tape nodes
    /// per layer application.
    pub fn affine(&mut self, x: Var, w: Var, b: Var, act: FusedAct) -> Var {
        assert_eq!(self.value(b).rows(), 1, "bias must be a row vector");
        assert_eq!(self.value(w).cols(), self.value(b).cols(), "bias column mismatch");
        let mut value = self.value(x).matmul(self.value(w));
        let b_row = self.value(b).row(0).to_vec();
        for r in 0..value.rows() {
            for (v, &bb) in value.row_mut(r).iter_mut().zip(&b_row) {
                *v += bb;
            }
        }
        match act {
            FusedAct::None => {}
            FusedAct::Tanh => {
                for v in value.data_mut() {
                    *v = v.tanh();
                }
            }
            FusedAct::Relu => {
                for v in value.data_mut() {
                    *v = v.max(0.0);
                }
            }
        }
        let g = self.ng(x) || self.ng(w) || self.ng(b);
        self.push(Op::Affine(x, w, b, act), value, g)
    }

    /// Fused row-wise log-softmax + per-row gather:
    /// `(n,m) -> (n,1)` with `out[r] = log_softmax(a[r])[indices[r]]`.
    ///
    /// This is the action-scoring pattern (`log_softmax` then `pick_per_row`)
    /// without materializing the full `(n,m)` log-probability matrix or its
    /// dense gradient scatter. Bitwise-equal to the composed pair: the forward
    /// evaluates the same stable `x - lse` expression at the picked column, and
    /// the backward recomputes `lse` with the forward's own op sequence (hence
    /// identical bits) before forming the composed pair's gradient.
    pub fn log_softmax_pick(&mut self, a: Var, indices: &[usize]) -> Var {
        let t = self.value(a);
        assert_eq!(indices.len(), t.rows(), "one index per row required");
        let mut value = Tensor::zeros(t.rows(), 1);
        for (r, &c) in indices.iter().enumerate() {
            assert!(c < t.cols(), "log_softmax_pick column {c} out of range");
            let row = t.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            value.set(r, 0, row[c] - lse);
        }
        let g = self.ng(a);
        let span = self.intern_idxs(indices);
        self.push(Op::LogSoftmaxPick(a, span), value, g)
    }

    /// Runs backpropagation from scalar node `loss`, accumulating parameter
    /// gradients into `params` (adding to whatever is already there, so multiple
    /// backward passes before an optimizer step sum their gradients).
    ///
    /// Prefer [`Tape::backward_into`] with detached [`Grads`] buffers for new
    /// code — mutating the store the forward pass reads from forces callers to
    /// sequence `zero_grad`/clip/step around it. This entry point remains for
    /// the warm-start path, tests and examples.
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    pub fn backward(&self, loss: Var, params: &mut Params) {
        self.backward_sink(loss, params);
    }

    /// Runs backpropagation from scalar node `loss`, accumulating parameter
    /// gradients into detached [`Grads`] buffers (adding to whatever is
    /// already there — call [`Grads::zero`] at minibatch start).
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    pub fn backward_into(&self, loss: Var, grads: &mut Grads) {
        self.backward_sink(loss, grads);
    }

    fn backward_sink(&self, loss: Var, sink: &mut dyn GradSink) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be a scalar");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(gy) = grads[i].take() else { continue };
            self.accumulate(i, &gy, &mut grads, sink);
        }
    }

    /// Adds `scale * grad` into `grads[v]`, allocating on first touch,
    /// but only if `v` participates in differentiation.
    fn bump(&self, grads: &mut [Option<Tensor>], v: Var, grad: &Tensor, scale: f32) {
        if !self.ng(v) {
            return;
        }
        let slot = &mut grads[v.0];
        match slot {
            Some(g) => g.add_scaled(grad, scale),
            None => {
                let mut g = Tensor::zeros(grad.rows(), grad.cols());
                g.add_scaled(grad, scale);
                *slot = Some(g);
            }
        }
    }

    fn accumulate(
        &self,
        i: usize,
        gy: &Tensor,
        grads: &mut [Option<Tensor>],
        sink: &mut dyn GradSink,
    ) {
        let y = &self.nodes[i].value;
        let op = self.nodes[i].op;
        match op {
            Op::Leaf => {}
            Op::Param(id) => sink.deposit(id, gy),
            Op::MatMul(a, b) => {
                if self.ng(a) {
                    let da = gy.matmul(&self.value(b).transpose());
                    self.bump(grads, a, &da, 1.0);
                }
                if self.ng(b) {
                    let db = self.value(a).transpose().matmul(gy);
                    self.bump(grads, b, &db, 1.0);
                }
            }
            Op::Add(a, b) => {
                self.bump(grads, a, gy, 1.0);
                self.bump(grads, b, gy, 1.0);
            }
            Op::Sub(a, b) => {
                self.bump(grads, a, gy, 1.0);
                self.bump(grads, b, gy, -1.0);
            }
            Op::MulElem(a, b) => {
                if self.ng(a) {
                    let da = gy.mul_elem(self.value(b));
                    self.bump(grads, a, &da, 1.0);
                }
                if self.ng(b) {
                    let db = gy.mul_elem(self.value(a));
                    self.bump(grads, b, &db, 1.0);
                }
            }
            Op::AddRowBroadcast(a, b) => {
                self.bump(grads, a, gy, 1.0);
                if self.ng(b) {
                    let mut db = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for (d, &g) in db.row_mut(0).iter_mut().zip(gy.row(r)) {
                            *d += g;
                        }
                    }
                    self.bump(grads, b, &db, 1.0);
                }
            }
            Op::Scale(a, s) => self.bump(grads, a, gy, s),
            Op::AddScalar(a, _) => self.bump(grads, a, gy, 1.0),
            Op::Sigmoid(a) => {
                let da = gy.zip(y, |g, yv| g * yv * (1.0 - yv));
                self.bump(grads, a, &da, 1.0);
            }
            Op::Tanh(a) => {
                let da = gy.zip(y, |g, yv| g * (1.0 - yv * yv));
                self.bump(grads, a, &da, 1.0);
            }
            Op::Relu(a) => {
                let da = gy.zip(self.value(a), |g, x| if x > 0.0 { g } else { 0.0 });
                self.bump(grads, a, &da, 1.0);
            }
            Op::Exp(a) => {
                let da = gy.mul_elem(y);
                self.bump(grads, a, &da, 1.0);
            }
            Op::Ln(a) => {
                let da = gy.zip(self.value(a), |g, x| g / x);
                self.bump(grads, a, &da, 1.0);
            }
            Op::Softmax(a) => {
                // dX = Y * (dY - rowdot(dY, Y)) per row.
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = gy.row(r).iter().zip(y.row(r)).map(|(&g, &s)| g * s).sum();
                    for c in 0..y.cols() {
                        da.set(r, c, y.get(r, c) * (gy.get(r, c) - dot));
                    }
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::LogSoftmax(a) => {
                // dX = dY - softmax(X) * rowsum(dY).
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let rowsum: f32 = gy.row(r).iter().sum();
                    for c in 0..y.cols() {
                        let soft = y.get(r, c).exp();
                        da.set(r, c, gy.get(r, c) - soft * rowsum);
                    }
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::ConcatRows(span) => {
                let mut start = 0;
                for &p in self.vars(span) {
                    let rows = self.value(p).rows();
                    let gp = gy.slice_rows(start, rows);
                    self.bump(grads, p, &gp, 1.0);
                    start += rows;
                }
            }
            Op::ConcatCols(span) => {
                let mut start = 0;
                for &p in self.vars(span) {
                    let cols = self.value(p).cols();
                    let mut gp = Tensor::zeros(gy.rows(), cols);
                    for r in 0..gy.rows() {
                        gp.row_mut(r).copy_from_slice(&gy.row(r)[start..start + cols]);
                    }
                    self.bump(grads, p, &gp, 1.0);
                    start += cols;
                }
            }
            Op::SliceRows(a, start, len) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..len {
                    da.row_mut(start + r).copy_from_slice(gy.row(r));
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::SliceCols(a, start, len) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..gy.rows() {
                    da.row_mut(r)[start..start + len].copy_from_slice(gy.row(r));
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::SelectRows(a, span) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for (r, &idx) in self.idxs(span).iter().enumerate() {
                    for (d, &g) in da.row_mut(idx).iter_mut().zip(gy.row(r)) {
                        *d += g;
                    }
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::Transpose(a) => {
                let da = gy.transpose();
                self.bump(grads, a, &da, 1.0);
            }
            Op::SumAll(a) => {
                let src = self.value(a);
                let da = Tensor::full(src.rows(), src.cols(), gy.item());
                self.bump(grads, a, &da, 1.0);
            }
            Op::MeanAll(a) => {
                let src = self.value(a);
                let da = Tensor::full(src.rows(), src.cols(), gy.item() / src.len() as f32);
                self.bump(grads, a, &da, 1.0);
            }
            Op::RowSums(a) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..src.rows() {
                    let g = gy.get(r, 0);
                    da.row_mut(r).fill(g);
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::PickPerRow(a, span) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for (r, &c) in self.idxs(span).iter().enumerate() {
                    da.set(r, c, gy.get(r, 0));
                }
                self.bump(grads, a, &da, 1.0);
            }
            Op::Clamp(a, lo, hi) => {
                let da = gy.zip(self.value(a), |g, x| if x > lo && x < hi { g } else { 0.0 });
                self.bump(grads, a, &da, 1.0);
            }
            Op::MinElem(a, b) => {
                let (ta, tb) = (self.value(a), self.value(b));
                if self.ng(a) {
                    let da = Tensor::from_vec(
                        ta.rows(),
                        ta.cols(),
                        (0..ta.len())
                            .map(|j| if ta.data()[j] <= tb.data()[j] { gy.data()[j] } else { 0.0 })
                            .collect(),
                    );
                    self.bump(grads, a, &da, 1.0);
                }
                if self.ng(b) {
                    let db = Tensor::from_vec(
                        tb.rows(),
                        tb.cols(),
                        (0..tb.len())
                            .map(|j| if tb.data()[j] < ta.data()[j] { gy.data()[j] } else { 0.0 })
                            .collect(),
                    );
                    self.bump(grads, b, &db, 1.0);
                }
            }
            Op::AddN(span) => {
                for &p in self.vars(span) {
                    self.bump(grads, p, gy, 1.0);
                }
            }
            Op::Affine(x, w, b, act) => {
                // Activation VJP from the output, exactly as the standalone
                // activation nodes compute it (relu's `y > 0` mask equals the
                // composed kernel's `x > 0` test).
                let dz = match act {
                    FusedAct::None => gy.clone(),
                    FusedAct::Tanh => gy.zip(y, |g, yv| g * (1.0 - yv * yv)),
                    FusedAct::Relu => gy.zip(y, |g, yv| if yv > 0.0 { g } else { 0.0 }),
                };
                if self.ng(b) {
                    let mut db = Tensor::zeros(1, dz.cols());
                    for r in 0..dz.rows() {
                        for (d, &g) in db.row_mut(0).iter_mut().zip(dz.row(r)) {
                            *d += g;
                        }
                    }
                    self.bump(grads, b, &db, 1.0);
                }
                if self.ng(x) {
                    let dx = dz.matmul(&self.value(w).transpose());
                    self.bump(grads, x, &dx, 1.0);
                }
                if self.ng(w) {
                    let dw = self.value(x).transpose().matmul(&dz);
                    self.bump(grads, w, &dw, 1.0);
                }
            }
            Op::LogSoftmaxPick(a, span) => {
                // Composed pair's gradient: scatter gy to the picked column,
                // then dX = dY - softmax(X) * rowsum(dY), where rowsum of the
                // scattered row is just gy[r]. `lse` is recomputed with the
                // forward's own op sequence, so `x - lse` has identical bits
                // to the stored log-probabilities of the composed version.
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for (r, &picked) in self.idxs(span).iter().enumerate() {
                    let row = src.row(r);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
                    let g = gy.get(r, 0);
                    for (c, &xv) in row.iter().enumerate() {
                        let soft = (xv - lse).exp();
                        let gy_elem = if c == picked { g } else { 0.0 };
                        da.set(r, c, gy_elem - soft * g);
                    }
                }
                self.bump(grads, a, &da, 1.0);
            }
        }
    }
}
