//! First-order optimizers operating on a [`Params`] store.
//!
//! The paper trains every agent with Adam (lr = 0.01) and clips gradients by global
//! norm at 1.0; both are implemented here, plus plain SGD for tests and ablations.

use crate::grads::Grads;
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Plain stochastic gradient descent: `w -= lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one update using the gradients currently in `params`.
    pub fn step(&mut self, params: &mut Params) {
        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            let (value, grad) = params.value_grad_mut(id);
            value.add_scaled(grad, -self.lr);
        }
    }

    /// Applies one update using detached [`Grads`] buffers.
    pub fn step_grads(&mut self, params: &mut Params, grads: &Grads) {
        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            params.get_mut(id).add_scaled(grads.get(id), -self.lr);
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
///
/// Serializes its full state — step count and both moment buffers — so a
/// checkpointed training run resumes with bit-identical updates (the moments
/// are *not* reconstructable from the parameters alone).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Adam {
    /// Learning rate (`0.01` in the paper).
    pub lr: f32,
    /// First-moment decay (default `0.9`).
    pub beta1: f32,
    /// Second-moment decay (default `0.999`).
    pub beta2: f32,
    /// Numerical-stability constant (default `1e-8`).
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Allocates the moment buffers on first use and bumps the step counter.
    fn begin_step(&mut self, params: &Params) -> (f32, f32) {
        if self.m.is_empty() {
            for id in params.ids().collect::<Vec<_>>() {
                let (r, c) = params.get(id).shape();
                self.m.push(Tensor::zeros(r, c));
                self.v.push(Tensor::zeros(r, c));
            }
        }
        assert_eq!(self.m.len(), params.len(), "param store layout changed under Adam");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        (bc1, bc2)
    }

    /// One parameter's update. The per-element op order is load-bearing:
    /// checkpointed runs replay it and must land on identical bits.
    fn update_one(&mut self, idx: usize, value: &mut Tensor, grad: &Tensor, bc1: f32, bc2: f32) {
        let m = &mut self.m[idx];
        let v = &mut self.v[idx];
        for j in 0..grad.len() {
            let gj = grad.data()[j];
            m.data_mut()[j] = self.beta1 * m.data()[j] + (1.0 - self.beta1) * gj;
            v.data_mut()[j] = self.beta2 * v.data()[j] + (1.0 - self.beta2) * gj * gj;
            let m_hat = m.data()[j] / bc1;
            let v_hat = v.data()[j] / bc2;
            value.data_mut()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Applies one Adam update using the gradients currently in `params`,
    /// in place (no gradient clone — the update reads each element once).
    ///
    /// Moment buffers are allocated lazily on the first step; the store's layout
    /// (count and shapes of parameters) must stay fixed across steps.
    pub fn step(&mut self, params: &mut Params) {
        let (bc1, bc2) = self.begin_step(params);
        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            let (value, grad) = params.value_grad_mut(id);
            self.update_one(id.index(), value, grad, bc1, bc2);
        }
    }

    /// Applies one Adam update reading gradients from detached [`Grads`]
    /// buffers (filled by [`Tape::backward_into`](crate::tape::Tape::backward_into)).
    /// Identical per-element arithmetic to [`Adam::step`], so the two entry
    /// points are interchangeable bit-for-bit given equal gradients.
    pub fn step_grads(&mut self, params: &mut Params, grads: &Grads) {
        let (bc1, bc2) = self.begin_step(params);
        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            self.update_one(id.index(), params.get_mut(id), grads.get(id), bc1, bc2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes `(w - 3)^2` and checks convergence.
    fn quadratic_descent(mut step: impl FnMut(&mut Params), params: &mut Params) -> f32 {
        let id = params.ids().next().unwrap();
        for _ in 0..400 {
            params.zero_grad();
            let mut tape = Tape::new();
            let w = tape.param(params, id);
            let shifted = tape.add_scalar(w, -3.0);
            let sq = tape.mul_elem(shifted, shifted);
            let loss = tape.sum_all(sq);
            tape.backward(loss, params);
            step(params);
        }
        params.get(id).item()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut params = Params::new();
        params.add("w", Tensor::scalar(-5.0));
        let mut opt = Sgd::new(0.1);
        let w = quadratic_descent(|p| opt.step(p), &mut params);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut params = Params::new();
        params.add("w", Tensor::scalar(-5.0));
        let mut opt = Adam::new(0.05);
        let w = quadratic_descent(|p| opt.step(p), &mut params);
        assert!((w - 3.0).abs() < 0.1, "w = {w}");
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        // Train half-way, snapshot optimizer + params, finish training twice —
        // once straight through, once from the restored snapshot — and demand
        // bit-identical trajectories.
        let run = |resume_at: Option<usize>| -> (f32, Adam) {
            let mut params = Params::new();
            params.add("w", Tensor::scalar(-5.0));
            let id = params.ids().next().unwrap();
            let mut opt = Adam::new(0.05);
            let mut snapshot: Option<(Params, Adam)> = None;
            for step in 0..200 {
                if Some(step) == resume_at {
                    let (p, o) = snapshot.take().expect("snapshot taken earlier");
                    params = p;
                    opt = o;
                }
                params.zero_grad();
                let mut tape = Tape::new();
                let w = tape.param(&params, id);
                let shifted = tape.add_scalar(w, -3.0);
                let sq = tape.mul_elem(shifted, shifted);
                let loss = tape.sum_all(sq);
                tape.backward(loss, &mut params);
                opt.step(&mut params);
                if step == 99 && resume_at.is_some() {
                    // JSON round-trip, not a clone: this is what a checkpoint
                    // does, and it must be bit-exact for every float.
                    let o = serde_json::to_string(&opt).unwrap();
                    let p = serde_json::to_string(&params).unwrap();
                    snapshot = Some((
                        serde_json::from_str(&p).unwrap(),
                        serde_json::from_str(&o).unwrap(),
                    ));
                }
            }
            (params.get(id).item(), opt)
        };
        let (w_straight, opt_straight) = run(None);
        let (w_resumed, opt_resumed) = run(Some(100));
        assert_eq!(w_straight.to_bits(), w_resumed.to_bits());
        assert_eq!(opt_straight, opt_resumed, "moments and step count must round-trip");
        assert_eq!(opt_resumed.steps(), 200);
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut params = Params::new();
        let a = params.add("a", Tensor::scalar(10.0));
        let b = params.add("b", Tensor::row_vector(&[-2.0, 4.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..600 {
            params.zero_grad();
            let mut tape = Tape::new();
            let va = tape.param(&params, a);
            let vb = tape.param(&params, b);
            let sa = tape.mul_elem(va, va);
            let sb = tape.mul_elem(vb, vb);
            let la = tape.sum_all(sa);
            let lb = tape.sum_all(sb);
            let loss = tape.add(la, lb);
            tape.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(params.get(a).item().abs() < 1e-2);
        assert!(params.get(b).norm() < 1e-2);
    }
}
