//! Named parameter storage shared by all network modules.
//!
//! Modules do not own their weights; they hold [`ParamId`] handles into a [`Params`]
//! store. A fresh [`Tape`](crate::tape::Tape) is built per forward pass, parameters are
//! injected with [`Tape::param`](crate::tape::Tape::param), and
//! [`Tape::backward`](crate::tape::Tape::backward) accumulates gradients back into the
//! store, where an optimizer consumes them.

use crate::tensor::Tensor;

/// Handle to one parameter tensor inside a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index of this parameter inside its store.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A flat store of named parameter tensors and their gradient accumulators.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Params {
    entries: Vec<ParamEntry>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle. Gradient starts at zero.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry { name: name.into(), value, grad });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value of a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Split borrow of one parameter: mutable value plus shared gradient.
    /// Lets optimizers update in place without cloning the gradient first.
    pub fn value_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let e = &mut self.entries[id.0];
        (&mut e.value, &e.grad)
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Iterator over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Resets every gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm over all gradients (the quantity gradient clipping bounds).
    pub fn grad_global_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|&g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients so their global norm is at most `max_norm`
    /// (the paper clips at 1.0). Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                e.grad.scale_inplace(scale);
            }
        }
        norm
    }

    /// Copies all parameter values from `other`. Stores must have identical layout
    /// (same registration order and shapes); used for snapshotting `pi_old` in PPO.
    pub fn copy_values_from(&mut self, other: &Params) {
        assert_eq!(self.entries.len(), other.entries.len(), "param store layout mismatch");
        for (dst, src) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(dst.value.shape(), src.value.shape(), "param shape mismatch");
            dst.value = src.value.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_names() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::full(2, 3, 1.0));
        let b = p.add("b", Tensor::zeros(1, 3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 9);
        assert_eq!(p.name(w), "w");
        assert_eq!(p.get(b).shape(), (1, 3));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::zeros(1, 2));
        p.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        assert_eq!(p.grad_global_norm(), 5.0);
        p.zero_grad();
        assert_eq!(p.grad_global_norm(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::zeros(1, 2));
        p.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = p.clip_grad_norm(1.0);
        assert_eq!(pre, 5.0);
        assert!((p.grad_global_norm() - 1.0).abs() < 1e-6);
        // Already below threshold: untouched.
        let pre2 = p.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
        assert!((p.grad_global_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn copy_values_from_snapshots() {
        let mut a = Params::new();
        let w = a.add("w", Tensor::full(1, 2, 1.0));
        let mut b = Params::new();
        b.add("w", Tensor::zeros(1, 2));
        b.copy_values_from(&a);
        assert_eq!(b.get(ParamId(0)), a.get(w));
    }
}
