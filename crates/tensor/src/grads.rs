//! Standalone gradient buffers, decoupled from the parameter store.
//!
//! Historically [`Tape::backward`](crate::tape::Tape::backward) deposited
//! gradients straight into [`Params`], which forced update loops to interleave
//! `zero_grad` / clip / step against the same store the forward pass reads
//! from. [`Grads`] is a parallel set of buffers with the same layout as a
//! `Params` store; [`Tape::backward_into`](crate::tape::Tape::backward_into)
//! fills it, and optimizers consume it via
//! [`Adam::step_grads`](crate::optim::Adam::step_grads) without any aliasing
//! gymnastics. The buffers are allocated once and reused across minibatches.

use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Destination for parameter gradients produced by a backward pass.
///
/// Implemented by [`Params`] (the legacy in-store accumulators) and by
/// [`Grads`] (detached buffers). `deposit` must *add* — a parameter used by
/// several episodes on one tape receives one deposit per use.
pub trait GradSink {
    /// Accumulates `grad` into the slot for `id` (`+=`, not assignment).
    fn deposit(&mut self, id: ParamId, grad: &Tensor);
}

impl GradSink for Params {
    fn deposit(&mut self, id: ParamId, grad: &Tensor) {
        self.grad_mut(id).add_assign(grad);
    }
}

/// Gradient buffers mirroring the layout of one [`Params`] store.
#[derive(Debug, Clone)]
pub struct Grads {
    slots: Vec<Tensor>,
}

impl GradSink for Grads {
    fn deposit(&mut self, id: ParamId, grad: &Tensor) {
        self.slots[id.index()].add_assign(grad);
    }
}

impl Grads {
    /// Creates zeroed buffers shaped like every parameter in `params`.
    /// The layout (count and shapes) must stay fixed for the buffer's lifetime.
    pub fn for_params(params: &Params) -> Self {
        let slots = params
            .ids()
            .map(|id| {
                let (r, c) = params.get(id).shape();
                Tensor::zeros(r, c)
            })
            .collect();
        Self { slots }
    }

    /// Number of gradient tensors (one per parameter).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slots exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resets every buffer to zero (call once per minibatch, before backward).
    pub fn zero(&mut self) {
        for s in &mut self.slots {
            s.data_mut().fill(0.0);
        }
    }

    /// Gradient buffer for one parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.slots[id.index()]
    }

    /// Mutable gradient buffer for one parameter.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.index()]
    }

    /// Global L2 norm over all buffers. Mirrors
    /// [`Params::grad_global_norm`] float-for-float (per-tensor `f32` sum of
    /// squares, summed across tensors, then one square root).
    pub fn global_norm(&self) -> f32 {
        self.slots.iter().map(|s| s.data().iter().map(|&g| g * g).sum::<f32>()).sum::<f32>().sqrt()
    }

    /// Clips so the global norm is at most `max_norm`; returns the pre-clip
    /// norm. Same policy as [`Params::clip_grad_norm`].
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for s in &mut self.slots {
                s.scale_inplace(scale);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (Params, ParamId, ParamId) {
        let mut p = Params::new();
        let a = p.add("a", Tensor::zeros(1, 2));
        let b = p.add("b", Tensor::zeros(2, 2));
        (p, a, b)
    }

    #[test]
    fn layout_mirrors_params_and_deposits_accumulate() {
        let (p, a, b) = store();
        let mut g = Grads::for_params(&p);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(b).shape(), (2, 2));
        g.deposit(a, &Tensor::row_vector(&[1.0, 2.0]));
        g.deposit(a, &Tensor::row_vector(&[1.0, 2.0]));
        assert_eq!(g.get(a).data(), &[2.0, 4.0]);
        g.zero();
        assert_eq!(g.get(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn norm_and_clip_match_params_semantics() {
        let (mut p, a, _) = store();
        let mut g = Grads::for_params(&p);
        let grad = Tensor::row_vector(&[3.0, 4.0]);
        g.deposit(a, &grad);
        p.deposit(a, &grad);
        assert_eq!(g.global_norm().to_bits(), p.grad_global_norm().to_bits());
        let pre_g = g.clip_global_norm(1.0);
        let pre_p = p.clip_grad_norm(1.0);
        assert_eq!(pre_g.to_bits(), pre_p.to_bits());
        for (x, y) in g.get(a).data().iter().zip(p.grad(a).data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
