//! Property-based algebraic identities of the tensor kernels — the correctness
//! bedrock under the autodiff tape.

use eagle_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    init::uniform(rows, cols, 2.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..6, k in 1usize..6, n in 1usize..6, s in 0u64..500) {
        let a = tensor(m, k, s);
        let b = tensor(k, n, s + 1);
        let c = tensor(k, n, s + 2);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, s in 0u64..500) {
        // (A B)^T == B^T A^T
        let a = tensor(m, k, s);
        let b = tensor(k, n, s + 3);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn matmul_associativity(m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5, s in 0u64..500) {
        let a = tensor(m, k, s);
        let b = tensor(k, n, s + 4);
        let c = tensor(n, p, s + 5);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-2);
    }

    #[test]
    fn softmax_invariant_to_row_shift(rows in 1usize..5, cols in 1usize..8, shift in -10.0f32..10.0, s in 0u64..500) {
        let t = tensor(rows, cols, s);
        let shifted = t.map(|x| x + shift);
        let a = t.softmax_rows();
        let b = shifted.softmax_rows();
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
    }

    #[test]
    fn scale_and_norm(rows in 1usize..6, cols in 1usize..6, c in -4.0f32..4.0, s in 0u64..500) {
        let t = tensor(rows, cols, s);
        let scaled = t.scaled(c);
        prop_assert!((scaled.norm() - c.abs() * t.norm()).abs() < 1e-2 * (1.0 + t.norm()));
        prop_assert!((scaled.sum() - c * t.sum()).abs() < 1e-2 * (1.0 + t.sum().abs()));
    }

    #[test]
    fn concat_slice_roundtrip(r1 in 1usize..5, r2 in 1usize..5, cols in 1usize..6, s in 0u64..500) {
        let a = tensor(r1, cols, s);
        let b = tensor(r2, cols, s + 6);
        let cat = Tensor::concat_rows(&[&a, &b]);
        prop_assert_eq!(cat.slice_rows(0, r1), a);
        prop_assert_eq!(cat.slice_rows(r1, r2), b);
    }

    #[test]
    fn select_rows_matches_manual(rows in 2usize..6, cols in 1usize..6, s in 0u64..500) {
        let t = tensor(rows, cols, s);
        let idx = vec![rows - 1, 0, rows / 2];
        let sel = t.select_rows(&idx);
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(i), t.row(r));
        }
    }

    #[test]
    fn zip_add_commutes(rows in 1usize..6, cols in 1usize..6, s in 0u64..500) {
        let a = tensor(rows, cols, s);
        let b = tensor(rows, cols, s + 7);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert!(a.sub(&b).add(&b).max_abs_diff(&a) < 1e-4);
        prop_assert_eq!(a.mul_elem(&b), b.mul_elem(&a));
    }
}
