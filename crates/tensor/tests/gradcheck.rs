//! Finite-difference gradient checks for every differentiable op on the tape.
//!
//! Each check builds a scalar loss from one (or a few) ops, computes analytic
//! gradients via `Tape::backward`, then perturbs every parameter scalar by ±eps and
//! compares against the central difference. f32 finite differences are noisy, so the
//! comparison uses a mixed absolute/relative tolerance.

use eagle_tensor::{init, ParamId, Params, Tape, Tensor, Var};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Checks d(loss)/d(param) for every scalar in every parameter against central
/// differences of `forward`.
fn gradcheck(params: &mut Params, forward: impl Fn(&mut Tape, &Params) -> Var) {
    // Analytic gradients.
    params.zero_grad();
    let mut tape = Tape::new();
    let loss = forward(&mut tape, params);
    assert_eq!(tape.value(loss).shape(), (1, 1), "loss must be scalar");
    tape.backward(loss, params);

    let ids: Vec<ParamId> = params.ids().collect();
    for id in ids {
        let n = params.get(id).len();
        for j in 0..n {
            let orig = params.get(id).data()[j];

            params.get_mut(id).data_mut()[j] = orig + EPS;
            let mut tp = Tape::new();
            let lp = forward(&mut tp, params);
            let fp = tp.value(lp).item();

            params.get_mut(id).data_mut()[j] = orig - EPS;
            let mut tm = Tape::new();
            let lm = forward(&mut tm, params);
            let fm = tm.value(lm).item();

            params.get_mut(id).data_mut()[j] = orig;

            let numeric = (fp - fm) / (2.0 * EPS);
            let analytic = params.grad(id).data()[j];
            let denom = 1.0f32.max(numeric.abs()).max(analytic.abs());
            assert!(
                (numeric - analytic).abs() / denom < TOL,
                "param {} elem {}: numeric {} vs analytic {}",
                params.name(id),
                j,
                numeric,
                analytic
            );
        }
    }
}

fn seeded_params(shapes: &[(usize, usize)], seed: u64) -> (Params, Vec<ParamId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut params = Params::new();
    let ids = shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| params.add(format!("p{i}"), init::xavier_uniform(r, c, &mut rng)))
        .collect();
    (params, ids)
}

#[test]
fn gradcheck_matmul_chain() {
    let (mut params, ids) = seeded_params(&[(3, 4), (4, 2)], 1);
    gradcheck(&mut params, |tape, p| {
        let a = tape.param(p, ids[0]);
        let b = tape.param(p, ids[1]);
        let c = tape.matmul(a, b);
        tape.sum_all(c)
    });
}

#[test]
fn gradcheck_shared_param_two_uses() {
    // w used twice: gradient must be the sum of both paths.
    let (mut params, ids) = seeded_params(&[(2, 2)], 2);
    gradcheck(&mut params, |tape, p| {
        let w = tape.param(p, ids[0]);
        let wt = tape.transpose(w);
        let prod = tape.matmul(w, wt);
        tape.sum_all(prod)
    });
}

#[test]
fn gradcheck_add_sub_mul() {
    let (mut params, ids) = seeded_params(&[(2, 3), (2, 3)], 3);
    gradcheck(&mut params, |tape, p| {
        let a = tape.param(p, ids[0]);
        let b = tape.param(p, ids[1]);
        let s = tape.add(a, b);
        let d = tape.sub(s, b);
        let m = tape.mul_elem(d, s);
        tape.mean_all(m)
    });
}

#[test]
fn gradcheck_row_broadcast_bias() {
    let (mut params, ids) = seeded_params(&[(4, 3), (1, 3)], 4);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let b = tape.param(p, ids[1]);
        let y = tape.add_row_broadcast(x, b);
        let y2 = tape.mul_elem(y, y);
        tape.sum_all(y2)
    });
}

#[test]
fn gradcheck_activations() {
    let (mut params, ids) = seeded_params(&[(3, 3)], 5);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let s = tape.sigmoid(x);
        let t = tape.tanh(s);
        let r = tape.relu(t);
        tape.sum_all(r)
    });
}

#[test]
fn gradcheck_exp_ln() {
    let (mut params, ids) = seeded_params(&[(2, 2)], 6);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let e = tape.exp(x); // strictly positive, safe for ln
        let l = tape.ln(e);
        let m = tape.mul_elem(l, e);
        tape.mean_all(m)
    });
}

#[test]
fn gradcheck_softmax() {
    let (mut params, ids) = seeded_params(&[(3, 4), (3, 4)], 7);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let w = tape.param(p, ids[1]);
        let s = tape.softmax(x);
        let weighted = tape.mul_elem(s, w);
        tape.sum_all(weighted)
    });
}

#[test]
fn gradcheck_log_softmax_nll() {
    // The actual policy-gradient loss shape: -mean(logsoftmax(x)[r, a_r]).
    let (mut params, ids) = seeded_params(&[(4, 5)], 8);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let ls = tape.log_softmax(x);
        let picked = tape.pick_per_row(ls, &[1, 0, 4, 2]);
        let neg = tape.neg(picked);
        tape.mean_all(neg)
    });
}

#[test]
fn gradcheck_concat_slice_select() {
    let (mut params, ids) = seeded_params(&[(2, 3), (3, 3)], 9);
    gradcheck(&mut params, |tape, p| {
        let a = tape.param(p, ids[0]);
        let b = tape.param(p, ids[1]);
        let cat = tape.concat_rows(&[a, b]);
        let mid = tape.slice_rows(cat, 1, 3);
        let sel = tape.select_rows(mid, &[0, 0, 2]);
        let sq = tape.mul_elem(sel, sel);
        tape.sum_all(sq)
    });
}

#[test]
fn gradcheck_slice_cols() {
    let (mut params, ids) = seeded_params(&[(3, 6)], 21);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let left = tape.slice_cols(x, 0, 2); // (3,2)
        let mid = tape.slice_cols(x, 2, 3); // (3,3)
        let left_t = tape.transpose(left); // (2,3)
        let prod = tape.matmul(left_t, mid); // (2,3)
        tape.sum_all(prod)
    });
}

#[test]
fn gradcheck_concat_cols() {
    let (mut params, ids) = seeded_params(&[(2, 2), (2, 3)], 10);
    gradcheck(&mut params, |tape, p| {
        let a = tape.param(p, ids[0]);
        let b = tape.param(p, ids[1]);
        let cat = tape.concat_cols(&[a, b]);
        let t = tape.tanh(cat);
        tape.sum_all(t)
    });
}

#[test]
fn gradcheck_row_sums() {
    let (mut params, ids) = seeded_params(&[(3, 4)], 11);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let rs = tape.row_sums(x);
        let sq = tape.mul_elem(rs, rs);
        tape.sum_all(sq)
    });
}

#[test]
fn gradcheck_clamp_min_ppo_surrogate() {
    // The PPO clipped surrogate: min(r*A, clamp(r, 1-e, 1+e)*A).
    let (mut params, ids) = seeded_params(&[(4, 1)], 12);
    gradcheck(&mut params, |tape, p| {
        let logr = tape.param(p, ids[0]);
        let r = tape.exp(logr);
        let adv = tape.leaf(Tensor::from_vec(4, 1, vec![1.0, -2.0, 0.5, -0.3]));
        let unclipped = tape.mul_elem(r, adv);
        let clipped_r = tape.clamp(r, 0.7, 1.3);
        let clipped = tape.mul_elem(clipped_r, adv);
        let m = tape.min_elem(unclipped, clipped);
        let neg = tape.neg(m);
        tape.mean_all(neg)
    });
}

#[test]
fn gradcheck_scale_add_scalar() {
    let (mut params, ids) = seeded_params(&[(2, 3)], 13);
    gradcheck(&mut params, |tape, p| {
        let x = tape.param(p, ids[0]);
        let y = tape.scale(x, -2.5);
        let z = tape.add_scalar(y, 0.7);
        let sq = tape.mul_elem(z, z);
        tape.mean_all(sq)
    });
}

#[test]
fn leaf_receives_no_gradient() {
    let mut params = Params::new();
    let w = params.add("w", Tensor::scalar(2.0));
    let mut tape = Tape::new();
    let wv = tape.param(&params, w);
    let c = tape.leaf(Tensor::scalar(5.0));
    let prod = tape.mul_elem(wv, c);
    let loss = tape.sum_all(prod);
    tape.backward(loss, &mut params);
    assert_eq!(params.grad(w).item(), 5.0);
}

#[test]
fn backward_accumulates_across_calls() {
    let mut params = Params::new();
    let w = params.add("w", Tensor::scalar(1.0));
    for _ in 0..3 {
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let loss = tape.sum_all(wv);
        tape.backward(loss, &mut params);
    }
    assert_eq!(params.grad(w).item(), 3.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random two-layer tanh MLP loss must gradcheck for arbitrary shapes/seeds.
    #[test]
    fn gradcheck_random_mlp(seed in 0u64..1000, n in 1usize..4, h in 1usize..5) {
        let (mut params, ids) = seeded_params(&[(n, h), (h, 3), (1, 3)], seed);
        gradcheck(&mut params, |tape, p| {
            let x = tape.param(p, ids[0]);
            let w = tape.param(p, ids[1]);
            let b = tape.param(p, ids[2]);
            let h1 = tape.matmul(x, w);
            let h2 = tape.add_row_broadcast(h1, b);
            let a = tape.tanh(h2);
            let sq = tape.mul_elem(a, a);
            tape.mean_all(sq)
        });
    }

    /// Softmax rows always sum to 1 and log_softmax == ln(softmax).
    #[test]
    fn softmax_logsoftmax_consistency(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = init::uniform(3, 6, 4.0, &mut rng);
        let mut tape = Tape::new();
        let v = tape.leaf(x);
        let s = tape.softmax(v);
        let ls = tape.log_softmax(v);
        for r in 0..3 {
            let sum: f32 = tape.value(s).row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..6 {
                let a = tape.value(s).get(r, c).ln();
                let b = tape.value(ls).get(r, c);
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
