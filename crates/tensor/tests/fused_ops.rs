//! Fused-op vs composed-op equivalence suite.
//!
//! The fused tape ops (`affine`, `log_softmax_pick`, `add_n`) exist purely for
//! speed; their contract is *bitwise* agreement with the composed op chains
//! they replace — forward values AND parameter gradients. Each test builds the
//! same computation twice (fused and composed), backpropagates both, and
//! compares every float by its bit pattern.

use eagle_tensor::{init, FusedAct, Grads, ParamId, Params, Tape, Tensor, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seeded_params(shapes: &[(usize, usize)], seed: u64) -> (Params, Vec<ParamId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut params = Params::new();
    let ids = shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| params.add(format!("p{i}"), init::xavier_uniform(r, c, &mut rng)))
        .collect();
    (params, ids)
}

/// Runs `forward` twice against fresh gradient buffers and demands bitwise
/// agreement of the loss value and of every parameter gradient.
fn assert_bitwise_equivalent(
    params: &Params,
    fused: impl Fn(&mut Tape, &Params) -> Var,
    composed: impl Fn(&mut Tape, &Params) -> Var,
    ctx: &str,
) {
    let run = |forward: &dyn Fn(&mut Tape, &Params) -> Var| -> (f32, Grads) {
        let mut tape = Tape::new();
        let loss = forward(&mut tape, params);
        let mut grads = Grads::for_params(params);
        tape.backward_into(loss, &mut grads);
        (tape.value(loss).item(), grads)
    };
    let (loss_f, grads_f) = run(&fused);
    let (loss_c, grads_c) = run(&composed);
    assert_eq!(loss_f.to_bits(), loss_c.to_bits(), "{ctx}: loss {loss_f} vs {loss_c}");
    for id in params.ids() {
        for (j, (a, b)) in grads_f.get(id).data().iter().zip(grads_c.get(id).data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: grad {}[{j}] fused {a} vs composed {b}",
                params.name(id)
            );
        }
    }
}

fn apply_act(tape: &mut Tape, z: Var, act: FusedAct) -> Var {
    match act {
        FusedAct::None => z,
        FusedAct::Tanh => tape.tanh(z),
        FusedAct::Relu => tape.relu(z),
    }
}

#[test]
fn affine_matches_composed_for_every_activation() {
    for (seed, act) in [(1, FusedAct::None), (2, FusedAct::Tanh), (3, FusedAct::Relu)] {
        // x: (5,4), w: (4,3), b: (1,3) — all gradient targets.
        let (params, ids) = seeded_params(&[(5, 4), (4, 3), (1, 3)], seed);
        let ctx = format!("affine/{act:?}");
        assert_bitwise_equivalent(
            &params,
            |tape, p| {
                let x = tape.param(p, ids[0]);
                let w = tape.param(p, ids[1]);
                let b = tape.param(p, ids[2]);
                let y = tape.affine(x, w, b, act);
                tape.sum_all(y)
            },
            |tape, p| {
                let x = tape.param(p, ids[0]);
                let w = tape.param(p, ids[1]);
                let b = tape.param(p, ids[2]);
                let z = tape.matmul(x, w);
                let z = tape.add_row_broadcast(z, b);
                let y = apply_act(tape, z, act);
                tape.sum_all(y)
            },
            &ctx,
        );
    }
}

#[test]
fn affine_with_constant_input_only_trains_weights() {
    let (params, ids) = seeded_params(&[(4, 6), (1, 6)], 7);
    let x_const = init::xavier_uniform(3, 4, &mut ChaCha8Rng::seed_from_u64(99));
    assert_bitwise_equivalent(
        &params,
        |tape, p| {
            let x = tape.leaf(x_const.clone());
            let w = tape.param(p, ids[0]);
            let b = tape.param(p, ids[1]);
            let y = tape.affine(x, w, b, FusedAct::Tanh);
            tape.mean_all(y)
        },
        |tape, p| {
            let x = tape.leaf(x_const.clone());
            let w = tape.param(p, ids[0]);
            let b = tape.param(p, ids[1]);
            let z = tape.matmul(x, w);
            let z = tape.add_row_broadcast(z, b);
            let y = tape.tanh(z);
            tape.mean_all(y)
        },
        "affine/leaf-input",
    );
}

#[test]
fn log_softmax_pick_matches_composed_pair() {
    // Weighted picked log-probs: exercises non-uniform incoming gradients.
    let (params, ids) = seeded_params(&[(6, 5)], 11);
    let picks = [0usize, 4, 2, 2, 1, 3];
    let weights = Tensor::from_vec(6, 1, vec![1.0, -0.5, 2.0, 0.25, -3.0, 0.125]);
    assert_bitwise_equivalent(
        &params,
        |tape, p| {
            let logits = tape.param(p, ids[0]);
            let picked = tape.log_softmax_pick(logits, &picks);
            let w = tape.leaf(weights.clone());
            let weighted = tape.mul_elem(picked, w);
            tape.sum_all(weighted)
        },
        |tape, p| {
            let logits = tape.param(p, ids[0]);
            let ls = tape.log_softmax(logits);
            let picked = tape.pick_per_row(ls, &picks);
            let w = tape.leaf(weights.clone());
            let weighted = tape.mul_elem(picked, w);
            tape.sum_all(weighted)
        },
        "log_softmax_pick",
    );
}

#[test]
fn log_softmax_pick_survives_extreme_logits() {
    // Large-magnitude logits stress the max-shift; fused and composed must
    // still agree bit for bit because they share the stable evaluation order.
    let mut params = Params::new();
    let id = params.add(
        "logits",
        Tensor::from_vec(
            3,
            4,
            vec![800.0, -800.0, 3.0, 2.5, 0.0, 0.0, 0.0, 0.0, -1e3, 1e3, 5.0, -5.0],
        ),
    );
    let picks = [2usize, 0, 1];
    assert_bitwise_equivalent(
        &params,
        |tape, p| {
            let logits = tape.param(p, id);
            let picked = tape.log_softmax_pick(logits, &picks);
            tape.sum_all(picked)
        },
        |tape, p| {
            let logits = tape.param(p, id);
            let ls = tape.log_softmax(logits);
            let picked = tape.pick_per_row(ls, &picks);
            tape.sum_all(picked)
        },
        "log_softmax_pick/extreme",
    );
}

#[test]
fn add_n_matches_chained_adds() {
    let (params, ids) = seeded_params(&[(2, 3), (2, 3), (2, 3), (2, 3)], 13);
    assert_bitwise_equivalent(
        &params,
        |tape, p| {
            let parts: Vec<Var> = ids.iter().map(|&id| tape.param(p, id)).collect();
            let total = tape.add_n(&parts);
            tape.sum_all(total)
        },
        |tape, p| {
            let parts: Vec<Var> = ids.iter().map(|&id| tape.param(p, id)).collect();
            let mut total = parts[0];
            for &part in &parts[1..] {
                total = tape.add(total, part);
            }
            tape.sum_all(total)
        },
        "add_n",
    );
}

#[test]
fn add_n_of_scalar_losses_sums_in_order() {
    // The single-backward update path folds per-episode scalar losses with
    // add_n; its value must equal the left-to-right running sum.
    let mut params = Params::new();
    let id = params.add("w", Tensor::scalar(0.3));
    let mut tape = Tape::new();
    let w = tape.param(&params, id);
    let losses: Vec<Var> = (0..5)
        .map(|i| {
            let s = tape.scale(w, 0.1 + i as f32);
            tape.sum_all(s)
        })
        .collect();
    let total = tape.add_n(&losses);
    let mut expect = 0.0f32;
    for &l in &losses {
        expect += tape.value(l).item();
    }
    assert_eq!(tape.value(total).item().to_bits(), expect.to_bits());
}

#[test]
fn backward_into_matches_legacy_backward() {
    // The detached-buffer entry point must produce exactly the gradients the
    // legacy in-params accumulators receive.
    let (mut params, ids) = seeded_params(&[(3, 4), (4, 3), (1, 3)], 17);
    let build = |tape: &mut Tape, p: &Params| -> Var {
        let x = tape.param(p, ids[0]);
        let w = tape.param(p, ids[1]);
        let b = tape.param(p, ids[2]);
        let h = tape.affine(x, w, b, FusedAct::Tanh);
        let s = tape.softmax(h);
        let picked = tape.log_softmax_pick(h, &[0, 2, 1]);
        let e = tape.mul_elem(s, s);
        let l1 = tape.sum_all(e);
        let l2 = tape.sum_all(picked);
        tape.add(l1, l2)
    };
    let mut tape = Tape::new();
    let loss = build(&mut tape, &params);
    let mut grads = Grads::for_params(&params);
    tape.backward_into(loss, &mut grads);

    params.zero_grad();
    let mut tape2 = Tape::new();
    let loss2 = build(&mut tape2, &params);
    tape2.backward(loss2, &mut params);

    for id in params.ids() {
        for (j, (a, b)) in grads.get(id).data().iter().zip(params.grad(id).data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad {}[{j}]", params.name(id));
        }
    }
}
