//! Criterion micro-benchmarks backing the paper's cost arguments: simulator
//! throughput (how cheap our "environment" is vs the paper's ~1 minute/eval on
//! hardware), partitioner runtime, tensor/LSTM kernels and a full PPO update.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eagle_core::{AgentScale, EagleAgent};
use eagle_devsim::{predefined, Benchmark, Machine};
use eagle_partition::{fluid::FluidCommunities, metis_like::MetisLike, Partitioner};
use eagle_rl::{OptimConfig, Ppo, StochasticPolicy, TrainSample};
use eagle_tensor::{Params, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_simulator(c: &mut Criterion) {
    let machine = Machine::paper_machine();
    let mut group = c.benchmark_group("simulate_step");
    group.sample_size(30);
    for b in Benchmark::ALL {
        let graph = b.graph_for(&machine);
        let placement = predefined::single_gpu(&graph, &machine);
        group.bench_function(b.name(), |bench| {
            bench.iter(|| eagle_devsim::simulate(&graph, &machine, &placement))
        });
    }
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let machine = Machine::paper_machine();
    let graph = Benchmark::Gnmt.graph_for(&machine);
    let mut group = c.benchmark_group("partition_gnmt_k32");
    group.sample_size(10);
    group.bench_function("metis_like", |bench| {
        bench.iter(|| MetisLike::default().partition(&graph, 32))
    });
    group.bench_function("fluid", |bench| {
        bench.iter(|| FluidCommunities::default().partition(&graph, 32))
    });
    group.finish();
}

fn bench_tensor_kernels(c: &mut Criterion) {
    let a = Tensor::full(128, 256, 0.5);
    let b = Tensor::full(256, 128, -0.25);
    c.bench_function("matmul_128x256x128", |bench| bench.iter(|| a.matmul(&b)));

    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let lstm = eagle_nn::Lstm::new(&mut params, "l", 64, 64, &mut rng);
    let xs = Tensor::full(32, 64, 0.1);
    c.bench_function("lstm_seq32_h64", |bench| {
        bench.iter(|| {
            let mut tape = eagle_tensor::Tape::new();
            let x = tape.leaf(xs.clone());
            lstm.forward(&mut tape, &params, x)
        })
    });
}

fn bench_agent_and_ppo(c: &mut Criterion) {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);

    c.bench_function("eagle_sample_inception_tiny", |bench| {
        let mut srng = ChaCha8Rng::seed_from_u64(3);
        bench.iter(|| agent.sample(&params, &mut srng))
    });

    let mut srng = ChaCha8Rng::seed_from_u64(4);
    let batch: Vec<TrainSample> = (0..4)
        .map(|_| {
            let (actions, old_log_prob) = agent.sample(&params, &mut srng);
            TrainSample { actions, old_log_prob, advantage: 0.5 }
        })
        .collect();
    let mut group = c.benchmark_group("ppo_update");
    group.sample_size(10);
    group.bench_function("eagle_inception_tiny_b4", |bench| {
        bench.iter_batched(
            || (params.clone(), Ppo::new(OptimConfig::default(), 0.3, 2)),
            |(mut p, mut ppo)| ppo.update(&agent, &mut p, &batch),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_partitioners,
    bench_tensor_kernels,
    bench_agent_and_ppo
);
criterion_main!(benches);
