//! Ablation: entropy-bonus coefficient sweep for EAGLE(PPO) on GNMT
//! (the paper fixes it at 0.01).

use eagle_bench::{fmt_time, Cli};
use eagle_core::{Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle_devsim::{Benchmark, Machine, MeasureConfig};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();
    let b = Benchmark::Gnmt;
    let graph = b.graph_for(&machine);
    println!("Ablation: entropy coefficient, EAGLE(PPO) on GNMT (scale = {})", cli.scale_name);
    let mut csv = String::from("ent_coef,step_time,invalid\n");
    for coef in [0.0f32, 0.01, 0.05, 0.2] {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, cli.samples_for(b));
        cfg.optim.ent_coef = coef;
        let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
            .config(cfg)
            .measure(MeasureConfig::default())
            .env_seed(43)
            .recorder(cli.recorder.clone())
            .build()
            .expect("valid ablation trainer");
        let r = trainer.train(&agent, &mut params).expect("training run failed");
        println!(
            "  ent_coef={coef:<5} -> {} (invalid {})",
            fmt_time(r.final_step_time),
            r.num_invalid
        );
        csv.push_str(&format!("{coef},{},{}\n", fmt_time(r.final_step_time), r.num_invalid));
    }
    cli.write_artifact("ablation_entropy.csv", &csv);
    cli.finish_metrics("ablation_entropy");
}
