//! Transfer bench: what does training on a *distribution* of graphs buy?
//!
//! Trains one generalist policy on a GraphGen distribution (with a held-out
//! split and zero-shot probes), then builds the GDP-style three-column table
//! on the hand benchmarks:
//!
//! * **zero-shot** — the generalist's best-of-K placement on a graph it never
//!   trained on, no gradient steps;
//! * **fine-tuned-N** — the generalist's parameters warm-start N samples of
//!   benchmark-specific training;
//! * **from-scratch-N** — the same N samples from random initialization.
//!
//! The run doubles as the CI generalist-smoke gate: on every held-out
//! GraphGen graph, the generalist's zero-shot best-of-K must beat a
//! best-of-K **random** placement baseline (per-op uniform device; a
//! candidate whose every placement OOMs scores +inf). The process exits
//! non-zero when the gate fails, so CI turns red on a regressed generalist.
//!
//! Artifact: `BENCH_transfer.json` in `--out`.

use eagle_bench::{fmt_time, Cli};
use eagle_core::{Algo, EagleAgent, GraphSource, PlacementAgent, Trainer, TrainerConfig};
use eagle_devsim::{simulate, Benchmark, DeviceId, Machine, MeasureConfig, Placement};
use eagle_opgraph::{GraphGenConfig, OpGraph};
use eagle_rl::{fork_streams, StochasticPolicy};
use eagle_tensor::Params;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Candidates per best-of-K evaluation, identical for policy and random
/// baseline so the comparison is budget-fair.
const CANDIDATES: usize = 8;

/// Held-out GraphGen graphs (never drawn by training) the smoke gate runs on.
const HOLDOUT: usize = 2;

/// The generalist's zero-shot best-of-K on `graph`: rebuild the (graph-
/// independent) agent architecture around the trained parameters, sample K
/// candidates from per-seed forked streams, keep the best simulated time.
fn best_of_policy(
    params: &Params,
    graph: &OpGraph,
    machine: &Machine,
    scale: eagle_core::AgentScale,
    seed: u64,
) -> Option<f64> {
    let mut scratch = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let agent = EagleAgent::new_for_inference(&mut scratch, graph, machine, scale, &mut rng);
    let mut master = ChaCha8Rng::seed_from_u64(seed);
    let mut streams = fork_streams(&mut master, agent.rng_draws_per_sample(), CANDIDATES);
    let mut refs: Vec<&mut dyn rand::RngCore> =
        streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
    let actions: Vec<Vec<usize>> =
        agent.sample_batch(params, &mut refs).into_iter().map(|(a, _)| a).collect();
    let placements = agent.decode_batch(params, &actions);
    placements
        .iter()
        .filter_map(|p| simulate(graph, machine, p).step_time())
        .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
}

/// Best-of-K random placements: each op on a uniformly random device.
fn best_of_random(graph: &OpGraph, machine: &Machine, seed: u64) -> Option<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let devices = machine.devices.len();
    (0..CANDIDATES)
        .filter_map(|_| {
            let devs =
                (0..graph.len()).map(|_| DeviceId(rng.gen_range(0..devices) as u8)).collect();
            simulate(graph, machine, &Placement::new(devs)).step_time()
        })
        .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
}

/// JSON-friendly rendering: `null` when every candidate OOMed.
fn json_time(t: Option<f64>) -> String {
    t.map_or("null".to_string(), |t| format!("{t}"))
}

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();

    // One GraphGen distribution for training and holdout; the split is a pure
    // function of (config, seed), so the gate below never sees a training
    // graph.
    // Sources are pure functions of (config, seed): `make_source()` always
    // yields the identical distribution and holdout split.
    let make_source = || {
        GraphSource::generated(GraphGenConfig::with_target(48), cli.seed)
            .expect("valid generated source")
    };
    let source = make_source();
    let holdout_origins = source.holdout_origins(HOLDOUT);
    let seed_graph = source.build(&holdout_origins[0]);

    let gen_samples = cli.samples_for(Benchmark::InceptionV3);
    println!(
        "Transfer: generalist over GraphGen(target_ops=48), {gen_samples} samples, \
         {HOLDOUT} held out (scale = {})",
        cli.scale_name
    );

    let mut gen_params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let agent = EagleAgent::new(&mut gen_params, &seed_graph, &machine, cli.scale, &mut rng);
    let trainer = Trainer::builder(make_source(), machine.clone())
        .config(TrainerConfig::paper(Algo::Ppo, gen_samples))
        .measure(MeasureConfig::default())
        .env_seed(1000 + cli.seed)
        .recorder(cli.recorder.clone())
        .holdout(HOLDOUT)
        .probe_every((gen_samples / 10).max(1))
        .probe_candidates(CANDIDATES)
        .build()
        .expect("valid generalist trainer config");
    let gen_result = trainer.train(&agent, &mut gen_params).expect("generalist training failed");
    println!(
        "  trained on {} distinct graphs, {} probes recorded",
        gen_result.graphs.len(),
        gen_result.curve.probes.len()
    );

    // --- CI gate: zero-shot beats random on every held-out graph. ----------
    let mut gate_rows = Vec::new();
    let mut gate_ok = true;
    for (i, origin) in holdout_origins.iter().enumerate() {
        let graph = source.build(origin);
        let name = source.name(origin);
        let zs = best_of_policy(&gen_params, &graph, &machine, cli.scale, 7000 + i as u64);
        let rnd = best_of_random(&graph, &machine, 9000 + i as u64);
        // All-OOM scores +inf, so a feasible side always beats an infeasible one.
        let zs_v = zs.unwrap_or(f64::INFINITY);
        let rnd_v = rnd.unwrap_or(f64::INFINITY);
        let beats = zs_v < rnd_v;
        gate_ok &= beats;
        println!(
            "  holdout {name}: zero-shot {} vs random {} -> {}",
            fmt_time(zs),
            fmt_time(rnd),
            if beats { "ok" } else { "FAIL" }
        );
        gate_rows.push(format!(
            r#"    {{"graph": "{name}", "ops": {}, "zero_shot": {}, "random": {}, "beats_random": {beats}}}"#,
            graph.len(),
            json_time(zs),
            json_time(rnd)
        ));
    }

    // --- The three-column table on the hand benchmarks. --------------------
    let mut rows = Vec::new();
    for b in [Benchmark::InceptionV3, Benchmark::Gnmt, Benchmark::BertBase] {
        let graph = b.graph_for(&machine);
        let n = cli.samples_for(b);

        let zero_shot = best_of_policy(&gen_params, &graph, &machine, cli.scale, 100 + cli.seed);

        // Fine-tune: same architecture on the benchmark graph, parameters
        // warm-started from the generalist (ids align by construction order).
        let bench_trainer = |env_seed: u64| {
            Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
                .config(TrainerConfig::paper(Algo::Ppo, n))
                .measure(MeasureConfig::default())
                .env_seed(env_seed)
                .recorder(cli.recorder.clone())
                .build()
                .expect("valid benchmark trainer config")
        };
        let mut ft_params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let ft_agent = EagleAgent::new(&mut ft_params, &graph, &machine, cli.scale, &mut rng);
        ft_params = gen_params.clone();
        let ft = bench_trainer(2000 + cli.seed)
            .train(&ft_agent, &mut ft_params)
            .expect("fine-tune training failed");

        let mut fs_params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let fs_agent = EagleAgent::new(&mut fs_params, &graph, &machine, cli.scale, &mut rng);
        let fs = bench_trainer(2000 + cli.seed)
            .train(&fs_agent, &mut fs_params)
            .expect("from-scratch training failed");

        println!(
            "  {b:?}: zero-shot {} | fine-tuned-{n} {} | from-scratch-{n} {}",
            fmt_time(zero_shot),
            fmt_time(ft.final_step_time),
            fmt_time(fs.final_step_time)
        );
        rows.push(format!(
            r#"    {{"benchmark": "{b:?}", "samples": {n}, "zero_shot": {}, "fine_tuned": {}, "from_scratch": {}}}"#,
            json_time(zero_shot),
            json_time(ft.final_step_time),
            json_time(fs.final_step_time)
        ));
    }

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"candidates\": {CANDIDATES},\n  \
         \"generalist_samples\": {gen_samples},\n  \"distinct_training_graphs\": {},\n  \
         \"holdout\": [\n{}\n  ],\n  \"benchmarks\": [\n{}\n  ],\n  \
         \"gate_zero_shot_beats_random\": {gate_ok}\n}}\n",
        cli.scale_name,
        cli.seed,
        gen_result.graphs.len(),
        gate_rows.join(",\n"),
        rows.join(",\n")
    );
    cli.write_artifact("BENCH_transfer.json", &json);
    cli.finish_metrics("transfer");

    if !gate_ok {
        eprintln!("generalist gate FAILED: zero-shot lost to random placement on a held-out graph");
        std::process::exit(1);
    }
}
