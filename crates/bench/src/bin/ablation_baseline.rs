//! Ablation: EMA reward baseline on vs off for EAGLE(PPO) on GNMT (the paper argues
//! the EMA baseline replaces a sample-starved critic, Sec. III-D).

use eagle_bench::{fmt_time, Cli};
use eagle_core::{Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle_devsim::{Benchmark, Machine, MeasureConfig};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();
    let b = Benchmark::Gnmt;
    let graph = b.graph_for(&machine);
    println!("Ablation: EMA baseline, EAGLE(PPO) on GNMT (scale = {})", cli.scale_name);
    let mut csv = String::from("baseline,step_time,invalid\n");
    for use_baseline in [true, false] {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, cli.samples_for(b));
        cfg.use_baseline = use_baseline;
        let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
            .config(cfg)
            .measure(MeasureConfig::default())
            .env_seed(42)
            .recorder(cli.recorder.clone())
            .build()
            .expect("valid ablation trainer");
        let r = trainer.train(&agent, &mut params).expect("training run failed");
        let label = if use_baseline { "ema" } else { "none" };
        println!(
            "  baseline={label:<5} -> {} (invalid {})",
            fmt_time(r.final_step_time),
            r.num_invalid
        );
        csv.push_str(&format!("{label},{},{}\n", fmt_time(r.final_step_time), r.num_invalid));
    }
    cli.write_artifact("ablation_baseline.csv", &csv);
    cli.finish_metrics("ablation_baseline");
}
