//! Rollout-engine microbenchmark: end-to-end `train()` throughput serial vs
//! parallel vs parallel+cache, on Inception-V3 and GNMT, plus a minibatch
//! decode/sample microbenchmark comparing the batched policy API against the
//! per-episode path it replaced.
//!
//! Each configuration trains the same agent from the same seeds, so the
//! resulting curves are directly comparable: worker count never changes the
//! points (the determinism contract), and the cache changes only simulated
//! wall-clock charges, never measured values. Both invariants are checked here
//! and recorded in the emitted `BENCH_rollout_throughput.json`.
//!
//! The microbenchmark times three ways to decode one minibatch of actions —
//! a per-episode `decode` loop, the retired per-episode crossbeam thread
//! fan-out, and one `decode_batch` call — and analogously per-episode `sample`
//! vs `sample_batch`. All three decode columns must produce identical
//! placements (batching is bit-identical by contract), and batched decode must
//! stay at least 1.3x faster than the per-episode loop on Inception-V3.
//!
//! The `update_throughput` microbenchmark times one full minibatch policy
//! update three ways: the retired per-episode path (one backward traversal per
//! episode, naive `ikj` matmul kernel — the exact pre-single-backward update),
//! the single-backward fold on the naive kernel (isolating the one-traversal
//! win), and the shipped configuration (single backward + cache-blocked
//! kernel). The shipped path must reach at least 2x the retired path on
//! Inception-V3 at batch 16.
//!
//! With `--baseline PATH` the machine-robust speedup *ratios* (never absolute
//! wall-clock) are compared against a committed baseline artifact and the run
//! exits non-zero if any ratio regressed by more than 25%.

use eagle_bench::Cli;
use eagle_core::{
    Algo, EagleAgent, GraphSource, PlacementAgent, TrainResult, Trainer, TrainerConfig,
};
use eagle_devsim::{resolve_workers, Benchmark, Machine, MeasureConfig, Placement};
use eagle_rl::{fork_streams, StochasticPolicy};
use eagle_tensor::{optim::Adam, set_matmul_kernel, Grads, MatmulKernel, Params};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::Value;

struct Mode {
    label: &'static str,
    workers: usize,
    cache: bool,
}

const MODES: &[Mode] = &[
    Mode { label: "serial", workers: 1, cache: false },
    Mode { label: "parallel", workers: 8, cache: false },
    Mode { label: "parallel+cache", workers: 8, cache: true },
];

fn run_mode(b: Benchmark, mode: &Mode, cli: &Cli, samples: usize) -> (TrainResult, f64) {
    let machine = Machine::paper_machine();
    let graph = b.graph_for(&machine);
    let cache_capacity = if mode.cache { eagle_devsim::DEFAULT_CACHE_CAPACITY } else { 0 };
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, samples);
    cfg.seed = cli.seed.wrapping_add(13);
    cfg.workers = mode.workers;
    let start = std::time::Instant::now();
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(1000 + cli.seed)
        .cache_capacity(cache_capacity)
        .recorder(cli.recorder.clone())
        .build()
        .expect("valid throughput trainer");
    let result = trainer.train(&agent, &mut params).expect("training run failed");
    (result, start.elapsed().as_secs_f64())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Minibatch size for the decode/sample microbenchmark. The batched-decode
/// speedup floor is contractual at batch >= 8; 16 matches a realistic PPO
/// minibatch while staying comfortably above that floor.
const MICRO_BATCH: usize = 16;
/// Timed repetitions per batch (plus one untimed warm-up).
const MICRO_ITERS: usize = 8;
/// Batches per column; the column reports its *fastest* batch mean. Taking
/// the minimum strips scheduler-preemption noise from both sides of every
/// gated ratio, keeping run-to-run spread well under the 25% regression floor
/// on a noisy shared CI host.
const MICRO_BATCHES: usize = 3;
/// Thread count of the retired per-episode fan-out, kept as a comparison
/// column. The old trainer spawned this many decode workers per minibatch.
const FANOUT_THREADS: usize = 8;

/// Runs `f` once untimed to warm caches, then returns the fastest of
/// [`MICRO_BATCHES`] batch means (seconds per call over `iters` repetitions)
/// alongside the last output.
fn bench_loop<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..MICRO_BATCHES {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            out = f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    (best, out)
}

/// The retired trainer decode path: fan the minibatch out over scoped threads,
/// one per-episode `decode` call at a time.
fn decode_via_threads(
    agent: &EagleAgent,
    params: &Params,
    actions: &[Vec<usize>],
) -> Vec<Placement> {
    let chunk = actions.len().div_ceil(FANOUT_THREADS);
    let mut out: Vec<Option<Placement>> = vec![None; actions.len()];
    crossbeam::thread::scope(|s| {
        for (acts, slots) in actions.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move |_| {
                for (a, slot) in acts.iter().zip(slots.iter_mut()) {
                    *slot = Some(agent.decode(params, a));
                }
            });
        }
    })
    .expect("decode worker panicked");
    out.into_iter().map(|p| p.expect("every action sequence decoded")).collect()
}

/// Times per-episode vs batched sampling and decoding of one minibatch and
/// checks that every path produces bit-identical outputs.
fn decode_microbench(b: Benchmark, cli: &Cli) -> Value {
    let machine = Machine::paper_machine();
    let graph = b.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
    let sample_seed = cli.seed.wrapping_add(97);

    // Correctness first: the batched sampler over forked streams must replay
    // the per-episode loop over one master RNG exactly.
    let mut serial_rng = ChaCha8Rng::seed_from_u64(sample_seed);
    let serial_drawn: Vec<(Vec<usize>, f32)> =
        (0..MICRO_BATCH).map(|_| agent.sample(&params, &mut serial_rng)).collect();
    let mut master = ChaCha8Rng::seed_from_u64(sample_seed);
    let mut streams = fork_streams(&mut master, agent.rng_draws_per_sample(), MICRO_BATCH);
    let mut refs: Vec<&mut dyn RngCore> =
        streams.iter_mut().map(|r| r as &mut dyn RngCore).collect();
    let batched_drawn = agent.sample_batch(&params, &mut refs);
    assert_eq!(
        serial_drawn,
        batched_drawn,
        "{}: sample_batch diverged from the per-episode sample loop",
        b.name()
    );
    let actions: Vec<Vec<usize>> = batched_drawn.into_iter().map(|(a, _)| a).collect();

    // Timing columns: each closure performs one full minibatch of work.
    let (sample_per_episode_sec, _) = bench_loop(MICRO_ITERS, || {
        let mut r = ChaCha8Rng::seed_from_u64(sample_seed);
        (0..MICRO_BATCH).map(|_| agent.sample(&params, &mut r)).collect::<Vec<_>>()
    });
    let (sample_batched_sec, _) = bench_loop(MICRO_ITERS, || {
        let mut m = ChaCha8Rng::seed_from_u64(sample_seed);
        let mut streams = fork_streams(&mut m, agent.rng_draws_per_sample(), MICRO_BATCH);
        let mut refs: Vec<&mut dyn RngCore> =
            streams.iter_mut().map(|r| r as &mut dyn RngCore).collect();
        agent.sample_batch(&params, &mut refs)
    });
    let (decode_per_episode_sec, per_episode_placements) = bench_loop(MICRO_ITERS, || {
        actions.iter().map(|a| agent.decode(&params, a)).collect::<Vec<_>>()
    });
    let (decode_threads_sec, threads_placements) =
        bench_loop(MICRO_ITERS, || decode_via_threads(&agent, &params, &actions));
    let (decode_batched_sec, batched_placements) =
        bench_loop(MICRO_ITERS, || agent.decode_batch(&params, &actions));

    assert_eq!(
        per_episode_placements,
        threads_placements,
        "{}: threaded decode diverged from the per-episode loop",
        b.name()
    );
    assert_eq!(
        per_episode_placements,
        batched_placements,
        "{}: decode_batch diverged from the per-episode loop",
        b.name()
    );

    let sample_speedup = sample_per_episode_sec / sample_batched_sec;
    let decode_speedup = decode_per_episode_sec / decode_batched_sec;
    let threads_speedup = decode_per_episode_sec / decode_threads_sec;
    println!(
        "  {:<12} batch {:>2}  decode: per-episode {:>8.1}us  threads({FANOUT_THREADS}) {:>8.1}us  batched {:>8.1}us ({:>5.2}x)  sample batched {:>5.2}x",
        b.name(),
        MICRO_BATCH,
        1e6 * decode_per_episode_sec,
        1e6 * decode_threads_sec,
        1e6 * decode_batched_sec,
        decode_speedup,
        sample_speedup,
    );
    if b == Benchmark::InceptionV3 {
        assert!(
            decode_speedup >= 1.3,
            "batched decode must be >= 1.3x the per-episode loop on {} at batch {} (got {:.2}x)",
            b.name(),
            MICRO_BATCH,
            decode_speedup
        );
    }

    obj(vec![
        ("benchmark", Value::from(b.name())),
        ("batch", Value::U64(MICRO_BATCH as u64)),
        ("iters", Value::U64(MICRO_ITERS as u64)),
        ("sample_per_episode_sec", Value::from(sample_per_episode_sec)),
        ("sample_batched_sec", Value::from(sample_batched_sec)),
        ("sample_speedup_batched_vs_per_episode", Value::from(sample_speedup)),
        ("decode_per_episode_sec", Value::from(decode_per_episode_sec)),
        ("decode_threads_sec", Value::from(decode_threads_sec)),
        ("decode_threads", Value::U64(FANOUT_THREADS as u64)),
        ("decode_batched_sec", Value::from(decode_batched_sec)),
        ("decode_speedup_batched_vs_per_episode", Value::from(decode_speedup)),
        ("decode_speedup_threads_vs_per_episode", Value::from(threads_speedup)),
        ("outputs_bit_identical", Value::Bool(true)),
    ])
}

/// Builds the per-episode REINFORCE-shaped losses the update microbenchmark
/// trains against: advantage-weighted log-probs, an entropy bonus, and the aux
/// head where the agent has one. Fixed pseudo-advantages keep every timed
/// column numerically identical work.
fn build_ep_losses(h: &mut eagle_rl::BatchScoreHandle) -> Vec<eagle_tensor::Var> {
    let episodes = h.episodes.clone();
    let mut losses = Vec::with_capacity(episodes.len());
    for (e, ep) in episodes.into_iter().enumerate() {
        let adv = 0.7 * (e as f32 - 0.5 * (MICRO_BATCH as f32 - 1.0)) + 0.3;
        let weighted = h.tape.scale(ep.log_prob, -adv);
        let ent = h.tape.scale(ep.entropy, -0.01);
        let mut loss = h.tape.add(weighted, ent);
        if let Some(aux) = ep.aux_loss {
            loss = h.tape.add(loss, aux);
        }
        losses.push(loss);
    }
    losses
}

/// Times one full minibatch policy update (score, backward, clip, Adam step)
/// on the retired per-episode path versus the single-backward fold, under both
/// matmul kernels, and records the machine-robust speedup ratios.
fn update_microbench(b: Benchmark, cli: &Cli) -> Value {
    let machine = Machine::paper_machine();
    let graph = b.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
    let mut sample_rng = ChaCha8Rng::seed_from_u64(cli.seed.wrapping_add(193));
    let actions: Vec<Vec<usize>> =
        (0..MICRO_BATCH).map(|_| agent.sample(&params, &mut sample_rng).0).collect();

    // The exact pre-single-backward update: one backward traversal per episode
    // depositing into the parameter store, then clip + step.
    let per_episode_update = |p: &mut Params, opt: &mut Adam| {
        p.zero_grad();
        let mut h = agent.score_batch(p, &actions);
        let losses = build_ep_losses(&mut h);
        for &loss in &losses {
            h.tape.backward(loss, p);
        }
        p.clip_grad_norm(1.0);
        opt.step(p);
    };
    // The shipped update: sum the losses on the tape, traverse once into
    // detached gradient buffers, clip + step from those.
    let single_backward_update = |p: &mut Params, opt: &mut Adam, grads: &mut Grads| {
        let mut h = agent.score_batch(p, &actions);
        let losses = build_ep_losses(&mut h);
        let total = h.tape.add_n(&losses);
        grads.zero();
        h.tape.backward_into(total, grads);
        grads.clip_global_norm(1.0);
        opt.step_grads(p, grads);
    };

    set_matmul_kernel(MatmulKernel::Naive);
    let (per_episode_naive_sec, _) = {
        let mut p = params.clone();
        let mut opt = Adam::new(1e-3);
        bench_loop(MICRO_ITERS, || per_episode_update(&mut p, &mut opt))
    };
    let (single_naive_sec, _) = {
        let mut p = params.clone();
        let mut opt = Adam::new(1e-3);
        let mut grads = Grads::for_params(&p);
        bench_loop(MICRO_ITERS, || single_backward_update(&mut p, &mut opt, &mut grads))
    };
    set_matmul_kernel(MatmulKernel::Blocked);
    let (single_blocked_sec, _) = {
        let mut p = params.clone();
        let mut opt = Adam::new(1e-3);
        let mut grads = Grads::for_params(&p);
        bench_loop(MICRO_ITERS, || single_backward_update(&mut p, &mut opt, &mut grads))
    };

    let fold_speedup = per_episode_naive_sec / single_naive_sec;
    let kernel_speedup = single_naive_sec / single_blocked_sec;
    let total_speedup = per_episode_naive_sec / single_blocked_sec;
    println!(
        "  {:<12} batch {:>2}  update: per-episode+naive {:>9.1}us  single+naive {:>9.1}us ({:>5.2}x)  single+blocked {:>9.1}us ({:>5.2}x total)",
        b.name(),
        MICRO_BATCH,
        1e6 * per_episode_naive_sec,
        1e6 * single_naive_sec,
        fold_speedup,
        1e6 * single_blocked_sec,
        total_speedup,
    );
    if b == Benchmark::InceptionV3 {
        assert!(
            total_speedup >= 2.0,
            "single-backward + blocked update must be >= 2x the per-episode path on {} at batch {} (got {:.2}x)",
            b.name(),
            MICRO_BATCH,
            total_speedup
        );
    }

    obj(vec![
        ("benchmark", Value::from(b.name())),
        ("batch", Value::U64(MICRO_BATCH as u64)),
        ("iters", Value::U64(MICRO_ITERS as u64)),
        ("update_per_episode_naive_sec", Value::from(per_episode_naive_sec)),
        ("update_single_backward_naive_sec", Value::from(single_naive_sec)),
        ("update_single_backward_blocked_sec", Value::from(single_blocked_sec)),
        ("update_speedup_single_backward_vs_per_episode", Value::from(fold_speedup)),
        ("update_speedup_blocked_vs_naive", Value::from(kernel_speedup)),
        ("update_speedup_vs_per_episode", Value::from(total_speedup)),
    ])
}

/// Ratio keys gated by `--baseline` in the `decode` section: machine-robust
/// speedups, never absolute wall-clock (the baseline may have been recorded on
/// different hardware).
const GATED_RATIOS: &[&str] =
    &["decode_speedup_batched_vs_per_episode", "sample_speedup_batched_vs_per_episode"];

/// Ratio keys gated by `--baseline` in the `update` section.
const GATED_UPDATE_RATIOS: &[&str] =
    &["update_speedup_single_backward_vs_per_episode", "update_speedup_vs_per_episode"];

/// Gates one artifact section's ratios against the baseline's matching
/// section; sets `failed` on any >25% regression.
fn gate_section(base: &Value, section: &str, entries: &[Value], keys: &[&str], failed: &mut bool) {
    let empty = Vec::new();
    let base_entries = base[section].as_array().unwrap_or(&empty);
    for entry in entries {
        let name = entry["benchmark"].as_str().expect("benchmark name");
        let Some(base_entry) = base_entries.iter().find(|e| e["benchmark"].as_str() == Some(name))
        else {
            println!("baseline has no {section} entry for {name}; skipping");
            continue;
        };
        for key in keys {
            let cur = entry[*key].as_f64().expect("current ratio");
            let Some(base_v) = base_entry[*key].as_f64() else { continue };
            let floor = 0.75 * base_v;
            if cur < floor {
                eprintln!(
                    "PERF REGRESSION: {name} {key} = {cur:.2}x vs baseline {base_v:.2}x (floor {floor:.2}x)"
                );
                *failed = true;
            } else {
                println!("  baseline {name} {key}: {cur:.2}x vs {base_v:.2}x baseline — ok");
            }
        }
    }
}

/// Compares this run's microbench speedup ratios against the committed
/// baseline artifact and exits non-zero on a >25% regression.
fn check_against_baseline(path: &std::path::Path, decode: &[Value], update: &[Value]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    let base: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
    let mut failed = false;
    gate_section(&base, "decode", decode, GATED_RATIOS, &mut failed);
    gate_section(&base, "update", update, GATED_UPDATE_RATIOS, &mut failed);
    if failed {
        eprintln!("baseline comparison failed against {}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let cli = Cli::parse();
    let samples = cli.samples_override.unwrap_or(200);
    println!(
        "rollout throughput: {} samples/run, scale = {}, {} cores available",
        samples,
        cli.scale_name,
        resolve_workers(0)
    );

    let mut runs: Vec<Value> = Vec::new();
    for b in [Benchmark::InceptionV3, Benchmark::Gnmt] {
        let mut serial_elapsed = None;
        let mut serial_points = None;
        for mode in MODES {
            let (result, elapsed) = run_mode(b, mode, &cli, samples);
            let stats = result.telemetry;
            let speedup = match serial_elapsed {
                None => {
                    serial_elapsed = Some(elapsed);
                    1.0
                }
                Some(base) => base / elapsed,
            };
            // Same worker-count-independent curve, and — with the cache — the
            // same measured values (only simulated wall-clock charges shrink).
            let curve_check = match &serial_points {
                None => {
                    serial_points = Some(result.curve.points.clone());
                    true
                }
                Some(base) if !mode.cache => base == &result.curve.points,
                Some(base) => {
                    base.len() == result.curve.points.len()
                        && base
                            .iter()
                            .zip(&result.curve.points)
                            .all(|(a, b)| a.measured == b.measured)
                }
            };
            assert!(curve_check, "{}: {} diverged from the serial curve", b.name(), mode.label);
            println!(
                "  {:<12} {:<15} {:>7.2}s  {:>8.1} eps/s  speedup {:>5.2}x  hit rate {:>5.1}%",
                b.name(),
                mode.label,
                elapsed,
                stats.episodes_per_sec,
                speedup,
                100.0 * stats.cache_hit_rate,
            );
            runs.push(obj(vec![
                ("benchmark", Value::from(b.name())),
                ("mode", Value::from(mode.label)),
                ("workers", Value::U64(stats.workers as u64)),
                ("cache", Value::Bool(mode.cache)),
                ("samples", Value::U64(samples as u64)),
                ("elapsed_sec", Value::from(elapsed)),
                ("episodes_per_sec", Value::from(stats.episodes_per_sec)),
                ("speedup_vs_serial", Value::from(speedup)),
                ("cache_hits", Value::U64(stats.cache_hits)),
                ("cache_misses", Value::U64(stats.cache_misses)),
                ("cache_hit_rate", Value::from(stats.cache_hit_rate)),
                ("curve_matches_serial", Value::Bool(curve_check)),
                ("final_step_time", result.final_step_time.map_or(Value::Null, Value::from)),
            ]));
        }
    }

    println!("decode/sample microbench ({MICRO_ITERS} iters, batch {MICRO_BATCH}):");
    let decode: Vec<Value> =
        [Benchmark::InceptionV3, Benchmark::Gnmt].map(|b| decode_microbench(b, &cli)).into();
    println!("update microbench ({MICRO_ITERS} iters, batch {MICRO_BATCH}):");
    let update: Vec<Value> =
        [Benchmark::InceptionV3, Benchmark::Gnmt].map(|b| update_microbench(b, &cli)).into();
    if let Some(path) = &cli.baseline {
        check_against_baseline(path, &decode, &update);
    }

    let doc = obj(vec![
        ("bench", Value::from("rollout_throughput")),
        ("scale", Value::from(cli.scale_name.as_str())),
        ("seed", Value::U64(cli.seed)),
        ("available_cores", Value::U64(resolve_workers(0) as u64)),
        (
            "note",
            Value::from(
                "decode_threads mirrors the retired per-episode crossbeam fan-out; on a \
                 single-core host it measures pure fan-out overhead, while batched decode \
                 wins by removing per-episode grouper forwards without extra cores",
            ),
        ),
        ("runs", Value::Array(runs)),
        ("decode", Value::Array(decode)),
        ("update", Value::Array(update)),
    ]);
    cli.write_artifact(
        "BENCH_rollout_throughput.json",
        &serde_json::to_string(&doc).expect("serialize"),
    );
    cli.finish_metrics("rollout_throughput");
}
