//! Rollout-engine microbenchmark: end-to-end `train()` throughput serial vs
//! parallel vs parallel+cache, on Inception-V3 and GNMT.
//!
//! Each configuration trains the same agent from the same seeds, so the
//! resulting curves are directly comparable: worker count never changes the
//! points (the determinism contract), and the cache changes only simulated
//! wall-clock charges, never measured values. Both invariants are checked here
//! and recorded in the emitted `BENCH_rollout_throughput.json`.

use eagle_bench::Cli;
use eagle_core::{train, Algo, EagleAgent, TrainResult, TrainerConfig};
use eagle_devsim::{resolve_workers, Benchmark, Environment, Machine, MeasureConfig};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;

struct Mode {
    label: &'static str,
    workers: usize,
    cache: bool,
}

const MODES: &[Mode] = &[
    Mode { label: "serial", workers: 1, cache: false },
    Mode { label: "parallel", workers: 8, cache: false },
    Mode { label: "parallel+cache", workers: 8, cache: true },
];

fn run_mode(b: Benchmark, mode: &Mode, cli: &Cli, samples: usize) -> (TrainResult, f64) {
    let machine = Machine::paper_machine();
    let graph = b.graph_for(&machine);
    let cache_capacity = if mode.cache { eagle_devsim::DEFAULT_CACHE_CAPACITY } else { 0 };
    let mut env = Environment::builder(graph.clone(), machine.clone())
        .measure(MeasureConfig::default())
        .seed(1000 + cli.seed)
        .cache_capacity(cache_capacity)
        .recorder(cli.recorder.clone())
        .build()
        .expect("valid throughput environment");
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, samples);
    cfg.seed = cli.seed.wrapping_add(13);
    cfg.workers = mode.workers;
    let start = std::time::Instant::now();
    let result = train(&agent, &mut params, &mut env, &cfg);
    (result, start.elapsed().as_secs_f64())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn main() {
    let cli = Cli::parse();
    let samples = cli.samples_override.unwrap_or(200);
    println!(
        "rollout throughput: {} samples/run, scale = {}, {} cores available",
        samples,
        cli.scale_name,
        resolve_workers(0)
    );

    let mut runs: Vec<Value> = Vec::new();
    for b in [Benchmark::InceptionV3, Benchmark::Gnmt] {
        let mut serial_elapsed = None;
        let mut serial_points = None;
        for mode in MODES {
            let (result, elapsed) = run_mode(b, mode, &cli, samples);
            let stats = result.telemetry;
            let speedup = match serial_elapsed {
                None => {
                    serial_elapsed = Some(elapsed);
                    1.0
                }
                Some(base) => base / elapsed,
            };
            // Same worker-count-independent curve, and — with the cache — the
            // same measured values (only simulated wall-clock charges shrink).
            let curve_check = match &serial_points {
                None => {
                    serial_points = Some(result.curve.points.clone());
                    true
                }
                Some(base) if !mode.cache => base == &result.curve.points,
                Some(base) => {
                    base.len() == result.curve.points.len()
                        && base
                            .iter()
                            .zip(&result.curve.points)
                            .all(|(a, b)| a.measured == b.measured)
                }
            };
            assert!(curve_check, "{}: {} diverged from the serial curve", b.name(), mode.label);
            println!(
                "  {:<12} {:<15} {:>7.2}s  {:>8.1} eps/s  speedup {:>5.2}x  hit rate {:>5.1}%",
                b.name(),
                mode.label,
                elapsed,
                stats.episodes_per_sec,
                speedup,
                100.0 * stats.cache_hit_rate,
            );
            runs.push(obj(vec![
                ("benchmark", Value::from(b.name())),
                ("mode", Value::from(mode.label)),
                ("workers", Value::U64(stats.workers as u64)),
                ("cache", Value::Bool(mode.cache)),
                ("samples", Value::U64(samples as u64)),
                ("elapsed_sec", Value::from(elapsed)),
                ("episodes_per_sec", Value::from(stats.episodes_per_sec)),
                ("speedup_vs_serial", Value::from(speedup)),
                ("cache_hits", Value::U64(stats.cache_hits)),
                ("cache_misses", Value::U64(stats.cache_misses)),
                ("cache_hit_rate", Value::from(stats.cache_hit_rate)),
                ("curve_matches_serial", Value::Bool(curve_check)),
                ("final_step_time", result.final_step_time.map_or(Value::Null, Value::from)),
            ]));
        }
    }

    let doc = obj(vec![
        ("bench", Value::from("rollout_throughput")),
        ("scale", Value::from(cli.scale_name.as_str())),
        ("seed", Value::U64(cli.seed)),
        ("available_cores", Value::U64(resolve_workers(0) as u64)),
        ("runs", Value::Array(runs)),
    ]);
    cli.write_artifact(
        "BENCH_rollout_throughput.json",
        &serde_json::to_string(&doc).expect("serialize"),
    );
    cli.finish_metrics("rollout_throughput");
}
