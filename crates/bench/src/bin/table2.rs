//! Table II: per-step time of placements found with a fixed METIS grouping and
//! different placer networks — seq2seq with attention before vs after the decoder,
//! and the 2-layer GCN — all trained with PPO.

use eagle_bench::{fmt_time, print_row, AgentKind, Cli, GrouperKind};
use eagle_core::{Algo, PlacerKind};
use eagle_devsim::Benchmark;

fn main() {
    let cli = Cli::parse();
    println!("Table II: per-step time (s) by placer, METIS groups (scale = {})", cli.scale_name);
    println!("| Models        | Seq2Seq(before) | Seq2Seq(after) | GCN |");
    println!("|---------------|-----------------|----------------|-----|");
    let mut csv = String::from("model,placer,step_time,invalid\n");
    for b in Benchmark::ALL {
        let mut cells = Vec::new();
        for placer in [PlacerKind::Seq2SeqBefore, PlacerKind::Seq2SeqAfter, PlacerKind::Gcn] {
            let out = eagle_bench::run(
                b,
                AgentKind::FixedGroups(GrouperKind::Metis, placer),
                Algo::Ppo,
                &cli,
            );
            cells.push(fmt_time(out.final_step_time));
            csv.push_str(&format!(
                "{},{},{},{}\n",
                b.name(),
                placer.label(),
                fmt_time(out.final_step_time),
                out.num_invalid
            ));
        }
        print_row(b.name(), &cells);
    }
    cli.write_artifact("table2.csv", &csv);
    println!("\npaper reference: Inception .067/.067/.072; GNMT 1.440/1.418/2.040; BERT 4.120/5.534/7.214");
    cli.finish_metrics("table2");
}
