//! Matmul kernel microbenchmark: the naive `ikj` kernel versus the
//! cache-blocked packed-B kernel, serial and through the threaded dispatch,
//! across a sweep of square and workload-shaped products.
//!
//! Emits `BENCH_matmul.json` with per-shape wall-clock, GFLOP/s, and speedup
//! ratios, plus a `threshold` section that justifies `PAR_MATMUL_THRESHOLD`:
//! the crossbeam spawn overhead is estimated from the dispatch-vs-serial delta
//! on above-threshold shapes, and the crossover is where that overhead equals
//! the serial kernel's time for the product (below it, sharding cannot win
//! even with free extra cores). Both kernels are checked bitwise-identical on
//! every shape before timing — the blocked kernel is a pure reassociation-free
//! rewrite, so this holds exactly.
//!
//! `--workers N` sets the thread count the dispatch columns run with (the
//! serial columns always pin one worker); on a single-core host the dispatch
//! column measures pure spawn overhead, which is exactly the quantity the
//! threshold guards against.

use eagle_bench::Cli;
use eagle_tensor::{Tensor, PAR_MATMUL_THRESHOLD};
use serde_json::Value;

/// `(m, k, n)` products to sweep: squares bracketing the parallel threshold
/// plus the skinny shapes the policy networks actually issue (minibatch-tall
/// activations against small square weights, and the GCN's op-count-tall
/// feature matrices).
const SHAPES: &[(usize, usize, usize)] = &[
    (16, 16, 16),
    (32, 32, 32),
    (64, 64, 64),
    (96, 96, 96),
    (128, 128, 128),
    (192, 192, 192),
    (256, 256, 256),
    (16, 64, 64),
    (256, 64, 64),
    (1024, 64, 64),
    (64, 1024, 8),
];

/// Total multiply-adds to spend per timed column, so small shapes get many
/// repetitions and large ones few, at roughly constant wall-clock per cell.
const TARGET_MADDS: usize = 1 << 27;

/// Deterministic pseudo-random matrix; every 11th entry is exactly zero so
/// the naive kernel's zero-skip path stays exercised.
fn fill(rows: usize, cols: usize, salt: u64) -> Tensor {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let data = (0..rows * cols)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if i % 11 == 3 {
                0.0
            } else {
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Mean seconds per call over `iters` timed repetitions (after one warm-up).
fn bench(iters: usize, mut f: impl FnMut() -> Tensor) -> f64 {
    let mut out = f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        out = f();
    }
    let per_call = start.elapsed().as_secs_f64() / iters as f64;
    std::hint::black_box(&out);
    per_call
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn main() {
    let cli = Cli::parse();
    let dispatch_workers = cli.workers.unwrap_or_else(eagle_obs::available_workers).max(1);

    println!(
        "matmul kernels: naive ikj vs cache-blocked packed-B, dispatch at {dispatch_workers} worker(s), threshold {PAR_MATMUL_THRESHOLD} madds"
    );

    let mut shapes_out: Vec<Value> = Vec::new();
    // (madds, dispatch_sec - blocked_sec) for above-threshold shapes: the
    // spawn overhead the threshold exists to amortize.
    let mut spawn_deltas: Vec<f64> = Vec::new();
    for &(m, k, n) in SHAPES {
        let a = fill(m, k, 1 + m as u64);
        let b = fill(k, n, 2 + n as u64);
        let madds = m * n * k;
        let iters = (TARGET_MADDS / madds.max(1)).clamp(3, 2000);

        // Bitwise contract first: one ascending-k accumulation per output
        // element, whichever kernel streams it.
        let naive = a.matmul_naive(&b);
        let blocked = {
            eagle_obs::set_available_workers(1);
            a.matmul(&b)
        };
        for (i, (x, y)) in naive.data().iter().zip(blocked.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{m}x{k}@{k}x{n}: kernels disagree at element {i}"
            );
        }

        eagle_obs::set_available_workers(1);
        let naive_sec = bench(iters, || a.matmul_naive(&b));
        let blocked_sec = bench(iters, || a.matmul(&b));
        eagle_obs::set_available_workers(dispatch_workers);
        let dispatch_sec = bench(iters, || a.matmul(&b));
        let parallel_path = dispatch_workers.min(m) > 1 && madds >= PAR_MATMUL_THRESHOLD && m >= 2;
        if parallel_path {
            spawn_deltas.push(dispatch_sec - blocked_sec);
        }

        let gflops = |sec: f64| 2.0 * madds as f64 / sec / 1e9;
        let blocked_speedup = naive_sec / blocked_sec;
        println!(
            "  {m:>5}x{k:<5}@{k:>5}x{n:<5} naive {:>8.2} GF/s  blocked {:>8.2} GF/s ({blocked_speedup:>5.2}x)  dispatch {:>8.2} GF/s{}",
            gflops(naive_sec),
            gflops(blocked_sec),
            gflops(dispatch_sec),
            if parallel_path { "  [threaded]" } else { "" },
        );
        shapes_out.push(obj(vec![
            ("m", Value::U64(m as u64)),
            ("k", Value::U64(k as u64)),
            ("n", Value::U64(n as u64)),
            ("madds", Value::U64(madds as u64)),
            ("iters", Value::U64(iters as u64)),
            ("naive_sec", Value::from(naive_sec)),
            ("blocked_sec", Value::from(blocked_sec)),
            ("dispatch_sec", Value::from(dispatch_sec)),
            ("gflops_naive", Value::from(gflops(naive_sec))),
            ("gflops_blocked", Value::from(gflops(blocked_sec))),
            ("gflops_dispatch", Value::from(gflops(dispatch_sec))),
            ("blocked_speedup_vs_naive", Value::from(blocked_speedup)),
            ("parallel_path", Value::Bool(parallel_path)),
            ("bitwise_identical", Value::Bool(true)),
        ]));
    }

    // Threshold justification: sharding only pays once the serial kernel's
    // time for the product exceeds the spawn overhead (and then only with
    // genuinely spare cores). Estimate the serial rate from the largest
    // square shape and the spawn cost from the measured dispatch deltas.
    let spawn_overhead_sec = if spawn_deltas.is_empty() {
        None
    } else {
        Some(spawn_deltas.iter().sum::<f64>() / spawn_deltas.len() as f64)
    };
    let serial_rate = shapes_out
        .iter()
        .filter(|s| s["m"] == s["n"] && s["n"] == s["k"])
        .map(|s| s["madds"].as_f64().unwrap() / s["blocked_sec"].as_f64().unwrap())
        .fold(0.0f64, f64::max);
    let est_crossover = spawn_overhead_sec.map(|o| o * serial_rate);
    if let Some(cross) = est_crossover {
        println!(
            "  spawn overhead ~{:.1}us -> crossover ~{:.2}M madds (threshold {:.2}M)",
            1e6 * spawn_overhead_sec.unwrap(),
            cross / 1e6,
            PAR_MATMUL_THRESHOLD as f64 / 1e6,
        );
    } else {
        println!(
            "  no shape took the threaded path at {dispatch_workers} worker(s); threshold {:.2}M madds unexercised",
            PAR_MATMUL_THRESHOLD as f64 / 1e6,
        );
    }

    let doc = obj(vec![
        ("bench", Value::from("matmul")),
        ("seed", Value::U64(cli.seed)),
        ("dispatch_workers", Value::U64(dispatch_workers as u64)),
        ("shapes", Value::Array(shapes_out)),
        (
            "threshold",
            obj(vec![
                ("par_matmul_threshold_madds", Value::U64(PAR_MATMUL_THRESHOLD as u64)),
                (
                    "spawn_overhead_sec_estimate",
                    spawn_overhead_sec.map_or(Value::Null, Value::from),
                ),
                ("serial_blocked_madds_per_sec", Value::from(serial_rate)),
                ("est_crossover_madds", est_crossover.map_or(Value::Null, Value::from)),
                (
                    "note",
                    Value::from(
                        "crossover = spawn_overhead * serial rate: below it a crossbeam scope \
                         spend longer spawning than the serial blocked kernel needs for the \
                         whole product, so sharding cannot win regardless of core count",
                    ),
                ),
            ]),
        ),
    ]);
    cli.write_artifact("BENCH_matmul.json", &serde_json::to_string(&doc).expect("serialize"));
    cli.finish_metrics("matmul");
}
