//! Measures the host-time cost of telemetry: the same training run with the
//! recorder disabled vs enabled, on Inception-V3. The determinism contract is
//! asserted along the way (identical curves either way); the emitted
//! `BENCH_telemetry_overhead.json` records the overhead percentage, which the
//! telemetry design budgets at <2% (see DESIGN.md, "Telemetry").

use eagle_bench::Cli;
use eagle_core::{Algo, EagleAgent, GraphSource, TrainResult, Trainer, TrainerConfig};
use eagle_devsim::{Benchmark, Machine, MeasureConfig};
use eagle_obs::Recorder;
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;

fn run_once(cli: &Cli, samples: usize, recorder: Recorder) -> (TrainResult, f64) {
    let machine = Machine::paper_machine();
    let graph = Benchmark::InceptionV3.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
    let mut cfg = TrainerConfig::paper(Algo::Ppo, samples);
    cfg.seed = cli.seed.wrapping_add(13);
    let start = std::time::Instant::now();
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(1000 + cli.seed)
        .recorder(recorder)
        .build()
        .expect("valid overhead trainer");
    let result = trainer.train(&agent, &mut params).expect("training run failed");
    (result, start.elapsed().as_secs_f64())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn main() {
    let cli = Cli::parse();
    let samples = cli.samples_override.unwrap_or(200);
    println!("telemetry overhead: {} samples/run, scale = {}", samples, cli.scale_name);

    // Warm-up run to populate allocator/page-cache state, then take the best
    // of `reps` timed runs per mode so scheduler noise cancels out.
    run_once(&cli, samples, Recorder::disabled());
    let reps = 3;
    let mut off_elapsed = f64::INFINITY;
    let mut on_elapsed = f64::INFINITY;
    let mut off_result = None;
    let mut on_result = None;
    for _ in 0..reps {
        let (r, t) = run_once(&cli, samples, Recorder::disabled());
        off_elapsed = off_elapsed.min(t);
        off_result = Some(r);
        let (r, t) = run_once(&cli, samples, Recorder::new());
        on_elapsed = on_elapsed.min(t);
        on_result = Some(r);
    }
    let off_result = off_result.expect("ran at least once");
    let on_result = on_result.expect("ran at least once");

    // Observation-only contract: recording may not change the training run.
    assert_eq!(
        off_result.curve.points, on_result.curve.points,
        "enabling telemetry changed the training curve"
    );
    assert_eq!(off_result.final_step_time, on_result.final_step_time);

    let overhead_pct = 100.0 * (on_elapsed - off_elapsed) / off_elapsed;
    println!("  recorder off: {off_elapsed:>7.2}s  (best of {reps})");
    println!("  recorder on : {on_elapsed:>7.2}s  (best of {reps})");
    println!("  overhead    : {overhead_pct:>+7.2}%  (budget <2%)");

    let doc = obj(vec![
        ("bench", Value::from("telemetry_overhead")),
        ("scale", Value::from(cli.scale_name.as_str())),
        ("seed", Value::U64(cli.seed)),
        ("samples", Value::U64(samples as u64)),
        ("reps", Value::U64(reps)),
        ("off_elapsed_sec", Value::from(off_elapsed)),
        ("on_elapsed_sec", Value::from(on_elapsed)),
        ("overhead_pct", Value::from(overhead_pct)),
        ("curves_identical", Value::Bool(true)),
        ("final_step_time", off_result.final_step_time.map_or(Value::Null, Value::from)),
    ]);
    cli.write_artifact(
        "BENCH_telemetry_overhead.json",
        &serde_json::to_string(&doc).expect("serialize"),
    );
    cli.finish_metrics("telemetry_overhead");
}
