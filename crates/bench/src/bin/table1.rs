//! Table I: per-step time of placements found by the hierarchical model with
//! different groupers (feed-forward learned vs METIS vs NetworkX fluid communities),
//! all using the Hierarchical Planner's seq2seq(after) placer trained with PPO.
//! With `--curves`, also writes `fig2.csv` — the BERT training curves per grouper
//! (paper Fig. 2).

use eagle_bench::{fmt_time, print_row, AgentKind, Cli, GrouperKind};
use eagle_core::{Algo, Curve, PlacerKind};
use eagle_devsim::Benchmark;

fn main() {
    let cli = Cli::parse();
    println!("Table I: per-step time (s) by grouper (scale = {})", cli.scale_name);
    println!("| Models        | Feed-forward | METIS | Networkx |");
    println!("|---------------|--------------|-------|----------|");
    let mut fig2: Vec<Curve> = Vec::new();
    let mut csv = String::from("model,grouper,step_time,invalid\n");
    for b in Benchmark::ALL {
        let mut cells = Vec::new();
        for (label, kind) in [
            ("Feed-forward", AgentKind::HierarchicalPlanner),
            ("METIS", AgentKind::FixedGroups(GrouperKind::Metis, PlacerKind::Seq2SeqAfter)),
            ("Networkx", AgentKind::FixedGroups(GrouperKind::Networkx, PlacerKind::Seq2SeqAfter)),
        ] {
            let out = eagle_bench::run(b, kind, Algo::Ppo, &cli);
            cells.push(fmt_time(out.final_step_time));
            csv.push_str(&format!(
                "{},{},{},{}\n",
                b.name(),
                label,
                fmt_time(out.final_step_time),
                out.num_invalid
            ));
            if cli.curves && b == Benchmark::BertBase {
                let mut c = out.curve;
                c.label = label.to_string();
                fig2.push(c);
            }
        }
        print_row(b.name(), &cells);
    }
    cli.write_artifact("table1.csv", &csv);
    if cli.curves {
        cli.write_artifact("fig2.csv", &Curve::multi_csv(&fig2));
    }
    let p = Benchmark::BertBase.paper_numbers();
    println!(
        "\npaper reference (BERT row): FFN 5.534 / METIS 7.526 / Networkx 7.584; table IV HP {p:?}",
        p = p.hierarchical_planner
    );
    cli.finish_metrics("table1");
}
