//! Landscape oracle: simulated-annealing bounds for each benchmark, reported next
//! to the learned placements in EXPERIMENTS.md. Not a paper baseline — a
//! certification of how much headroom the calibrated landscape offers.

use eagle_bench::{fmt_time, Cli};
use eagle_devsim::{predefined, search, Benchmark, Machine};

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();
    let iters = cli.samples_override.unwrap_or(4000);
    println!(
        "Simulated-annealing oracle ({iters} evals, topo-chunk groups, k = {})",
        cli.scale.num_groups
    );
    let mut csv = String::from("model,reference,oracle\n");
    for b in Benchmark::ALL {
        let graph = b.graph_for(&machine);
        let groups = search::topo_chunks(&graph, cli.scale.num_groups);
        let sa = search::simulated_annealing(&graph, &machine, &groups, iters, cli.seed);
        let reference = match b {
            Benchmark::InceptionV3 => {
                eagle_devsim::simulate(&graph, &machine, &predefined::single_gpu(&graph, &machine))
                    .step_time()
            }
            Benchmark::Gnmt => predefined::human_expert(&graph, &machine)
                .and_then(|p| eagle_devsim::simulate(&graph, &machine, &p).step_time()),
            Benchmark::BertBase => eagle_devsim::simulate(
                &graph,
                &machine,
                &predefined::bert_layer_split(&graph, &machine),
            )
            .step_time(),
        };
        println!(
            "  {:<13} reference {:<7} oracle {}",
            b.name(),
            fmt_time(reference),
            fmt_time(sa.best_time)
        );
        csv.push_str(&format!("{},{},{}\n", b.name(), fmt_time(reference), fmt_time(sa.best_time)));
    }
    cli.write_artifact("oracle.csv", &csv);
    cli.finish_metrics("oracle");
}
