//! Scale-stress bench: generation, validation, feature extraction, and
//! simulation wall-clock on GraphGen graphs one to two orders of magnitude
//! beyond the hand-built benchmarks (BERT-Base tops out near 10k ops).
//!
//! ```text
//! graph_scale [--sizes 10000,50000,100000] [--iters 3] [--seed S] [--out DIR]
//! ```
//!
//! For each target size the bench samples one deterministic GraphGen training
//! graph, then times `GraphGen::validate`, `features::node_features`, and
//! `eagle_devsim::simulate` under a round-robin placement over the paper
//! machine's devices (best of `--iters` runs each, so the numbers track the
//! code not the allocator's warmup). Emits `BENCH_graph_scale.json` with
//! per-size rows plus derived ops/sec rates, and hard-asserts that every graph
//! is valid and every simulation completes with a finite makespan — a 100k-op
//! simulate that OOMs the host or spins would fail CI here first.

use std::time::Instant;

use eagle_devsim::{DeviceId, Machine, Placement, SimOutcome};
use eagle_opgraph::features::node_features;
use eagle_opgraph::{GraphGen, GraphGenConfig};
use serde_json::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

struct Args {
    sizes: Vec<usize>,
    iters: usize,
    seed: u64,
    out_dir: std::path::PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![10_000, 50_000, 100_000],
        iters: 3,
        seed: 7,
        out_dir: std::path::PathBuf::from("results"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sizes" => {
                i += 1;
                args.sizes = argv
                    .get(i)
                    .expect("--sizes needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("size must be a number"))
                    .collect();
            }
            "--iters" => {
                i += 1;
                args.iters = argv.get(i).expect("--iters needs a value").parse().expect("number");
            }
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).expect("--seed needs a value").parse().expect("number");
            }
            "--out" => {
                i += 1;
                args.out_dir = argv.get(i).expect("--out needs a value").into();
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: graph_scale [--sizes N,N,...] [--iters K] [--seed S] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(args.iters >= 1, "--iters must be >= 1");
    args
}

/// Best-of-`iters` wall-clock of `f`, in seconds.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("iters >= 1"))
}

fn main() {
    let args = parse_args();
    let machine = Machine::paper_machine();
    let nd = machine.num_devices();
    let mut rows = Vec::new();

    println!(
        "| {:>8} | {:>8} | {:>9} | {:>10} | {:>10} | {:>10} | {:>9} |",
        "target", "ops", "edges", "gen (s)", "feat (s)", "sim (s)", "outcome"
    );
    for &target in &args.sizes {
        let cfg = GraphGenConfig {
            target_ops: target,
            // Low fixed pressure: the point is structural scale, and the graph
            // must stay schedulable on the paper machine's 16 GiB GPUs.
            memory_pressure: (0.05, 0.1),
            batch: (2, 8),
            ..GraphGenConfig::default()
        };
        let gen = GraphGen::new(cfg).expect("bench generator config is valid");
        let (gen_sec, graph) = time_best(args.iters, || gen.sample(args.seed ^ target as u64));
        let (validate_sec, _) = time_best(args.iters, || {
            GraphGen::validate(&graph).expect("generated graph must be valid")
        });
        let (features_sec, feats) = time_best(args.iters, || node_features(&graph));
        assert_eq!(feats.len(), graph.len());

        let placement =
            Placement::new((0..graph.len()).map(|i| DeviceId((i % nd) as u8)).collect());
        let (sim_sec, outcome) =
            time_best(args.iters, || eagle_devsim::simulate(&graph, &machine, &placement));
        let (outcome_label, makespan) = match &outcome {
            SimOutcome::Valid(stats) => {
                assert!(
                    stats.step_time.is_finite() && stats.step_time > 0.0,
                    "degenerate makespan at {target} ops"
                );
                ("valid", stats.step_time)
            }
            SimOutcome::Oom { .. } => panic!(
                "graph_scale placement must not OOM (target {target}); lower memory_pressure"
            ),
        };

        let n = graph.len();
        println!(
            "| {:>8} | {:>8} | {:>9} | {:>10.4} | {:>10.4} | {:>10.4} | {:>9} |",
            target,
            n,
            graph.num_edges(),
            gen_sec,
            features_sec,
            sim_sec,
            outcome_label
        );
        rows.push(obj(vec![
            ("target_ops", Value::from(target as u64)),
            ("ops", Value::from(n as u64)),
            ("edges", Value::from(graph.num_edges() as u64)),
            ("total_flops", Value::from(graph.total_flops())),
            ("generate_sec", Value::from(gen_sec)),
            ("validate_sec", Value::from(validate_sec)),
            ("node_features_sec", Value::from(features_sec)),
            ("simulate_sec", Value::from(sim_sec)),
            ("simulate_ops_per_sec", Value::from(n as f64 / sim_sec.max(1e-12))),
            ("features_ops_per_sec", Value::from(n as f64 / features_sec.max(1e-12))),
            ("outcome", Value::from(outcome_label)),
            ("makespan_sec", Value::from(makespan)),
        ]));
    }

    let doc = obj(vec![
        ("bench", Value::from("graph_scale")),
        ("seed", Value::from(args.seed)),
        ("iters", Value::from(args.iters as u64)),
        ("devices", Value::from(nd as u64)),
        (
            "note",
            Value::from(
                "best-of-iters wall-clock per stage on seeded GraphGen training graphs; \
                 absolute times are machine-dependent, the committed artifact documents \
                 scaling shape (ops/sec per stage), not a gate",
            ),
        ),
        ("rows", Value::Array(rows)),
    ]);
    std::fs::create_dir_all(&args.out_dir).expect("create output dir");
    let path = args.out_dir.join("BENCH_graph_scale.json");
    std::fs::write(&path, serde_json::to_string(&doc).expect("serialize bench doc"))
        .expect("write bench artifact");
    println!("wrote {}", path.display());
}
