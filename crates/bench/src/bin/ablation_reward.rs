//! Ablation: reward transform (`-sqrt(t)` — the paper's Eq. 4 — vs `-t` vs
//! `-log(1+t)`) for EAGLE(PPO) on GNMT. Supports DESIGN.md's design-choice index.

use eagle_bench::{fmt_time, Cli};
use eagle_core::{Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle_devsim::{Benchmark, Machine, MeasureConfig};
use eagle_rl::RewardTransform;
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();
    let b = Benchmark::Gnmt;
    let graph = b.graph_for(&machine);
    println!("Ablation: reward transform, EAGLE(PPO) on GNMT (scale = {})", cli.scale_name);
    let mut csv = String::from("transform,step_time,invalid\n");
    for tr in [RewardTransform::NegSqrt, RewardTransform::NegLinear, RewardTransform::NegLog] {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, cli.samples_for(b));
        cfg.reward = tr;
        let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
            .config(cfg)
            .measure(MeasureConfig::default())
            .env_seed(41)
            .recorder(cli.recorder.clone())
            .build()
            .expect("valid ablation trainer");
        let r = trainer.train(&agent, &mut params).expect("training run failed");
        println!(
            "  {:<10} -> {} (invalid {})",
            tr.label(),
            fmt_time(r.final_step_time),
            r.num_invalid
        );
        csv.push_str(&format!(
            "{},{},{}\n",
            tr.label(),
            fmt_time(r.final_step_time),
            r.num_invalid
        ));
    }
    cli.write_artifact("ablation_reward.csv", &csv);
    cli.finish_metrics("ablation_reward");
}
