//! Ablation: number of groups for EAGLE(PPO) on GNMT (the paper fixes k = 256;
//! more groups = finer placement control but a longer decode sequence).

use eagle_bench::{fmt_time, Cli};
use eagle_core::{Algo, EagleAgent, GraphSource, Trainer, TrainerConfig};
use eagle_devsim::{Benchmark, Machine, MeasureConfig};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();
    let b = Benchmark::Gnmt;
    let graph = b.graph_for(&machine);
    println!("Ablation: group count, EAGLE(PPO) on GNMT (scale = {})", cli.scale_name);
    let mut csv = String::from("num_groups,step_time,invalid\n");
    for k in [8usize, 16, 32, 64] {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let mut scale = cli.scale;
        scale.num_groups = k;
        let agent = EagleAgent::new(&mut params, &graph, &machine, scale, &mut rng);
        let cfg = TrainerConfig::paper(Algo::Ppo, cli.samples_for(b));
        let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
            .config(cfg)
            .measure(MeasureConfig::default())
            .env_seed(44)
            .recorder(cli.recorder.clone())
            .build()
            .expect("valid ablation trainer");
        let r = trainer.train(&agent, &mut params).expect("training run failed");
        println!("  k={k:<4} -> {} (invalid {})", fmt_time(r.final_step_time), r.num_invalid);
        csv.push_str(&format!("{k},{},{}\n", fmt_time(r.final_step_time), r.num_invalid));
    }
    cli.write_artifact("ablation_groups.csv", &csv);
    cli.finish_metrics("ablation_groups");
}
