//! Table IV (the headline result): per-step time of the best placement found by
//! Single GPU / Human Experts / Hierarchical Planner / Post / EAGLE(PPO) /
//! EAGLE(PPO+CE) on all three benchmarks. `OOM` marks placements that do not fit.
//! With `--curves`, writes `fig5.csv` / `fig6.csv` / `fig7.csv` — the per-model
//! training curves of the three RL approaches (paper Figs. 5-7).

use eagle_bench::{fmt_time, print_row, AgentKind, Cli};
use eagle_core::{Algo, Curve};
use eagle_devsim::{predefined, Benchmark, Environment, Machine, MeasureConfig};

fn main() {
    let cli = Cli::parse();
    let machine = Machine::paper_machine();
    println!("Table IV: per-step time (s) of found placements (scale = {})", cli.scale_name);
    println!("| Models        | Single GPU | Human Experts | Hierarchical Planner | Post | EAGLE (PPO) | EAGLE (PPO+CE) |");
    println!("|---------------|------------|---------------|----------------------|------|-------------|----------------|");
    let mut csv = String::from("model,approach,step_time,invalid\n");
    for b in Benchmark::ALL {
        let graph = b.graph_for(&machine);
        let mut env = Environment::builder(graph.clone(), machine.clone())
            .measure(MeasureConfig::default())
            .seed(500)
            .recorder(cli.recorder.clone())
            .build()
            .expect("valid table environment");
        let mut cells = Vec::new();

        // Static baselines under the final measurement protocol.
        let single = env.evaluate_final(&predefined::single_gpu(&graph, &machine));
        cells.push(fmt_time(single));
        csv.push_str(&format!("{},Single GPU,{},0\n", b.name(), fmt_time(single)));
        let expert =
            predefined::human_expert(&graph, &machine).and_then(|p| env.evaluate_final(&p));
        cells.push(fmt_time(expert));
        csv.push_str(&format!("{},Human Experts,{},0\n", b.name(), fmt_time(expert)));

        // Learned approaches.
        let mut curves: Vec<Curve> = Vec::new();
        for (label, kind, algo) in [
            ("Hierarchical Planner", AgentKind::HierarchicalPlanner, Algo::Ppo),
            ("Post", AgentKind::Post, Algo::PpoCe),
            ("EAGLE (PPO)", AgentKind::Eagle, Algo::Ppo),
            ("EAGLE (PPO+CE)", AgentKind::Eagle, Algo::PpoCe),
        ] {
            let out = eagle_bench::run(b, kind, algo, &cli);
            cells.push(fmt_time(out.final_step_time));
            csv.push_str(&format!(
                "{},{},{},{}\n",
                b.name(),
                label,
                fmt_time(out.final_step_time),
                out.num_invalid
            ));
            if cli.curves {
                let mut c = out.curve;
                c.label = label.to_string();
                curves.push(c);
            }
        }
        print_row(b.name(), &cells);
        if cli.curves {
            let fig = match b {
                Benchmark::InceptionV3 => "fig5.csv",
                Benchmark::Gnmt => "fig6.csv",
                Benchmark::BertBase => "fig7.csv",
            };
            cli.write_artifact(fig, &Curve::multi_csv(&curves));
        }
        let p = b.paper_numbers();
        println!(
            "  (paper: {} / {} / {:.3} / {:.3} / {:.3} / {:.3})",
            p.single_gpu.map(|v| format!("{v:.3}")).unwrap_or("OOM".into()),
            p.human_expert.map(|v| format!("{v:.3}")).unwrap_or("OOM".into()),
            p.hierarchical_planner,
            p.post,
            p.eagle_ppo,
            p.eagle_ppo_ce
        );
    }
    cli.write_artifact("table4.csv", &csv);
    cli.finish_metrics("table4");
}
