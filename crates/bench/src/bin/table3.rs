//! Table III: per-step time of placements found by the full EAGLE agent trained
//! with REINFORCE vs PPO vs PPO joined with cross-entropy minimization.

use eagle_bench::{fmt_time, print_row, AgentKind, Cli};
use eagle_core::Algo;
use eagle_devsim::Benchmark;

fn main() {
    let cli = Cli::parse();
    println!(
        "Table III: EAGLE per-step time (s) by training algorithm (scale = {})",
        cli.scale_name
    );
    println!("| Models        | REINFORCE | PPO | PPO+CE |");
    println!("|---------------|-----------|-----|--------|");
    let mut csv = String::from("model,algo,step_time,invalid\n");
    for b in Benchmark::ALL {
        let mut cells = Vec::new();
        for algo in [Algo::Reinforce, Algo::Ppo, Algo::PpoCe] {
            let out = eagle_bench::run(b, AgentKind::Eagle, algo, &cli);
            cells.push(fmt_time(out.final_step_time));
            csv.push_str(&format!(
                "{},{},{},{}\n",
                b.name(),
                algo.label(),
                fmt_time(out.final_step_time),
                out.num_invalid
            ));
        }
        print_row(b.name(), &cells);
    }
    cli.write_artifact("table3.csv", &csv);
    println!("\npaper reference: Inception .067/.067/.067; GNMT 2.216/1.379/1.507; BERT 2.425/2.287/2.488");
    cli.finish_metrics("table3");
}
