//! Serving-path throughput bench: requests/sec and p50/p99 latency of the
//! `eagle-serve` daemon under synthetic closed-loop client load, plus the wave-
//! coalescing and hot-reload gates.
//!
//! ```text
//! serve_throughput [--requests N] [--concurrency 1,4,16,32] [--candidates K]
//!                  [--scale quick] [--coalesce-us 200] [--sim-workers W]
//!                  [--family inception_v3] [--addr HOST:PORT]
//!                  [--p99-budget-ms MS] [--min-rps RPS] [--no-hot-reload]
//!                  [--no-overload] [--overload-capacity N]
//!                  [--overload-requests N] [--overload-p99-budget-ms MS]
//!                  [--out DIR]
//! ```
//!
//! Default mode spins up an **in-process** daemon over real localhost TCP with
//! a freshly seeded policy store, so the run is self-contained and can read the
//! server's recorder. Gates (hard asserts):
//!
//! * zero error replies across every phase;
//! * wave coalescing: `serve.forwards / requests < 1` at concurrency ≥ 4
//!   (in-process mode only — needs the recorder);
//! * determinism: the same request replayed yields the identical placement;
//! * hot-reload: republishing the policy mid-load swaps the served version
//!   with zero errors (both versions observed in replies);
//! * overload (in-process mode only): a second, deliberately tiny daemon
//!   (`--overload-capacity` queue slots) is burst-driven by 4x as many
//!   closed-loop clients; admission must shed a non-zero number of requests
//!   with typed `Overloaded` replies carrying retry hints, zero non-overload
//!   errors, the queue depth at every wave cut bounded by the capacity, and —
//!   under `--overload-p99-budget-ms` — the p99 of *admitted* requests within
//!   budget (shedding is what keeps the survivors fast);
//! * optional `--p99-budget-ms` / `--min-rps` CI budgets.
//!
//! With `--addr` the bench instead drives an already-running daemon (the CI
//! serve-smoke job starts the real `eagle-serve` binary and points this at
//! it); recorder-based gates are skipped, error/latency gates still apply.
//!
//! Latency is measured client-side around each request round-trip; throughput
//! is total completed requests over wall-clock. Absolute numbers are
//! machine-dependent — CI gates only the ratios and the generous p99 budget.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eagle_core::AgentScale;
use eagle_devsim::{Benchmark, Machine};
use eagle_obs::Recorder;
use eagle_serve::{
    api::{ErrorCode, PlaceRequest},
    publish_state, untrained_state, Client, PolicyStore, RouterConfig, Server, ServerConfig,
};
use serde_json::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

struct Args {
    requests: u64,
    concurrency: Vec<usize>,
    candidates: u32,
    scale: String,
    coalesce_us: u64,
    sim_workers: usize,
    family: String,
    addr: Option<String>,
    p99_budget_ms: Option<f64>,
    min_rps: Option<f64>,
    hot_reload: bool,
    overload: bool,
    overload_capacity: usize,
    overload_requests: u64,
    overload_p99_budget_ms: Option<f64>,
    out: std::path::PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 1500,
        concurrency: vec![1, 4, 16, 32],
        candidates: 1,
        scale: "quick".into(),
        coalesce_us: 200,
        sim_workers: 0,
        family: "inception_v3".into(),
        addr: None,
        p99_budget_ms: None,
        min_rps: None,
        hot_reload: true,
        overload: true,
        overload_capacity: 8,
        overload_requests: 256,
        overload_p99_budget_ms: None,
        out: "results".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--no-hot-reload" {
            args.hot_reload = false;
            i += 1;
            continue;
        }
        if flag == "--no-overload" {
            args.overload = false;
            i += 1;
            continue;
        }
        let value = argv.get(i + 1).unwrap_or_else(|| {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        });
        match flag {
            "--requests" => args.requests = value.parse().expect("--requests integer"),
            "--concurrency" => {
                args.concurrency = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("--concurrency comma-separated integers"))
                    .collect();
            }
            "--candidates" => args.candidates = value.parse().expect("--candidates integer"),
            "--scale" => args.scale = value.clone(),
            "--coalesce-us" => args.coalesce_us = value.parse().expect("--coalesce-us integer"),
            "--sim-workers" => args.sim_workers = value.parse().expect("--sim-workers integer"),
            "--family" => args.family = value.clone(),
            "--addr" => args.addr = Some(value.clone()),
            "--p99-budget-ms" => {
                args.p99_budget_ms = Some(value.parse().expect("--p99-budget-ms number"))
            }
            "--min-rps" => args.min_rps = Some(value.parse().expect("--min-rps number")),
            "--overload-capacity" => {
                args.overload_capacity =
                    value.parse().expect("--overload-capacity positive integer");
                assert!(args.overload_capacity > 0, "--overload-capacity must be positive");
            }
            "--overload-requests" => {
                args.overload_requests = value.parse().expect("--overload-requests integer")
            }
            "--overload-p99-budget-ms" => {
                args.overload_p99_budget_ms =
                    Some(value.parse().expect("--overload-p99-budget-ms number"))
            }
            "--out" => args.out = value.into(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    args
}

/// One closed-loop load phase: `concurrency` client connections issue
/// `requests` total placements by registered key.
struct PhaseResult {
    concurrency: usize,
    requests: u64,
    errors: u64,
    elapsed_s: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    forwards_per_request: Option<f64>,
    versions: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    addr: SocketAddr,
    family: &str,
    graph_key: &str,
    candidates: u32,
    concurrency: usize,
    requests: u64,
    recorder: Option<&Recorder>,
    seq: &AtomicU64,
) -> PhaseResult {
    let forwards0 = recorder.map(|r| r.counter_value("serve.forwards"));
    let issued = AtomicU64::new(0);
    let start = Instant::now();
    let results: Vec<(Vec<f64>, u64, Vec<String>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let issued = &issued;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::new();
                    let mut errors = 0u64;
                    let mut versions: Vec<String> = Vec::new();
                    while issued.fetch_add(1, Ordering::SeqCst) < requests {
                        let id = seq.fetch_add(1, Ordering::SeqCst);
                        let mut req = PlaceRequest::by_key(id, family, graph_key);
                        req.candidates = candidates;
                        let t0 = Instant::now();
                        let resp = client.place(req).expect("round-trip");
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        if resp.error.is_some() {
                            errors += 1;
                        } else if let Some(v) = resp.policy_version {
                            if !versions.contains(&v) {
                                versions.push(v);
                            }
                        }
                    }
                    (latencies, errors, versions)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    let mut versions: Vec<String> = Vec::new();
    for (l, e, vs) in results {
        latencies.extend(l);
        errors += e;
        for v in vs {
            if !versions.contains(&v) {
                versions.push(v);
            }
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let done = latencies.len() as u64;
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let forwards_per_request = forwards0.map(|f0| {
        let df = recorder.unwrap().counter_value("serve.forwards") - f0;
        df as f64 / done as f64
    });
    PhaseResult {
        concurrency,
        requests: done,
        errors,
        elapsed_s,
        rps: done as f64 / elapsed_s,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        forwards_per_request,
        versions,
    }
}

fn main() {
    let args = parse_args();

    // --- Server: in-process (own store) or external (--addr). ---
    let mut _server_keep: Option<(Server, std::path::PathBuf)> = None;
    let (addr, recorder, store_dir): (SocketAddr, Option<Recorder>, Option<std::path::PathBuf>) =
        match &args.addr {
            Some(a) => (a.parse().expect("--addr HOST:PORT"), None, None),
            None => {
                let store_dir =
                    std::env::temp_dir().join(format!("eagle-serve-bench-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&store_dir);
                let machine = Machine::paper_machine();
                let bench = Benchmark::ALL
                    .iter()
                    .copied()
                    .find(|b| b.name() == args.family)
                    .expect("--family must name a paper benchmark in in-process mode");
                let graph = bench.graph_for(&machine);
                let scale = AgentScale::from_name(&args.scale).expect("known --scale");
                let state = untrained_state(&graph, &machine, scale, 1).expect("seed state");
                let v1 =
                    publish_state(&store_dir, &args.family, &args.scale, &state).expect("publish");
                println!("seeded store {} with {} version {v1}", store_dir.display(), args.family);

                let recorder = Recorder::new();
                let store = Arc::new(PolicyStore::open(&store_dir, recorder.clone()));
                let router = RouterConfig {
                    coalesce: std::time::Duration::from_micros(args.coalesce_us),
                    sim_workers: args.sim_workers,
                    ..RouterConfig::default()
                };
                let server = Server::start(
                    ServerConfig { addr: "127.0.0.1:0".into(), router },
                    store,
                    recorder.clone(),
                )
                .expect("server start");
                let addr = server.local_addr();
                _server_keep = Some((server, store_dir.clone()));
                (addr, Some(recorder), Some(store_dir))
            }
        };

    // --- Register the graph once; requests then reference it by key. ---
    let machine = Machine::paper_machine();
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == args.family)
        .expect("--family must name a paper benchmark");
    let graph = bench.graph_for(&machine);
    let mut client = Client::connect(addr).expect("connect");
    let graph_key = client.register_graph(&graph).expect("register graph");
    println!("{}: {} ops, graph_key {graph_key}, serving at {addr}", args.family, graph.len());

    // --- Determinism: identical request twice => identical placement. ---
    let mut req = PlaceRequest::by_key(1_000_000, &args.family, &graph_key);
    req.seed = 42;
    req.candidates = args.candidates;
    let a = client.place(req.clone()).expect("place");
    let b = client.place(req).expect("place");
    assert!(a.error.is_none() && b.error.is_none(), "determinism probe failed: {a:?}");
    assert_eq!(a.placement, b.placement, "replayed request must yield the identical placement");
    assert_eq!(a.predicted_step_time, b.predicted_step_time);
    println!(
        "determinism probe ok: {} ops placed, predicted step time {:.6} s",
        a.placement.as_ref().unwrap().len(),
        a.predicted_step_time.unwrap()
    );

    // --- Concurrency ladder. ---
    let seq = AtomicU64::new(0);
    let mut phases: Vec<PhaseResult> = Vec::new();
    for &c in &args.concurrency {
        let phase = run_phase(
            addr,
            &args.family,
            &graph_key,
            args.candidates,
            c,
            args.requests,
            recorder.as_ref(),
            &seq,
        );
        let fpr = phase.forwards_per_request.map_or(String::from("n/a"), |f| format!("{f:.3}"));
        println!(
            "concurrency {:>3}: {:>7.0} req/s  p50 {:>7.3} ms  p99 {:>7.3} ms  errors {}  \
             forwards/req {fpr}",
            phase.concurrency, phase.rps, phase.p50_ms, phase.p99_ms, phase.errors
        );
        assert_eq!(phase.errors, 0, "zero error replies expected under clean load");
        if let Some(f) = phase.forwards_per_request {
            if c >= 4 {
                assert!(
                    f < 1.0,
                    "wave coalescing gate: {f:.3} forwards/request at concurrency {c} (expected < 1)"
                );
            }
        }
        phases.push(phase);
    }

    // --- Hot reload under load (in-process mode only). ---
    let mut hot_reload_versions: Vec<String> = Vec::new();
    if args.hot_reload {
        if let Some(dir) = &store_dir {
            let scale = AgentScale::from_name(&args.scale).unwrap();
            let state2 = untrained_state(&graph, &machine, scale, 2).expect("second seed state");
            let dir = dir.clone();
            let family = args.family.clone();
            let scale_name = args.scale.clone();
            let reload_requests = args.requests.min(600);
            let (mut phase, v2) = std::thread::scope(|s| {
                let publisher = s.spawn(move || {
                    // Let the load build up, then swap the policy underneath it.
                    std::thread::sleep(std::time::Duration::from_millis(120));
                    publish_state(&dir, &family, &scale_name, &state2).expect("republish")
                });
                let phase = run_phase(
                    addr,
                    &args.family,
                    &graph_key,
                    args.candidates,
                    8,
                    reload_requests,
                    recorder.as_ref(),
                    &seq,
                );
                let v2 = publisher.join().expect("publisher thread");
                println!("republished {} as version {v2}", args.family);
                (phase, v2)
            });
            assert_eq!(phase.errors, 0, "hot reload must not drop or fail in-flight requests");
            // A small request budget can drain before the publisher thread even
            // swaps the file; poll (bounded) until the new version is served so
            // the gate tests the reload itself, not scheduler timing.
            if !phase.versions.contains(&v2) {
                let mut client = Client::connect(addr).expect("connect");
                let deadline = Instant::now() + std::time::Duration::from_secs(30);
                loop {
                    let id = seq.fetch_add(1, Ordering::SeqCst);
                    let mut req = PlaceRequest::by_key(id, &args.family, &graph_key);
                    req.candidates = args.candidates;
                    let resp = client.place(req).expect("round-trip");
                    assert!(
                        resp.error.is_none(),
                        "hot reload poll request failed: {:?}",
                        resp.error
                    );
                    let got = resp.policy_version.expect("versioned reply");
                    if !phase.versions.contains(&got) {
                        phase.versions.push(got.clone());
                    }
                    if got == v2 {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "daemon never served republished version {v2}, saw {:?}",
                        phase.versions
                    );
                }
            }
            assert!(
                phase.versions.len() >= 2,
                "expected replies from both policy versions across the swap, saw {:?}",
                phase.versions
            );
            println!(
                "hot reload ok: {} req at 8 conns, versions {:?}, zero errors",
                phase.requests, phase.versions
            );
            hot_reload_versions = phase.versions;
        }
    }

    // --- Overload phase (in-process mode only): a second, deliberately tiny
    // daemon on the same store, burst-driven 4x over its queue capacity.
    // Saturation must degrade by typed shedding — bounded queue, retry hints,
    // fast survivors — never by unbounded buffering or dropped connections. ---
    let mut overload_row = Value::Null;
    if args.overload {
        if let Some(dir) = &store_dir {
            let capacity = args.overload_capacity;
            let recorder2 = Recorder::new();
            let store2 = Arc::new(PolicyStore::open(dir, recorder2.clone()));
            let router2 = RouterConfig {
                coalesce: std::time::Duration::from_micros(args.coalesce_us),
                sim_workers: args.sim_workers,
                queue_capacity: capacity,
                max_wave: (capacity / 2).max(1),
                ..RouterConfig::default()
            };
            let server2 = Server::start(
                ServerConfig { addr: "127.0.0.1:0".into(), router: router2 },
                store2,
                recorder2.clone(),
            )
            .expect("overload server start");
            let addr2 = server2.local_addr();
            let mut probe = Client::connect(addr2).expect("connect");
            let key2 = probe.register_graph(&graph).expect("register graph");

            // Deterministic deadline sheds: a zero budget is refused at
            // admission with the dedicated code, no load required.
            let deadline_probes = 4u64;
            for i in 0..deadline_probes {
                let req =
                    PlaceRequest::by_key(2_000_000 + i, &args.family, &key2).with_deadline_ms(0);
                let resp = probe.place(req).expect("deadline probe round-trip");
                let err = resp.error.expect("zero deadline budget must be refused");
                assert_eq!(
                    err.code,
                    ErrorCode::DeadlineExceeded,
                    "zero deadline must shed with DeadlineExceeded, got {:?}",
                    err.code
                );
            }

            let clients = capacity * 4;
            let total = args.overload_requests;
            let candidates = args.candidates;
            let family = args.family.as_str();
            let issued = AtomicU64::new(0);
            let seq2 = AtomicU64::new(3_000_000);
            let start = Instant::now();
            let results: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let (issued, seq2, key2) = (&issued, &seq2, &key2);
                        s.spawn(move || {
                            let mut client = Client::connect(addr2).expect("connect");
                            let mut admitted_ms = Vec::new();
                            let mut shed = 0u64;
                            let mut other = 0u64;
                            while issued.fetch_add(1, Ordering::SeqCst) < total {
                                let id = seq2.fetch_add(1, Ordering::SeqCst);
                                let mut req = PlaceRequest::by_key(id, family, key2);
                                req.candidates = candidates;
                                let t0 = Instant::now();
                                // A dropped connection under burst is the bug
                                // this phase exists to catch.
                                let resp =
                                    client.place(req).expect("overload must not drop connections");
                                match resp.error {
                                    None => admitted_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                                    Some(err) if err.code == ErrorCode::Overloaded => {
                                        assert!(
                                            err.retry_after_ms.unwrap_or(0) >= 1,
                                            "Overloaded reply must carry a retry hint"
                                        );
                                        shed += 1;
                                    }
                                    Some(_) => other += 1,
                                }
                            }
                            (admitted_ms, shed, other)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("overload client")).collect()
            });
            let elapsed_s = start.elapsed().as_secs_f64();
            let mut admitted_ms: Vec<f64> = Vec::new();
            let (mut shed, mut other) = (0u64, 0u64);
            for (l, s_, o) in results {
                admitted_ms.extend(l);
                shed += s_;
                other += o;
            }
            assert_eq!(other, 0, "only Overloaded errors are acceptable under burst");
            assert!(shed > 0, "{clients} clients against {capacity} queue slots must shed");
            assert!(!admitted_ms.is_empty(), "admitted requests must still complete under burst");
            let depth =
                recorder2.histogram("serve.queue_depth").expect("queue depth histogram exists");
            assert!(
                depth.max <= capacity as f64,
                "queue depth {} exceeded capacity {capacity}: admission is not bounding memory",
                depth.max
            );
            admitted_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p99_admitted = admitted_ms[((admitted_ms.len() - 1) as f64 * 0.99) as usize];
            if let Some(budget) = args.overload_p99_budget_ms {
                assert!(
                    p99_admitted <= budget,
                    "admitted p99 {p99_admitted:.3} ms exceeds overload budget {budget} ms"
                );
            }
            println!(
                "overload: {clients} clients vs {capacity} slots — {} admitted (p99 \
                 {p99_admitted:.3} ms), {shed} shed with retry hints, depth max {:.0}, \
                 {deadline_probes} deadline probes typed",
                admitted_ms.len(),
                depth.max
            );
            overload_row = obj(vec![
                ("capacity", Value::U64(capacity as u64)),
                ("clients", Value::U64(clients as u64)),
                ("requests", Value::U64(total)),
                ("admitted", Value::U64(admitted_ms.len() as u64)),
                ("shed", Value::U64(shed)),
                ("deadline_probes", Value::U64(deadline_probes)),
                ("elapsed_s", Value::F64(elapsed_s)),
                ("p99_admitted_ms", Value::F64(p99_admitted)),
                ("queue_depth_max", Value::F64(depth.max)),
            ]);
            server2.shutdown();
        } else {
            println!("overload phase skipped: needs in-process mode (no --addr)");
        }
    }

    // --- Optional CI budgets. ---
    let last = phases.last().expect("at least one phase");
    if let Some(budget) = args.p99_budget_ms {
        let worst = phases.iter().map(|p| p.p99_ms).fold(0.0, f64::max);
        assert!(worst <= budget, "p99 {worst:.3} ms exceeds budget {budget} ms");
        println!("p99 budget ok: {worst:.3} ms <= {budget} ms");
    }
    if let Some(min) = args.min_rps {
        let best = phases.iter().map(|p| p.rps).fold(0.0, f64::max);
        assert!(best >= min, "best throughput {best:.0} req/s below --min-rps {min}");
        println!("throughput floor ok: {best:.0} req/s >= {min}");
    }

    // --- Artifact. ---
    let rows: Vec<Value> = phases
        .iter()
        .map(|p| {
            obj(vec![
                ("concurrency", Value::U64(p.concurrency as u64)),
                ("requests", Value::U64(p.requests)),
                ("errors", Value::U64(p.errors)),
                ("elapsed_s", Value::F64(p.elapsed_s)),
                ("rps", Value::F64(p.rps)),
                ("p50_ms", Value::F64(p.p50_ms)),
                ("p99_ms", Value::F64(p.p99_ms)),
                ("forwards_per_request", p.forwards_per_request.map_or(Value::Null, Value::F64)),
                (
                    "versions",
                    Value::Array(p.versions.iter().map(|v| Value::String(v.clone())).collect()),
                ),
            ])
        })
        .collect();
    let artifact = obj(vec![
        ("bench", Value::String("serve_throughput".into())),
        ("family", Value::String(args.family.clone())),
        ("graph_ops", Value::U64(graph.len() as u64)),
        ("scale", Value::String(args.scale.clone())),
        ("candidates", Value::U64(args.candidates as u64)),
        ("coalesce_us", Value::U64(args.coalesce_us)),
        ("mode", Value::String(if args.addr.is_some() { "external" } else { "in-process" }.into())),
        ("phases", Value::Array(rows)),
        (
            "hot_reload_versions",
            Value::Array(hot_reload_versions.iter().map(|v| Value::String(v.clone())).collect()),
        ),
        ("overload", overload_row),
    ]);
    std::fs::create_dir_all(&args.out).expect("create out dir");
    let path = args.out.join("BENCH_serve_throughput.json");
    std::fs::write(&path, serde_json::to_string(&artifact).expect("serialize artifact"))
        .expect("write artifact");
    println!("wrote {}", path.display());
    println!(
        "summary: best {:.0} req/s, final-phase p99 {:.3} ms, coalescing {} at c={}",
        phases.iter().map(|p| p.rps).fold(0.0, f64::max),
        last.p99_ms,
        last.forwards_per_request.map_or(String::from("n/a"), |f| format!("{f:.3}")),
        last.concurrency
    );

    if let Some((server, dir)) = _server_keep.take() {
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
