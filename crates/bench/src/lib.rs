//! # eagle-bench
//!
//! The benchmark harness that regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md for the experiment index):
//!
//! * `table1` — grouper comparison (feed-forward vs METIS vs NetworkX), Table I,
//!   with `--curves` emitting the BERT training curves of Fig. 2.
//! * `table2` — placer comparison (seq2seq before/after attention vs GCN), Table II.
//! * `table3` — training-algorithm comparison (REINFORCE / PPO / PPO+CE), Table III.
//! * `table4` — headline comparison against all baselines, Table IV, with
//!   `--curves` emitting the per-model curves of Figs. 5–7.
//! * `ablation_*` — design-choice sweeps beyond the paper's tables.
//!
//! Every binary accepts `--scale tiny|quick|paper` (default `quick`), `--samples N`
//! overrides per-model sample budgets, `--seed S`, `--out DIR` for CSV exports, and
//! `--metrics PATH` to stream structured telemetry (spans, counters, histograms) to
//! a JSONL file and print an end-of-run summary table. `--workers N` pins the
//! auto-detected worker-pool size so perf runs reproduce across differently
//! sized CI hosts. `rollout_throughput` also accepts `--baseline PATH` to gate
//! its speedup ratios against a committed baseline artifact (exit non-zero on
//! a >25% regression).
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

use eagle_core::{
    load_checkpoint, AgentScale, Algo, Curve, EagleAgent, FixedGroupAgent, GraphSource, HpAgent,
    PlacementAgent, PlacerKind, TrainResult, Trainer, TrainerConfig, CHECKPOINT_FILE,
};
use eagle_devsim::{Benchmark, Machine, MeasureConfig};
use eagle_obs::Recorder;
use eagle_partition::{fluid::FluidCommunities, metis_like::MetisLike, Partitioner};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Agent scale preset.
    pub scale: AgentScale,
    /// Name of the scale preset (for reporting).
    pub scale_name: String,
    /// Per-model sample-budget override.
    pub samples_override: Option<usize>,
    /// RNG seed for agent init and sampling.
    pub seed: u64,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: std::path::PathBuf,
    /// Whether to export training curves.
    pub curves: bool,
    /// Telemetry JSONL destination (`--metrics PATH`), if requested.
    pub metrics: Option<std::path::PathBuf>,
    /// Root directory for training checkpoints (`--checkpoint-dir DIR`); each
    /// (benchmark, agent, algorithm) run checkpoints into its own subdirectory.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Minibatches between auto-checkpoints (`--checkpoint-every N`, default 10).
    pub checkpoint_every: usize,
    /// Resume interrupted runs from their checkpoints (`--resume`; requires
    /// `--checkpoint-dir`). Runs without a checkpoint start fresh; corrupt
    /// checkpoints abort rather than being silently clobbered.
    pub resume: bool,
    /// Baseline artifact to gate against (`--baseline PATH`): benchmarks that
    /// support it compare their machine-robust ratios (speedups, not absolute
    /// wall-clock) against this file and exit non-zero on a >25% regression.
    pub baseline: Option<std::path::PathBuf>,
    /// Worker-pool override (`--workers N`): pins the auto-detected core count
    /// every `workers = 0` consumer resolves to, so perf runs are reproducible
    /// across differently-sized CI hosts. `None` keeps auto-detection.
    pub workers: Option<usize>,
    /// The run's telemetry recorder: enabled iff `--metrics` was passed,
    /// otherwise a free no-op.
    pub recorder: Recorder,
}

impl Cli {
    /// Parses `std::env::args()`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        let mut scale_name = "quick".to_string();
        let mut samples_override = None;
        let mut seed = 7u64;
        let mut out_dir = std::path::PathBuf::from("results");
        let mut curves = false;
        let mut metrics: Option<std::path::PathBuf> = None;
        let mut checkpoint_dir: Option<std::path::PathBuf> = None;
        let mut checkpoint_every = 10usize;
        let mut resume = false;
        let mut baseline: Option<std::path::PathBuf> = None;
        let mut workers: Option<usize> = None;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale_name = args.get(i).expect("--scale needs a value").clone();
                }
                "--samples" => {
                    i += 1;
                    samples_override = Some(
                        args.get(i).expect("--samples needs a value").parse().expect("number"),
                    );
                }
                "--seed" => {
                    i += 1;
                    seed = args.get(i).expect("--seed needs a value").parse().expect("number");
                }
                "--out" => {
                    i += 1;
                    out_dir = args.get(i).expect("--out needs a value").into();
                }
                "--curves" => curves = true,
                "--metrics" => {
                    i += 1;
                    metrics = Some(args.get(i).expect("--metrics needs a value").into());
                }
                "--checkpoint-dir" => {
                    i += 1;
                    checkpoint_dir =
                        Some(args.get(i).expect("--checkpoint-dir needs a value").into());
                }
                "--checkpoint-every" => {
                    i += 1;
                    checkpoint_every = args
                        .get(i)
                        .expect("--checkpoint-every needs a value")
                        .parse()
                        .expect("number");
                }
                "--resume" => resume = true,
                "--baseline" => {
                    i += 1;
                    baseline = Some(args.get(i).expect("--baseline needs a value").into());
                }
                "--workers" => {
                    i += 1;
                    workers = Some(
                        args.get(i).expect("--workers needs a value").parse().expect("number"),
                    );
                }
                other => {
                    eprintln!(
                        "unknown flag {other}; usage: [--scale tiny|quick|paper] [--samples N] [--seed S] [--out DIR] [--curves] [--metrics PATH] [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--baseline PATH] [--workers N]"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        let scale = AgentScale::from_name(&scale_name)
            .unwrap_or_else(|| panic!("unknown scale '{scale_name}'"));
        if resume && checkpoint_dir.is_none() {
            eprintln!("--resume requires --checkpoint-dir DIR");
            std::process::exit(2);
        }
        if let Some(n) = workers {
            if n == 0 {
                eprintln!("--workers needs a value >= 1 (omit the flag for auto-detection)");
                std::process::exit(2);
            }
            eagle_obs::set_available_workers(n);
        }
        let recorder = if metrics.is_some() { Recorder::new() } else { Recorder::disabled() };
        Self {
            scale,
            scale_name,
            samples_override,
            seed,
            out_dir,
            curves,
            metrics,
            checkpoint_dir,
            checkpoint_every,
            resume,
            baseline,
            workers,
            recorder,
        }
    }

    /// Default per-model training budgets at this scale: larger graphs get more
    /// samples, matching the paper's longer training times for GNMT/BERT.
    pub fn samples_for(&self, b: Benchmark) -> usize {
        if let Some(s) = self.samples_override {
            return s;
        }
        let base = match b {
            Benchmark::InceptionV3 => 300,
            Benchmark::Gnmt => 900,
            Benchmark::BertBase => 900,
        };
        match self.scale_name.as_str() {
            "tiny" => base / 10,
            "paper" => base * 4,
            _ => base,
        }
    }

    /// Flushes telemetry at the end of a run: writes the JSONL stream to the
    /// `--metrics` path and prints the human-readable summary table. A no-op
    /// when `--metrics` was not passed.
    pub fn finish_metrics(&self, run: &str) {
        let Some(path) = &self.metrics else { return };
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create metrics dir");
        }
        eagle_obs::write_jsonl(&self.recorder, path, run).expect("write metrics JSONL");
        println!("wrote {}", path.display());
        print!("{}", eagle_obs::summary(&self.recorder));
    }

    /// Writes an artifact into the output directory, creating it if needed.
    pub fn write_artifact(&self, name: &str, contents: &str) {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        let path = self.out_dir.join(name);
        std::fs::write(&path, contents).expect("write artifact");
        println!("wrote {}", path.display());
    }
}

/// Which agent an experiment trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentKind {
    /// Full EAGLE (learned grouper + linking RNN + seq2seq-before placer).
    Eagle,
    /// Hierarchical Planner (sampled grouping + seq2seq-after placer).
    HierarchicalPlanner,
    /// Fixed heuristic groups + a chosen placer network.
    FixedGroups(GrouperKind, PlacerKind),
    /// Post (fixed groups + simple placer; train with [`Algo::PpoCe`]).
    Post,
}

impl AgentKind {
    /// Filesystem-safe identifier used to give each run its own checkpoint
    /// subdirectory.
    pub fn slug(self) -> String {
        match self {
            AgentKind::Eagle => "eagle".to_string(),
            AgentKind::HierarchicalPlanner => "hp".to_string(),
            AgentKind::FixedGroups(g, p) => format!("{}-{}", g.label(), p.label())
                .to_lowercase()
                .replace(|c: char| !c.is_ascii_alphanumeric(), "-"),
            AgentKind::Post => "post".to_string(),
        }
    }
}

/// Which fixed grouping a [`AgentKind::FixedGroups`] agent uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrouperKind {
    /// Multilevel k-way partitioner.
    Metis,
    /// Asynchronous fluid communities.
    Networkx,
}

impl GrouperKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            GrouperKind::Metis => "METIS",
            GrouperKind::Networkx => "Networkx",
        }
    }

    /// Runs the heuristic.
    pub fn partition(self, graph: &eagle_opgraph::OpGraph, k: usize) -> Vec<usize> {
        match self {
            GrouperKind::Metis => MetisLike::default().partition(graph, k),
            GrouperKind::Networkx => FluidCommunities::default().partition(graph, k),
        }
    }
}

/// Outcome of one (benchmark, agent, algorithm) training run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final per-step time of the best placement (`None` = never found a valid one).
    pub final_step_time: Option<f64>,
    /// Training curve.
    pub curve: Curve,
    /// Invalid placements encountered.
    pub num_invalid: usize,
}

/// Starts training fresh, or — when `resume` is set and `cfg.checkpoint_dir`
/// holds a readable checkpoint — continues the interrupted run bit-identically.
///
/// A missing checkpoint file starts fresh (the normal first run); a corrupt,
/// truncated, or mismatched one aborts with the typed error's message rather
/// than silently clobbering state the user asked to keep.
pub fn train_resumable(
    agent: &impl PlacementAgent,
    params: &mut Params,
    trainer: &Trainer,
    resume: bool,
) -> TrainResult {
    if resume {
        if let Some(dir) = &trainer.config().checkpoint_dir {
            let path = dir.join(CHECKPOINT_FILE);
            match load_checkpoint(&path) {
                Ok(state) => {
                    println!(
                        "resuming {} from {} (sample {}/{})",
                        agent.name(),
                        path.display(),
                        state.samples,
                        trainer.config().total_samples
                    );
                    return trainer.train_from(agent, params, state).unwrap_or_else(|e| {
                        eprintln!("cannot resume from {}: {e}", path.display());
                        std::process::exit(3);
                    });
                }
                Err(e) if e.is_not_found() => {
                    println!("no checkpoint at {}; starting fresh", path.display());
                }
                Err(e) => {
                    eprintln!("refusing to resume: {}: {e}", path.display());
                    std::process::exit(3);
                }
            }
        }
    }
    trainer.train(agent, params).expect("training run failed")
}

/// Trains the given agent kind on a benchmark and returns the outcome.
/// The environment seed is fixed per benchmark so approaches see identical noise.
pub fn run(b: Benchmark, kind: AgentKind, algo: Algo, cli: &Cli) -> RunOutcome {
    let machine = Machine::paper_machine();
    let graph = b.graph_for(&machine);
    let mut params = Params::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let samples = cli.samples_for(b);
    let mut cfg = TrainerConfig::paper(algo, samples);
    cfg.seed = cli.seed.wrapping_add(13);
    if kind == AgentKind::HierarchicalPlanner {
        // HP's per-op grouping decisions make each sample several times more
        // expensive; cap its budget so tables finish in comparable time (its
        // convergence behaviour is visible well within this budget).
        cfg.total_samples = samples.min(samples / 2 + 100);
    }
    if let Some(root) = &cli.checkpoint_dir {
        // One subdirectory per (benchmark, agent, algorithm) so table binaries
        // that train many agents checkpoint each run independently.
        let slug = format!(
            "{}-{}-{}",
            b.name().to_lowercase().replace(|c: char| !c.is_ascii_alphanumeric(), "-"),
            kind.slug(),
            algo.label().to_lowercase().replace(|c: char| !c.is_ascii_alphanumeric(), "-"),
        );
        cfg.checkpoint_dir = Some(root.join(slug));
        cfg.checkpoint_every = Some(cli.checkpoint_every);
    }
    let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
        .config(cfg)
        .measure(MeasureConfig::default())
        .env_seed(1000 + cli.seed)
        .recorder(cli.recorder.clone())
        .build()
        .expect("benchmark trainer config is valid");

    let result: TrainResult = match kind {
        AgentKind::Eagle => {
            let agent = EagleAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
            train_resumable(&agent, &mut params, &trainer, cli.resume)
        }
        AgentKind::HierarchicalPlanner => {
            let agent = HpAgent::new(&mut params, &graph, &machine, cli.scale, &mut rng);
            train_resumable(&agent, &mut params, &trainer, cli.resume)
        }
        AgentKind::FixedGroups(grouper, placer) => {
            let k = cli.scale.num_groups.min(graph.len());
            let group_of = grouper.partition(&graph, k);
            let agent = FixedGroupAgent::new(
                &mut params,
                format!("{}+{}", grouper.label(), placer.label()),
                &graph,
                &machine,
                group_of,
                k,
                placer,
                cli.scale,
                &mut rng,
            );
            train_resumable(&agent, &mut params, &trainer, cli.resume)
        }
        AgentKind::Post => {
            let k = cli.scale.num_groups.min(graph.len());
            let group_of = GrouperKind::Metis.partition(&graph, k);
            let agent = FixedGroupAgent::post(
                &mut params,
                &graph,
                &machine,
                group_of,
                k,
                cli.scale,
                &mut rng,
            );
            train_resumable(&agent, &mut params, &trainer, cli.resume)
        }
    };

    RunOutcome {
        final_step_time: result.final_step_time,
        curve: result.curve,
        num_invalid: result.num_invalid,
    }
}

/// Formats an optional step time like the paper's tables (`OOM` for invalid).
pub fn fmt_time(t: Option<f64>) -> String {
    match t {
        Some(v) => format!("{v:.3}"),
        None => "OOM".to_string(),
    }
}

/// Prints a table row.
pub fn print_row(model: &str, cells: &[String]) {
    println!("| {:<13} | {} |", model, cells.join(" | "));
}
