//! Group-embedding construction for *hard* groupings (heuristic groupers, the
//! Hierarchical Planner baseline, and the fixed-grouping placer study of Table II).
//!
//! Following the paper (Sec. III-C): "a group embedding consists of three parts: the
//! number of operations of each operation type in the group, the output shapes, and
//! the adjacency information of the group", aggregated exactly as in Hierarchical
//! Planner. The adjacency part is a `k`-dimensional connectivity indicator, so the
//! embedding dimension is [`group_feature_dim`]`(k)`.

use eagle_opgraph::{OpGraph, Phase, ALL_OP_KINDS};
use eagle_tensor::Tensor;

/// Number of scalar descriptors beyond the op-kind counts and adjacency block.
const EXTRA: usize = 7;

/// Dimension of a group-embedding row for `k` groups.
pub fn group_feature_dim(k: usize) -> usize {
    ALL_OP_KINDS.len() + EXTRA + k
}

/// Log-compresses a summed group magnitude into `[0, 1]`, matching the clamp
/// in `eagle_opgraph::features`: groups aggregating many `e^30`-byte tensors
/// (GraphGen memory-pressure sweeps) used to push the unclamped version past
/// 1.0, and a NaN/negative annotation maps to 0 instead of propagating.
fn log_scale(x: f64) -> f32 {
    (((1.0 + x.max(0.0)).ln() / 30.0).min(1.0)) as f32
}

/// Builds the `(k, group_feature_dim(k))` group-embedding matrix for a hard
/// assignment `group_of` (one entry per op, values in `0..k`).
pub fn group_features(graph: &OpGraph, group_of: &[usize], k: usize) -> Tensor {
    assert_eq!(group_of.len(), graph.len(), "one group per op");
    let nk = ALL_OP_KINDS.len();
    let dim = group_feature_dim(k);
    let mut out = Tensor::zeros(k, dim);

    let order = graph.topo_order();
    let mut topo_pos = vec![0usize; graph.len()];
    for (pos, id) in order.iter().enumerate() {
        topo_pos[id.index()] = pos;
    }

    // Raw accumulators.
    let mut flops = vec![0.0f64; k];
    let mut out_bytes = vec![0.0f64; k];
    let mut mem = vec![0.0f64; k];
    let mut count = vec![0.0f32; k];
    let mut pos_sum = vec![0.0f64; k];
    let mut bwd = vec![0.0f32; k];
    let mut upd = vec![0.0f32; k];

    for id in graph.ids() {
        let g = group_of[id.index()];
        assert!(g < k, "group index {g} out of range");
        let node = graph.node(id);
        let cur = out.get(g, node.kind.feature_index());
        out.set(g, node.kind.feature_index(), cur + 1.0);
        flops[g] += node.flops;
        out_bytes[g] += node.out_bytes as f64;
        mem[g] += (node.param_bytes + node.act_bytes) as f64;
        count[g] += 1.0;
        pos_sum[g] += topo_pos[id.index()] as f64 / graph.len().max(1) as f64;
        match node.phase {
            Phase::Backward => bwd[g] += 1.0,
            Phase::Update => upd[g] += 1.0,
            Phase::Forward => {}
        }
    }

    for g in 0..k {
        // Log-scale the op-kind counts so huge groups don't saturate.
        for j in 0..nk {
            let c = out.get(g, j);
            out.set(g, j, (1.0 + c).ln());
        }
        let s = nk;
        out.set(g, s, log_scale(flops[g]));
        out.set(g, s + 1, log_scale(out_bytes[g]));
        out.set(g, s + 2, log_scale(mem[g]));
        out.set(g, s + 3, (1.0 + count[g]).ln() / 10.0);
        let mean_pos = if count[g] > 0.0 { (pos_sum[g] / count[g] as f64) as f32 } else { 0.0 };
        out.set(g, s + 4, mean_pos);
        out.set(g, s + 5, if count[g] > 0.0 { bwd[g] / count[g] } else { 0.0 });
        out.set(g, s + 6, if count[g] > 0.0 { upd[g] / count[g] } else { 0.0 });
    }

    // Adjacency block: 1 when two groups share an edge (either direction).
    for (u, v) in graph.edges() {
        let (gu, gv) = (group_of[u.index()], group_of[v.index()]);
        if gu != gv {
            out.set(gu, nk + EXTRA + gv, 1.0);
            out.set(gv, nk + EXTRA + gu, 1.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode};

    fn tiny() -> OpGraph {
        let mut g = OpGraph::new("t");
        let a = g.add_node(
            OpNode::new("a", OpKind::MatMul, Phase::Forward).with_flops(1e6).with_out_bytes(64),
        );
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward).with_flops(2e6));
        let c = g.add_node(OpNode::new("c", OpKind::Loss, Phase::Backward));
        g.add_edge(a, b);
        g.add_edge(b, c);
        g
    }

    #[test]
    fn shapes_and_counts() {
        let g = tiny();
        let f = group_features(&g, &[0, 0, 1], 2);
        assert_eq!(f.shape(), (2, group_feature_dim(2)));
        // Group 0 has two MatMuls: ln(3).
        let mm = OpKind::MatMul.feature_index();
        assert!((f.get(0, mm) - 3.0f32.ln()).abs() < 1e-6);
        assert_eq!(f.get(1, mm), 0.0f32.max((1.0f32).ln()));
        // Backward fraction: group 1 is 100% backward ops.
        let s = ALL_OP_KINDS.len();
        assert_eq!(f.get(1, s + 5), 1.0);
        assert_eq!(f.get(0, s + 5), 0.0);
    }

    #[test]
    fn adjacency_block_symmetric() {
        let g = tiny();
        let f = group_features(&g, &[0, 0, 1], 2);
        let base = ALL_OP_KINDS.len() + EXTRA;
        assert_eq!(f.get(0, base + 1), 1.0, "group 0 touches group 1");
        assert_eq!(f.get(1, base), 1.0, "group 1 touches group 0");
        assert_eq!(f.get(0, base), 0.0, "no self edge recorded");
    }

    #[test]
    fn empty_groups_are_zero_rows() {
        let g = tiny();
        let f = group_features(&g, &[0, 0, 0], 3);
        for j in 0..group_feature_dim(3) {
            assert_eq!(f.get(2, j), 0.0);
        }
    }

    #[test]
    fn features_finite_on_real_graph() {
        let g = eagle_opgraph::builders::try_gnmt(&eagle_opgraph::builders::GnmtConfig {
            batch: 4,
            hidden: 8,
            layers: 2,
            seq_len: 4,
            vocab: 64,
        })
        .expect("valid GNMT config");
        let k = 8;
        let group_of: Vec<usize> = (0..g.len()).map(|i| i % k).collect();
        let f = group_features(&g, &group_of, k);
        assert!(f.all_finite());
        assert!(f.norm() > 0.0);
    }

    /// Regression: groups summing tensors past e^30 bytes used to emit
    /// magnitude features > 1.0. The clamp pins them at exactly 1.0 and keeps
    /// every entry finite, even across a high-memory-pressure GraphGen sweep.
    #[test]
    fn magnitude_features_clamped_at_saturation() {
        assert_eq!(log_scale(1e300), 1.0);
        assert_eq!(log_scale(f64::NAN), 0.0);

        let cfg = eagle_opgraph::GraphGenConfig {
            target_ops: 128,
            memory_pressure: (1e6, 1e9),
            ..eagle_opgraph::GraphGenConfig::default()
        };
        let gen = eagle_opgraph::GraphGen::new(cfg).unwrap();
        for seed in 0..4 {
            let g = gen.sample(seed);
            let k = 6;
            let group_of: Vec<usize> = (0..g.len()).map(|i| i % k).collect();
            let f = group_features(&g, &group_of, k);
            assert!(f.all_finite());
            let s = ALL_OP_KINDS.len();
            for grp in 0..k {
                for j in 0..3 {
                    let v = f.get(grp, s + j);
                    assert!((0.0..=1.0).contains(&v), "seed {seed} group {grp} mag {j} = {v}");
                }
            }
        }
    }
}
