//! LSTM cells and (bi-)directional sequence encoders.

use eagle_tensor::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// A fused LSTM cell: one input->4h and one hidden->4h weight matrix, gate order
/// `[input, forget, cell, output]`, forget-gate bias initialized to 1.
#[derive(Debug, Clone)]
pub struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    /// Input dimension.
    pub in_dim: usize,
    /// Hidden dimension.
    pub hidden: usize,
}

/// Hidden and cell state pair on the tape.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state `(1, hidden)` (or `(n, hidden)` when stepping a batch).
    pub h: Var,
    /// Cell state, same shape as `h`.
    pub c: Var,
}

impl LstmCell {
    /// Registers the cell's parameters.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w_ih =
            params.add(format!("{name}/w_ih"), init::xavier_uniform(in_dim, 4 * hidden, rng));
        let w_hh =
            params.add(format!("{name}/w_hh"), init::xavier_uniform(hidden, 4 * hidden, rng));
        let mut bias = Tensor::zeros(1, 4 * hidden);
        // Forget-gate bias 1.0: standard trick to keep memory early in training.
        for j in hidden..2 * hidden {
            bias.set(0, j, 1.0);
        }
        let b = params.add(format!("{name}/b"), bias);
        Self { w_ih, w_hh, b, in_dim, hidden }
    }

    /// Initial zero state for a batch of `n` rows.
    pub fn zero_state(&self, tape: &mut Tape, n: usize) -> LstmState {
        LstmState {
            h: tape.leaf(Tensor::zeros(n, self.hidden)),
            c: tape.leaf(Tensor::zeros(n, self.hidden)),
        }
    }

    /// One step: `x (n, in_dim)`, state `(n, hidden)` -> next state.
    pub fn step(&self, tape: &mut Tape, params: &Params, x: Var, state: LstmState) -> LstmState {
        let w_ih = tape.param(params, self.w_ih);
        let w_hh = tape.param(params, self.w_hh);
        let b = tape.param(params, self.b);
        let xi = tape.matmul(x, w_ih);
        let hh = tape.matmul(state.h, w_hh);
        let z0 = tape.add(xi, hh);
        let z = tape.add_row_broadcast(z0, b);
        let h = self.hidden;
        let zi = tape.slice_cols(z, 0, h);
        let zf = tape.slice_cols(z, h, h);
        let zg = tape.slice_cols(z, 2 * h, h);
        let zo = tape.slice_cols(z, 3 * h, h);
        let i = tape.sigmoid(zi);
        let f = tape.sigmoid(zf);
        let g = tape.tanh(zg);
        let o = tape.sigmoid(zo);
        let fc = tape.mul_elem(f, state.c);
        let ig = tape.mul_elem(i, g);
        let c = tape.add(fc, ig);
        let tc = tape.tanh(c);
        let h_out = tape.mul_elem(o, tc);
        LstmState { h: h_out, c }
    }
}

/// A uni-directional LSTM over a sequence laid out as rows of a matrix.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// The underlying cell.
    pub cell: LstmCell,
}

impl Lstm {
    /// Registers a new LSTM.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self { cell: LstmCell::new(params, name, in_dim, hidden, rng) }
    }

    /// Runs over `xs (t, in_dim)` (each row one timestep) and returns the per-step
    /// hidden states stacked as `(t, hidden)` plus the final state.
    pub fn forward(&self, tape: &mut Tape, params: &Params, xs: Var) -> (Var, LstmState) {
        let t = tape.value(xs).rows();
        let mut state = self.cell.zero_state(tape, 1);
        let mut outs = Vec::with_capacity(t);
        for i in 0..t {
            let x = tape.slice_rows(xs, i, 1);
            state = self.cell.step(tape, params, x, state);
            outs.push(state.h);
        }
        (tape.concat_rows(&outs), state)
    }
}

/// A bidirectional LSTM: forward and backward passes concatenated per step —
/// the encoder of the paper's sequence-to-sequence placer.
#[derive(Debug, Clone)]
pub struct BiLstm {
    fw: LstmCell,
    bw: LstmCell,
    /// Hidden size of each direction (output is `2 * hidden`).
    pub hidden: usize,
}

impl BiLstm {
    /// Registers both directions.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            fw: LstmCell::new(params, &format!("{name}/fw"), in_dim, hidden, rng),
            bw: LstmCell::new(params, &format!("{name}/bw"), in_dim, hidden, rng),
            hidden,
        }
    }

    /// Runs over `xs (t, in_dim)`, returning `(t, 2*hidden)` per-step outputs and
    /// the final forward-direction state (used to initialize decoders).
    pub fn forward(&self, tape: &mut Tape, params: &Params, xs: Var) -> (Var, LstmState) {
        let t = tape.value(xs).rows();
        let mut fw_state = self.fw.zero_state(tape, 1);
        let mut fw_outs = Vec::with_capacity(t);
        for i in 0..t {
            let x = tape.slice_rows(xs, i, 1);
            fw_state = self.fw.step(tape, params, x, fw_state);
            fw_outs.push(fw_state.h);
        }
        let mut bw_state = self.bw.zero_state(tape, 1);
        let mut bw_outs = vec![fw_outs[0]; t];
        for i in (0..t).rev() {
            let x = tape.slice_rows(xs, i, 1);
            bw_state = self.bw.step(tape, params, x, bw_state);
            bw_outs[i] = bw_state.h;
        }
        let rows: Vec<Var> = (0..t).map(|i| tape.concat_cols(&[fw_outs[i], bw_outs[i]])).collect();
        (tape.concat_rows(&rows), fw_state)
    }

    /// Runs the encoder over `B` equal-length sequences in lockstep — each
    /// timestep is one `(B, in_dim)` step through the cells instead of `B`
    /// separate `(1, in_dim)` steps — returning per-sequence `(t, 2*hidden)`
    /// outputs and final forward-direction states.
    ///
    /// Bit-identical per sequence to [`BiLstm::forward`]: the step math
    /// (matmul, bias broadcast, gates) is row-wise, so stacking sequences as
    /// extra rows leaves each sequence's f32 summation order unchanged.
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        params: &Params,
        xs: &[Var],
    ) -> Vec<(Var, LstmState)> {
        let bsz = xs.len();
        assert!(bsz > 0, "at least one sequence");
        let t = tape.value(xs[0]).rows();
        for &x in xs {
            assert_eq!(tape.value(x).rows(), t, "all sequences share one length");
        }
        let step_input = |tape: &mut Tape, i: usize| -> Var {
            if bsz == 1 {
                tape.slice_rows(xs[0], i, 1)
            } else {
                let rows: Vec<Var> = xs.iter().map(|&x| tape.slice_rows(x, i, 1)).collect();
                tape.concat_rows(&rows)
            }
        };
        let mut fw_state = self.fw.zero_state(tape, bsz);
        let mut fw_outs = Vec::with_capacity(t);
        for i in 0..t {
            let x = step_input(tape, i);
            fw_state = self.fw.step(tape, params, x, fw_state);
            fw_outs.push(fw_state.h);
        }
        let mut bw_state = self.bw.zero_state(tape, bsz);
        let mut bw_outs = vec![fw_outs[0]; t];
        for i in (0..t).rev() {
            let x = step_input(tape, i);
            bw_state = self.bw.step(tape, params, x, bw_state);
            bw_outs[i] = bw_state.h;
        }
        (0..bsz)
            .map(|b| {
                let rows: Vec<Var> = (0..t)
                    .map(|i| {
                        let f = tape.slice_rows(fw_outs[i], b, 1);
                        let w = tape.slice_rows(bw_outs[i], b, 1);
                        tape.concat_cols(&[f, w])
                    })
                    .collect();
                let outs = tape.concat_rows(&rows);
                let last = LstmState {
                    h: tape.slice_rows(fw_state.h, b, 1),
                    c: tape.slice_rows(fw_state.c, b, 1),
                };
                (outs, last)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_tensor::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cell_shapes_and_bounded_outputs() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cell = LstmCell::new(&mut params, "c", 4, 6, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 4, 0.5));
        let s0 = cell.zero_state(&mut tape, 2);
        let s1 = cell.step(&mut tape, &params, x, s0);
        assert_eq!(tape.value(s1.h).shape(), (2, 6));
        assert_eq!(tape.value(s1.c).shape(), (2, 6));
        assert!(tape.value(s1.h).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_sequence_output_shape() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lstm = Lstm::new(&mut params, "l", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let xs = tape.leaf(Tensor::full(7, 3, 0.1));
        let (outs, last) = lstm.forward(&mut tape, &params, xs);
        assert_eq!(tape.value(outs).shape(), (7, 5));
        // Last row of outs equals the final hidden state.
        let last_row = tape.value(outs).row(6).to_vec();
        assert_eq!(last_row, tape.value(last.h).row(0).to_vec());
    }

    #[test]
    fn bilstm_output_concatenates_directions() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let bi = BiLstm::new(&mut params, "b", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let xs = tape.leaf(Tensor::full(5, 3, 0.2));
        let (outs, _) = bi.forward(&mut tape, &params, xs);
        assert_eq!(tape.value(outs).shape(), (5, 8));
    }

    #[test]
    fn lstm_memorizes_first_token() {
        // Task: output at the end of the sequence = first input bit. Requires real
        // memory, exercising cell-state gradients end to end (BPTT).
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let lstm = Lstm::new(&mut params, "mem", 1, 8, &mut rng);
        let head = crate::linear::Linear::new(&mut params, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![1.0, 0.3, -0.2, 0.6], 1.0),
            (vec![-1.0, 0.3, -0.2, 0.6], -1.0),
            (vec![1.0, -0.6, 0.1, 0.0], 1.0),
            (vec![-1.0, -0.6, 0.1, 0.0], -1.0),
        ];
        let mut last_loss = f32::INFINITY;
        for _ in 0..300 {
            params.zero_grad();
            let mut total = 0.0;
            for (seq, target) in &seqs {
                let mut tape = Tape::new();
                let xs = tape.leaf(Tensor::from_vec(4, 1, seq.clone()));
                let (_, last) = lstm.forward(&mut tape, &params, xs);
                let pred = head.forward(&mut tape, &params, last.h);
                let t = tape.leaf(Tensor::scalar(*target));
                let err = tape.sub(pred, t);
                let sq = tape.mul_elem(err, err);
                let loss = tape.sum_all(sq);
                total += tape.value(loss).item();
                tape.backward(loss, &mut params);
            }
            last_loss = total / seqs.len() as f32;
            opt.step(&mut params);
        }
        assert!(last_loss < 0.05, "memory task not learned: {last_loss}");
    }
}
