//! The learned grouper: a feed-forward network mapping per-op features to group
//! logits (paper Sec. III-B: "a two-layer feed-forward neural network with 64 hidden
//! units is the best"), plus the soft group-embedding aggregation that lets placer
//! gradients flow back into the grouper — the coupling EAGLE's linking RNN rides on.

use eagle_tensor::{Params, Tape, Tensor, Var};
use rand::Rng;

use crate::linear::{Activation, FeedForward};

/// Feed-forward grouper over per-op feature vectors.
#[derive(Debug, Clone)]
pub struct Grouper {
    net: FeedForward,
    /// Number of groups `k`.
    pub num_groups: usize,
}

impl Grouper {
    /// Registers a grouper: `feat_dim -> hidden -> hidden -> k` ReLU MLP.
    pub fn new(
        params: &mut Params,
        name: &str,
        feat_dim: usize,
        hidden: usize,
        num_groups: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            net: FeedForward::new(
                params,
                name,
                &[feat_dim, hidden, hidden, num_groups],
                Activation::Relu,
                rng,
            ),
            num_groups,
        }
    }

    /// Group logits `(n_ops, k)` for op features `(n_ops, feat_dim)`.
    pub fn logits(&self, tape: &mut Tape, params: &Params, features: Var) -> Var {
        self.net.forward(tape, params, features)
    }

    /// Hard assignment: argmax group per op (used to decode the actual placement).
    pub fn hard_assign(logits: &Tensor) -> Vec<usize> {
        (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Differentiable soft group embeddings: `softmax(logits)^T @ features`, scaled
    /// by `k / n` so magnitudes stay O(1) regardless of graph size. Row `g` is the
    /// (soft) sum of features of ops assigned to group `g` — the quantity the
    /// linking RNN transforms into placer inputs.
    pub fn soft_group_embeddings(&self, tape: &mut Tape, logits: Var, features: Var) -> Var {
        let n = tape.value(features).rows().max(1);
        let soft = tape.softmax(logits); // (n, k)
        let soft_t = tape.transpose(soft); // (k, n)
        let sums = tape.matmul(soft_t, features); // (k, f)
        tape.scale(sums, self.num_groups as f32 / n as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_tensor::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn logits_shape_and_hard_assignment() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let grouper = Grouper::new(&mut params, "g", 5, 16, 8, &mut rng);
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::full(10, 5, 0.1));
        let logits = grouper.logits(&mut tape, &params, f);
        assert_eq!(tape.value(logits).shape(), (10, 8));
        let hard = Grouper::hard_assign(tape.value(logits));
        assert_eq!(hard.len(), 10);
        assert!(hard.iter().all(|&g| g < 8));
    }

    #[test]
    fn soft_embeddings_shape_and_magnitude() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let grouper = Grouper::new(&mut params, "g", 5, 16, 4, &mut rng);
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::full(100, 5, 1.0));
        let logits = grouper.logits(&mut tape, &params, f);
        let emb = grouper.soft_group_embeddings(&mut tape, logits, f);
        assert_eq!(tape.value(emb).shape(), (4, 5));
        // All ops have feature 1.0; soft masses sum to n over all groups, and the
        // k/n scaling means the *total* over groups is k per feature column.
        let col_total: f32 = (0..4).map(|g| tape.value(emb).get(g, 0)).sum();
        assert!((col_total - 4.0).abs() < 1e-3, "total = {col_total}");
    }

    #[test]
    fn grouper_gradients_flow_through_soft_embeddings() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let grouper = Grouper::new(&mut params, "g", 4, 8, 3, &mut rng);
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::full(6, 4, 0.5));
        let logits = grouper.logits(&mut tape, &params, f);
        let emb = grouper.soft_group_embeddings(&mut tape, logits, f);
        let sq = tape.mul_elem(emb, emb);
        let loss = tape.mean_all(sq);
        tape.backward(loss, &mut params);
        assert!(params.grad_global_norm() > 0.0);
    }

    #[test]
    fn grouper_can_learn_a_target_grouping() {
        // Two clearly separable feature clusters must become separable groups when
        // trained against a simple supervised objective (sanity for capacity).
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let grouper = Grouper::new(&mut params, "g", 2, 16, 2, &mut rng);
        let mut opt = Adam::new(0.02);
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for i in 0..20 {
            let cluster = i % 2;
            feats.extend_from_slice(&[cluster as f32, 1.0 - cluster as f32]);
            targets.push(cluster);
        }
        let f = Tensor::from_vec(20, 2, feats);
        for _ in 0..200 {
            params.zero_grad();
            let mut tape = Tape::new();
            let fv = tape.leaf(f.clone());
            let logits = grouper.logits(&mut tape, &params, fv);
            let picked = tape.log_softmax_pick(logits, &targets);
            let neg = tape.neg(picked);
            let loss = tape.mean_all(neg);
            tape.backward(loss, &mut params);
            opt.step(&mut params);
        }
        let mut tape = Tape::new();
        let fv = tape.leaf(f.clone());
        let logits = grouper.logits(&mut tape, &params, fv);
        let hard = Grouper::hard_assign(tape.value(logits));
        assert_eq!(hard, targets, "grouper should learn the separable clustering");
    }
}
