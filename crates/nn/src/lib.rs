//! # eagle-nn
//!
//! Neural building blocks for the EAGLE device-placement agent, built on the
//! `eagle-tensor` autodiff engine:
//!
//! * [`Linear`] / [`FeedForward`] — affine layers and MLPs (the grouper).
//! * [`LstmCell`] / [`Lstm`] / [`BiLstm`] — recurrent cells and encoders.
//! * [`Seq2SeqPlacer`] — the paper's placer (Fig. 3a): bi-LSTM encoder,
//!   attention-equipped LSTM decoder, device-embedding feedback, with the
//!   attention context applied [`AttentionMode::Before`] or
//!   [`AttentionMode::After`] the decoder (Fig. 4).
//! * [`GcnPlacer`] — the graph-convolutional alternative (Fig. 3b).
//! * [`Grouper`] — the feed-forward grouper plus differentiable soft group
//!   embeddings.
//! * [`embedding`] — hard-grouping group-embedding construction (Hierarchical
//!   Planner style).

#![warn(missing_docs)]

pub mod embedding;
mod grouper;
mod linear;
mod lstm;
mod placer;

pub use grouper::Grouper;
pub use linear::{Activation, FeedForward, Linear};
pub use lstm::{BiLstm, Lstm, LstmCell, LstmState};
pub use placer::{
    normalize_adjacency, AttentionMode, GcnPlacer, Placer, PlacerOutput, Seq2SeqPlacer,
    SimplePlacer,
};
