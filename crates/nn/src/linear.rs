//! Affine layers and small multi-layer perceptrons.

use eagle_tensor::{init, FusedAct, ParamId, Params, Tape, Var};
use rand::Rng;

/// Supported activations for [`FeedForward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation (affine output).
    Identity,
}

/// `y = x W + b` with `W: (in, out)`, `b: (1, out)`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a new layer's parameters (Xavier weights, zero bias).
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.add(format!("{name}/w"), init::xavier_uniform(in_dim, out_dim, rng));
        let b = params.add(format!("{name}/b"), init::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies the layer to `x: (n, in_dim)`, returning `(n, out_dim)`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        self.forward_fused(tape, params, x, FusedAct::None)
    }

    /// Applies the layer with an activation fused into the same tape node
    /// (bitwise-equal to layer-then-activation, but one node and no
    /// intermediate tensors).
    pub fn forward_fused(&self, tape: &mut Tape, params: &Params, x: Var, act: FusedAct) -> Var {
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        tape.affine(x, w, b, act)
    }
}

/// A stack of [`Linear`] layers with an activation between them — the paper's
/// grouper is `FeedForward` with two hidden layers of 64 ReLU units.
#[derive(Debug, Clone)]
pub struct FeedForward {
    layers: Vec<Linear>,
    activation: Activation,
}

impl FeedForward {
    /// Builds an MLP with the given layer sizes, e.g. `[in, 64, 64, out]`.
    /// The activation is applied after every layer except the last.
    pub fn new(
        params: &mut Params,
        name: &str,
        sizes: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, wnd)| Linear::new(params, &format!("{name}/l{i}"), wnd[0], wnd[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Applies the MLP to `x: (n, in_dim)`. Hidden layers run as fused
    /// affine+activation nodes; the last layer stays affine-only.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i < last {
                match self.activation {
                    Activation::Relu => FusedAct::Relu,
                    Activation::Tanh => FusedAct::Tanh,
                    Activation::Identity => FusedAct::None,
                }
            } else {
                FusedAct::None
            };
            h = layer.forward_fused(tape, params, h, act);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_tensor::{optim::Adam, Tensor};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lin = Linear::new(&mut params, "l", 3, 2, &mut rng);
        // Set bias to known values to verify broadcasting.
        let bias_id = params.ids().find(|&id| params.name(id) == "l/b").unwrap();
        params.get_mut(bias_id).data_mut().copy_from_slice(&[10.0, 20.0]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(4, 3));
        let y = lin.forward(&mut tape, &params, x);
        assert_eq!(tape.value(y).shape(), (4, 2));
        for r in 0..4 {
            assert_eq!(tape.value(y).row(r), &[10.0, 20.0]);
        }
    }

    #[test]
    fn mlp_learns_xor() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mlp = FeedForward::new(&mut params, "xor", &[2, 8, 1], Activation::Tanh, &mut rng);
        assert_eq!(mlp.in_dim(), 2);
        assert_eq!(mlp.out_dim(), 1);
        let xs = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let ys = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.02);
        let mut last_loss = f32::INFINITY;
        for _ in 0..800 {
            params.zero_grad();
            let mut tape = Tape::new();
            let x = tape.leaf(xs.clone());
            let target = tape.leaf(ys.clone());
            let pred = mlp.forward(&mut tape, &params, x);
            let err = tape.sub(pred, target);
            let sq = tape.mul_elem(err, err);
            let loss = tape.mean_all(sq);
            last_loss = tape.value(loss).item();
            tape.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(last_loss < 0.05, "XOR not learned, loss = {last_loss}");
    }
}
