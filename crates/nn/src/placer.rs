//! Placer networks: sequence-to-sequence with Bahdanau attention (the paper's
//! choice, Fig. 3a / Fig. 4) and a graph-convolutional alternative (Fig. 3b).
//!
//! Both consume a `(k, d_in)` matrix of group embeddings and emit one device per
//! group. They expose a single `forward` that either *samples* actions or
//! *teacher-forces* a given action sequence (needed to re-evaluate log-probabilities
//! of old samples under new parameters for PPO's ratio).

use eagle_rl::sample_categorical;
use eagle_tensor::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

use crate::linear::{Activation, FeedForward, Linear};
use crate::lstm::{BiLstm, LstmCell, LstmState};

/// Where the attention context enters the decoder (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMode {
    /// Context is an extra *input* to the decoder LSTM (paper's pick for EAGLE:
    /// "the attention score is applied before feeding to the decoder").
    Before,
    /// Context is combined with the decoder *output* before the softmax
    /// (Hierarchical Planner's variant).
    After,
}

/// Output of one placer forward pass.
#[derive(Debug, Clone)]
pub struct PlacerOutput {
    /// Chosen device index per group.
    pub actions: Vec<usize>,
    /// Per-group log-probability of the chosen device, `(k, 1)` on the tape.
    pub step_log_probs: Var,
    /// Sum of log-probabilities (the joint placement log-probability), `1x1`.
    pub log_prob: Var,
    /// Mean per-step policy entropy, `1x1`.
    pub entropy: Var,
}

/// Common interface of the two placer designs.
///
/// [`Placer::forward_batch`] is the primitive the agents' hot paths use: it
/// decodes a whole minibatch with one `(B·n, h)`-shaped matmul per layer.
/// [`Placer::forward`] is the original per-episode implementation, kept as the
/// reference the batched path is differential-tested against (the two are
/// bit-identical per episode; see the `eagle_rl::policy` bit-identity contract).
pub trait Placer {
    /// Decodes a placement for `x: (k, d_in)` group embeddings. When `forced` is
    /// given, its actions are scored instead of sampling new ones.
    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput;

    /// Decodes one placement per episode in a single batched pass. `xs` holds
    /// one `(k, d_in)` input per episode — passing the *same* `Var` for every
    /// episode makes shared-input work (e.g. the encoder) run once. When
    /// `forced` is absent, episode `b` samples from `rngs[b]` only, consuming
    /// draws in the same order a serial [`Placer::forward`] call would.
    fn forward_batch(
        &self,
        tape: &mut Tape,
        params: &Params,
        xs: &[Var],
        forced: Option<&[&[usize]]>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<PlacerOutput>;

    /// Number of devices the placer chooses among.
    fn num_devices(&self) -> usize;
}

/// Validates the shared `forward_batch` preconditions and returns the batch
/// size and per-episode sequence length.
fn check_batch_args(
    tape: &Tape,
    xs: &[Var],
    forced: Option<&[&[usize]]>,
    rngs: &[&mut dyn rand::RngCore],
) -> (usize, usize) {
    let bsz = xs.len();
    assert!(bsz > 0, "at least one episode");
    let k = tape.value(xs[0]).rows();
    for &x in xs {
        assert_eq!(tape.value(x).rows(), k, "all episodes share the group count");
    }
    match forced {
        Some(f) => {
            assert_eq!(f.len(), bsz, "one forced action vector per episode");
            for a in f {
                assert_eq!(a.len(), k, "forced actions must cover every group");
            }
        }
        None => assert_eq!(rngs.len(), bsz, "one RNG stream per episode"),
    }
    (bsz, k)
}

/// Scores and entropy for one decode step; shared by both placers.
fn step_policy(
    tape: &mut Tape,
    logits: Var,
    forced: Option<usize>,
    rng: &mut dyn rand::RngCore,
) -> (usize, Var, Var) {
    let log_probs = tape.log_softmax(logits);
    let probs = tape.softmax(logits);
    let action = match forced {
        Some(a) => a,
        None => sample_categorical(tape.value(probs).row(0), rng),
    };
    let logp = tape.pick_per_row(log_probs, &[action]);
    let plogp = tape.mul_elem(probs, log_probs);
    let sum = tape.sum_all(plogp);
    let ent = tape.neg(sum);
    (action, logp, ent)
}

/// The sequence-to-sequence placer (paper Fig. 3a): bi-LSTM encoder over group
/// embeddings, uni-LSTM decoder emitting one device per group, Bahdanau
/// content-based attention, previous decision fed back via a device embedding.
#[derive(Debug, Clone)]
pub struct Seq2SeqPlacer {
    input_proj: Linear,
    encoder: BiLstm,
    decoder: LstmCell,
    attn_enc: Linear,
    attn_dec: Linear,
    attn_v: ParamId,
    out: Linear,
    dev_emb: ParamId,
    mode: AttentionMode,
    hidden: usize,
    n_devices: usize,
}

impl Seq2SeqPlacer {
    /// Registers all parameters. `hidden` is the LSTM size (512 in the paper;
    /// smaller for quick experiments), `attn_dim` the attention space.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        hidden: usize,
        attn_dim: usize,
        n_devices: usize,
        mode: AttentionMode,
        rng: &mut impl Rng,
    ) -> Self {
        let emb_dim = (hidden / 4).max(4);
        let dec_in = match mode {
            AttentionMode::Before => hidden + 2 * hidden + emb_dim,
            AttentionMode::After => hidden + emb_dim,
        };
        let out_in = match mode {
            AttentionMode::Before => hidden,
            AttentionMode::After => hidden + 2 * hidden,
        };
        Self {
            input_proj: Linear::new(params, &format!("{name}/in_proj"), d_in, hidden, rng),
            encoder: BiLstm::new(params, &format!("{name}/enc"), hidden, hidden, rng),
            decoder: LstmCell::new(params, &format!("{name}/dec"), dec_in, hidden, rng),
            attn_enc: Linear::new(params, &format!("{name}/attn_enc"), 2 * hidden, attn_dim, rng),
            attn_dec: Linear::new(params, &format!("{name}/attn_dec"), hidden, attn_dim, rng),
            attn_v: params.add(format!("{name}/attn_v"), init::xavier_uniform(attn_dim, 1, rng)),
            out: Linear::new(params, &format!("{name}/out"), out_in, n_devices, rng),
            // Row n_devices is the start-of-sequence token.
            dev_emb: params
                .add(format!("{name}/dev_emb"), init::uniform(n_devices + 1, emb_dim, 0.1, rng)),
            mode,
            hidden,
            n_devices,
        }
    }

    /// The attention-application mode.
    pub fn mode(&self) -> AttentionMode {
        self.mode
    }

    /// Bahdanau context for the current decoder state.
    fn context(
        &self,
        tape: &mut Tape,
        params: &Params,
        enc_outs: Var,
        enc_proj: Var,
        dec_h: Var,
    ) -> Var {
        let dec_proj = self.attn_dec.forward(tape, params, dec_h); // (1, a)
        let pre = tape.add_row_broadcast(enc_proj, dec_proj); // (k, a)
        let act = tape.tanh(pre);
        let v = tape.param(params, self.attn_v);
        let scores = tape.matmul(act, v); // (k, 1)
        let scores_row = tape.transpose(scores); // (1, k)
        let alpha = tape.softmax(scores_row); // (1, k)
        tape.matmul(alpha, enc_outs) // (1, 2h)
    }

    /// Batched Bahdanau context: one `(B, 2h)` context matrix for `B` decoder
    /// states at once. `enc_outs`/`enc_proj` hold one entry per *distinct*
    /// encoder pass and `ep_enc[b]` maps episode `b` to its entry.
    ///
    /// Row `b` is bit-identical to [`Seq2SeqPlacer::context`] for episode `b`:
    /// the score matmul batches as extra rows (`(B·k, a) @ (a, 1)`), the
    /// `(B, k)` score layout is data-identical to the per-episode `(1, k)`
    /// transposes stacked, softmax is per-row, and the context matmul's inner
    /// summation order over `k` is unchanged.
    #[allow(clippy::too_many_arguments)]
    fn context_batch(
        &self,
        tape: &mut Tape,
        params: &Params,
        enc_outs: &[Var],
        enc_proj: &[Var],
        ep_enc: &[usize],
        dec_h: Var,
        k: usize,
    ) -> Var {
        let bsz = ep_enc.len();
        let dec_proj = self.attn_dec.forward(tape, params, dec_h); // (B, a)
        let pres: Vec<Var> = (0..bsz)
            .map(|b| {
                let row = tape.slice_rows(dec_proj, b, 1);
                tape.add_row_broadcast(enc_proj[ep_enc[b]], row) // (k, a)
            })
            .collect();
        let pre = tape.concat_rows(&pres); // (B·k, a)
        let act = tape.tanh(pre);
        let v = tape.param(params, self.attn_v);
        let scores = tape.matmul(act, v); // (B·k, 1)
        let rows: Vec<Var> = (0..bsz)
            .map(|b| {
                let s = tape.slice_rows(scores, b * k, k);
                tape.transpose(s) // (1, k)
            })
            .collect();
        let score_mat = tape.concat_rows(&rows); // (B, k)
        let alpha = tape.softmax(score_mat); // (B, k)
        if enc_outs.len() == 1 {
            tape.matmul(alpha, enc_outs[0]) // (B, 2h)
        } else {
            let ctxs: Vec<Var> = (0..bsz)
                .map(|b| {
                    let a_row = tape.slice_rows(alpha, b, 1);
                    tape.matmul(a_row, enc_outs[ep_enc[b]]) // (1, 2h)
                })
                .collect();
            tape.concat_rows(&ctxs)
        }
    }
}

impl Placer for Seq2SeqPlacer {
    fn num_devices(&self) -> usize {
        self.n_devices
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput {
        let k = tape.value(x).rows();
        if let Some(f) = forced {
            assert_eq!(f.len(), k, "forced actions must cover every group");
        }
        let xs = self.input_proj.forward(tape, params, x); // (k, h)
        let (enc_outs, enc_last) = self.encoder.forward(tape, params, xs); // (k, 2h)
        let enc_proj = self.attn_enc.forward(tape, params, enc_outs); // (k, a)

        let mut state =
            crate::lstm::LstmState { h: enc_last.h, c: tape.leaf(Tensor::zeros(1, self.hidden)) };
        let dev_table = tape.param(params, self.dev_emb);
        let mut prev_action = self.n_devices; // start token
        let mut actions = Vec::with_capacity(k);
        let mut logps = Vec::with_capacity(k);
        let mut ents = Vec::with_capacity(k);

        for i in 0..k {
            let x_i = tape.slice_rows(xs, i, 1); // (1, h)
            let prev_emb = tape.select_rows(dev_table, &[prev_action]); // (1, e)
            let (h_i, logits) = match self.mode {
                AttentionMode::Before => {
                    let ctx = self.context(tape, params, enc_outs, enc_proj, state.h);
                    let inp = tape.concat_cols(&[x_i, ctx, prev_emb]);
                    state = self.decoder.step(tape, params, inp, state);
                    (state.h, self.out.forward(tape, params, state.h))
                }
                AttentionMode::After => {
                    let inp = tape.concat_cols(&[x_i, prev_emb]);
                    state = self.decoder.step(tape, params, inp, state);
                    let ctx = self.context(tape, params, enc_outs, enc_proj, state.h);
                    let combined = tape.concat_cols(&[state.h, ctx]);
                    (state.h, self.out.forward(tape, params, combined))
                }
            };
            let _ = h_i;
            let (a, logp, ent) = step_policy(tape, logits, forced.map(|f| f[i]), rng);
            actions.push(a);
            prev_action = a;
            logps.push(logp);
            ents.push(ent);
        }

        let step_log_probs = tape.concat_rows(&logps);
        let log_prob = tape.sum_all(step_log_probs);
        let ent_stack = tape.concat_rows(&ents);
        let entropy = tape.mean_all(ent_stack);
        PlacerOutput { actions, step_log_probs, log_prob, entropy }
    }

    fn forward_batch(
        &self,
        tape: &mut Tape,
        params: &Params,
        xs: &[Var],
        forced: Option<&[&[usize]]>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<PlacerOutput> {
        let (bsz, k) = check_batch_args(tape, xs, forced, rngs);

        // Episodes passing the same input Var share one encoder pass: map each
        // episode to a distinct-input slot.
        let mut uniq: Vec<Var> = Vec::new();
        let mut ep_enc: Vec<usize> = Vec::with_capacity(bsz);
        for &x in xs {
            match uniq.iter().position(|&v| v == x) {
                Some(j) => ep_enc.push(j),
                None => {
                    ep_enc.push(uniq.len());
                    uniq.push(x);
                }
            }
        }
        let u = uniq.len();

        // Input projection + attention keys run once per distinct input, as one
        // stacked matmul when there are several.
        let xs_h: Vec<Var> = if u == 1 {
            vec![self.input_proj.forward(tape, params, uniq[0])]
        } else {
            let stacked = tape.concat_rows(&uniq);
            let proj = self.input_proj.forward(tape, params, stacked); // (u·k, h)
            (0..u).map(|j| tape.slice_rows(proj, j * k, k)).collect()
        };
        let enc_res: Vec<(Var, LstmState)> = if u == 1 {
            let (outs, last) = self.encoder.forward(tape, params, xs_h[0]);
            vec![(outs, last)]
        } else {
            self.encoder.forward_batch(tape, params, &xs_h)
        };
        let enc_outs: Vec<Var> = enc_res.iter().map(|(o, _)| *o).collect();
        let enc_proj: Vec<Var> = if u == 1 {
            vec![self.attn_enc.forward(tape, params, enc_outs[0])]
        } else {
            let stacked = tape.concat_rows(&enc_outs);
            let proj = self.attn_enc.forward(tape, params, stacked); // (u·k, a)
            (0..u).map(|j| tape.slice_rows(proj, j * k, k)).collect()
        };

        // Decoder state: episode b starts from its encoder's last forward state.
        let h0 = if bsz == 1 {
            enc_res[0].1.h
        } else {
            let rows: Vec<Var> = ep_enc.iter().map(|&e| enc_res[e].1.h).collect();
            tape.concat_rows(&rows)
        };
        let mut state = LstmState { h: h0, c: tape.leaf(Tensor::zeros(bsz, self.hidden)) };
        let dev_table = tape.param(params, self.dev_emb);
        let mut prev: Vec<usize> = vec![self.n_devices; bsz]; // start token
        let mut actions_ep: Vec<Vec<usize>> = vec![Vec::with_capacity(k); bsz];
        let mut step_logps = Vec::with_capacity(k);
        let mut step_ents = Vec::with_capacity(k);

        for i in 0..k {
            let x_i = if bsz == 1 {
                tape.slice_rows(xs_h[0], i, 1)
            } else if u == 1 {
                tape.select_rows(xs_h[0], &vec![i; bsz]) // (B, h)
            } else {
                let rows: Vec<Var> =
                    ep_enc.iter().map(|&e| tape.slice_rows(xs_h[e], i, 1)).collect();
                tape.concat_rows(&rows)
            };
            let prev_emb = tape.select_rows(dev_table, &prev); // (B, e)
            let logits = match self.mode {
                AttentionMode::Before => {
                    let ctx =
                        self.context_batch(tape, params, &enc_outs, &enc_proj, &ep_enc, state.h, k);
                    let inp = tape.concat_cols(&[x_i, ctx, prev_emb]);
                    state = self.decoder.step(tape, params, inp, state);
                    self.out.forward(tape, params, state.h)
                }
                AttentionMode::After => {
                    let inp = tape.concat_cols(&[x_i, prev_emb]);
                    state = self.decoder.step(tape, params, inp, state);
                    let ctx =
                        self.context_batch(tape, params, &enc_outs, &enc_proj, &ep_enc, state.h, k);
                    let combined = tape.concat_cols(&[state.h, ctx]);
                    self.out.forward(tape, params, combined)
                }
            }; // (B, nd)
            let log_probs = tape.log_softmax(logits);
            let probs = tape.softmax(logits);
            let acts: Vec<usize> = match forced {
                Some(f) => f.iter().map(|a| a[i]).collect(),
                None => {
                    let pv = tape.value(probs);
                    (0..bsz).map(|b| sample_categorical(pv.row(b), &mut *rngs[b])).collect()
                }
            };
            let logp = tape.pick_per_row(log_probs, &acts); // (B, 1)
            let plogp = tape.mul_elem(probs, log_probs);
            let rsum = tape.row_sums(plogp); // (B, 1)
            let ent = tape.neg(rsum);
            for (b, &a) in acts.iter().enumerate() {
                actions_ep[b].push(a);
            }
            prev = acts;
            step_logps.push(logp);
            step_ents.push(ent);
        }

        // (B, k): column i holds step i, so row b is episode b's step sequence
        // in the same order the per-episode path stacks them.
        let logp_mat = tape.concat_cols(&step_logps);
        let ent_mat = tape.concat_cols(&step_ents);
        actions_ep
            .into_iter()
            .enumerate()
            .map(|(b, actions)| {
                let lp_row = tape.slice_rows(logp_mat, b, 1); // (1, k)
                let log_prob = tape.sum_all(lp_row);
                let step_log_probs = tape.transpose(lp_row); // (k, 1)
                let ent_row = tape.slice_rows(ent_mat, b, 1);
                let entropy = tape.mean_all(ent_row);
                PlacerOutput { actions, step_log_probs, log_prob, entropy }
            })
            .collect()
    }
}

/// The two-layer GCN placer (paper Fig. 3b): graph convolutions over the *group*
/// graph, then an independent softmax per group. Requires the group adjacency,
/// provided as a row-normalized matrix with self-loops.
#[derive(Debug, Clone)]
pub struct GcnPlacer {
    l1: FeedForward,
    l2: Linear,
    adj: Tensor,
    n_devices: usize,
}

impl GcnPlacer {
    /// Registers the two graph-convolution layers. `adj` must be `(k, k)`,
    /// row-normalized with self-loops (see [`normalize_adjacency`]).
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        hidden: usize,
        n_devices: usize,
        adj: Tensor,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        Self {
            l1: FeedForward::new(
                params,
                &format!("{name}/gc1"),
                &[d_in, hidden],
                Activation::Identity,
                rng,
            ),
            l2: Linear::new(params, &format!("{name}/gc2"), hidden, n_devices, rng),
            adj,
            n_devices,
        }
    }
}

impl Placer for GcnPlacer {
    fn num_devices(&self) -> usize {
        self.n_devices
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput {
        let k = tape.value(x).rows();
        assert_eq!(self.adj.rows(), k, "adjacency size must match group count");
        if let Some(f) = forced {
            assert_eq!(f.len(), k, "forced actions must cover every group");
        }
        let a = tape.leaf(self.adj.clone());
        let xw = self.l1.forward(tape, params, x);
        let ax = tape.matmul(a, xw);
        let h1 = tape.relu(ax);
        let hw = self.l2.forward(tape, params, h1);
        let logits = tape.matmul(a, hw); // (k, nd)

        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);
        let actions: Vec<usize> = (0..k)
            .map(|i| match forced {
                Some(f) => f[i],
                None => sample_categorical(tape.value(probs).row(i), rng),
            })
            .collect();
        let step_log_probs = tape.pick_per_row(log_probs, &actions);
        let log_prob = tape.sum_all(step_log_probs);
        let plogp = tape.mul_elem(probs, log_probs);
        let total = tape.sum_all(plogp);
        let scaled = tape.scale(total, -1.0 / k as f32);
        PlacerOutput { actions, step_log_probs, log_prob, entropy: scaled }
    }

    fn forward_batch(
        &self,
        tape: &mut Tape,
        params: &Params,
        xs: &[Var],
        forced: Option<&[&[usize]]>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<PlacerOutput> {
        let (bsz, k) = check_batch_args(tape, xs, forced, rngs);
        assert_eq!(self.adj.rows(), k, "adjacency size must match group count");
        let x = if bsz == 1 { xs[0] } else { tape.concat_rows(xs) }; // (B·k, d)
                                                                     // Block-diagonal adjacency: the off-block entries are exact zeros, and
                                                                     // adding a `±0.0` product to a (never `-0.0`) matmul accumulator is a
                                                                     // bitwise no-op, so each block's inner summation lands on exactly the
                                                                     // per-episode (k, k) product whether the kernel skips zeros (naive) or
                                                                     // streams them (blocked).
        let a = tape.leaf(block_diag(&self.adj, bsz));
        let xw = self.l1.forward(tape, params, x);
        let ax = tape.matmul(a, xw);
        let h1 = tape.relu(ax);
        let hw = self.l2.forward(tape, params, h1);
        let logits = tape.matmul(a, hw); // (B·k, nd)

        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);
        let flat_actions = sample_flat(tape, probs, forced, rngs, bsz, k);
        let picked = tape.pick_per_row(log_probs, &flat_actions); // (B·k, 1)
        let plogp = tape.mul_elem(probs, log_probs);
        (0..bsz)
            .map(|b| {
                let step_log_probs = tape.slice_rows(picked, b * k, k);
                let log_prob = tape.sum_all(step_log_probs);
                let ep_plogp = tape.slice_rows(plogp, b * k, k);
                let total = tape.sum_all(ep_plogp);
                let entropy = tape.scale(total, -1.0 / k as f32);
                PlacerOutput {
                    actions: flat_actions[b * k..(b + 1) * k].to_vec(),
                    step_log_probs,
                    log_prob,
                    entropy,
                }
            })
            .collect()
    }
}

/// Stacks `bsz` copies of `adj` on the diagonal of a `(bsz·k, bsz·k)` matrix.
fn block_diag(adj: &Tensor, bsz: usize) -> Tensor {
    if bsz == 1 {
        return adj.clone();
    }
    let k = adj.rows();
    let mut big = Tensor::zeros(bsz * k, bsz * k);
    for b in 0..bsz {
        for r in 0..k {
            for c in 0..k {
                let v = adj.get(r, c);
                if v != 0.0 {
                    big.set(b * k + r, b * k + c, v);
                }
            }
        }
    }
    big
}

/// Episode-major action selection over a `(bsz·k, nd)` probability matrix:
/// episode `b` owns rows `b·k..(b+1)·k` and draws from `rngs[b]` only, in row
/// order — the same draw sequence a serial per-episode pass consumes.
fn sample_flat(
    tape: &Tape,
    probs: Var,
    forced: Option<&[&[usize]]>,
    rngs: &mut [&mut dyn rand::RngCore],
    bsz: usize,
    k: usize,
) -> Vec<usize> {
    let mut flat = Vec::with_capacity(bsz * k);
    for b in 0..bsz {
        match forced {
            Some(f) => flat.extend_from_slice(f[b]),
            None => {
                let pv = tape.value(probs);
                for i in 0..k {
                    flat.push(sample_categorical(pv.row(b * k + i), &mut *rngs[b]));
                }
            }
        }
    }
    flat
}

/// Post's "simple neural network" placer: an MLP mapping each group embedding to an
/// independent categorical over devices. No recurrence, no attention — the paper
/// credits its stability (and blames its local optima) on exactly this simplicity.
#[derive(Debug, Clone)]
pub struct SimplePlacer {
    net: FeedForward,
    n_devices: usize,
}

impl SimplePlacer {
    /// Registers a `d_in -> hidden -> n_devices` ReLU MLP.
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        hidden: usize,
        n_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            net: FeedForward::new(params, name, &[d_in, hidden, n_devices], Activation::Relu, rng),
            n_devices,
        }
    }
}

impl Placer for SimplePlacer {
    fn num_devices(&self) -> usize {
        self.n_devices
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput {
        let k = tape.value(x).rows();
        if let Some(f) = forced {
            assert_eq!(f.len(), k, "forced actions must cover every group");
        }
        let logits = self.net.forward(tape, params, x);
        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);
        let actions: Vec<usize> = (0..k)
            .map(|i| match forced {
                Some(f) => f[i],
                None => sample_categorical(tape.value(probs).row(i), rng),
            })
            .collect();
        let step_log_probs = tape.pick_per_row(log_probs, &actions);
        let log_prob = tape.sum_all(step_log_probs);
        let plogp = tape.mul_elem(probs, log_probs);
        let total = tape.sum_all(plogp);
        let entropy = tape.scale(total, -1.0 / k as f32);
        PlacerOutput { actions, step_log_probs, log_prob, entropy }
    }

    fn forward_batch(
        &self,
        tape: &mut Tape,
        params: &Params,
        xs: &[Var],
        forced: Option<&[&[usize]]>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<PlacerOutput> {
        let (bsz, k) = check_batch_args(tape, xs, forced, rngs);
        let x = if bsz == 1 { xs[0] } else { tape.concat_rows(xs) }; // (B·k, d)
        let logits = self.net.forward(tape, params, x); // (B·k, nd)
        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);
        let flat_actions = sample_flat(tape, probs, forced, rngs, bsz, k);
        let picked = tape.pick_per_row(log_probs, &flat_actions); // (B·k, 1)
        let plogp = tape.mul_elem(probs, log_probs);
        (0..bsz)
            .map(|b| {
                let step_log_probs = tape.slice_rows(picked, b * k, k);
                let log_prob = tape.sum_all(step_log_probs);
                let ep_plogp = tape.slice_rows(plogp, b * k, k);
                let total = tape.sum_all(ep_plogp);
                let entropy = tape.scale(total, -1.0 / k as f32);
                PlacerOutput {
                    actions: flat_actions[b * k..(b + 1) * k].to_vec(),
                    step_log_probs,
                    log_prob,
                    entropy,
                }
            })
            .collect()
    }
}

/// Builds the row-normalized group adjacency (with self-loops) the GCN placer
/// expects, from a hard op-to-group assignment.
pub fn normalize_adjacency(graph: &eagle_opgraph::OpGraph, group_of: &[usize], k: usize) -> Tensor {
    let mut adj = Tensor::zeros(k, k);
    for (u, v) in graph.edges() {
        let (gu, gv) = (group_of[u.index()], group_of[v.index()]);
        if gu != gv {
            adj.set(gu, gv, 1.0);
            adj.set(gv, gu, 1.0);
        }
    }
    for i in 0..k {
        adj.set(i, i, 1.0);
    }
    for r in 0..k {
        let sum: f32 = adj.row(r).iter().sum();
        for c in 0..k {
            let v = adj.get(r, c) / sum;
            adj.set(r, c, v);
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(mode: AttentionMode) -> (Params, Seq2SeqPlacer) {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let placer = Seq2SeqPlacer::new(&mut params, "p", 7, 12, 8, 5, mode, &mut rng);
        (params, placer)
    }

    fn run(
        params: &Params,
        placer: &impl Placer,
        x: &Tensor,
        forced: Option<&[usize]>,
        seed: u64,
    ) -> (Vec<usize>, f32, f32) {
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = placer.forward(&mut tape, params, xv, forced, &mut rng);
        (out.actions.clone(), tape.value(out.log_prob).item(), tape.value(out.entropy).item())
    }

    /// Runs `forward_batch` and asserts every episode matches a serial
    /// per-episode `forward` replay bit-for-bit (actions, log-prob, entropy,
    /// per-step log-probs).
    fn assert_batch_matches_serial(
        params: &Params,
        placer: &impl Placer,
        inputs: &[Tensor],
        seed: u64,
    ) {
        let k = inputs[0].rows();
        let mut tape = Tape::new();
        let xvs: Vec<Var> = inputs.iter().map(|x| tape.leaf(x.clone())).collect();
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let mut streams = eagle_rl::fork_streams(&mut master, k, inputs.len());
        let mut refs: Vec<&mut dyn rand::RngCore> =
            streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
        let outs = placer.forward_batch(&mut tape, params, &xvs, None, &mut refs);
        assert_eq!(outs.len(), inputs.len());

        let mut serial_rng = ChaCha8Rng::seed_from_u64(seed);
        for (x, out) in inputs.iter().zip(&outs) {
            let mut ref_tape = Tape::new();
            let xv = ref_tape.leaf(x.clone());
            let ref_out = placer.forward(&mut ref_tape, params, xv, None, &mut serial_rng);
            assert_eq!(out.actions, ref_out.actions, "sampled actions diverge");
            assert_eq!(
                tape.value(out.log_prob).item().to_bits(),
                ref_tape.value(ref_out.log_prob).item().to_bits(),
                "log-prob not bit-identical"
            );
            assert_eq!(
                tape.value(out.entropy).item().to_bits(),
                ref_tape.value(ref_out.entropy).item().to_bits(),
                "entropy not bit-identical"
            );
            assert_eq!(
                tape.value(out.step_log_probs).data(),
                ref_tape.value(ref_out.step_log_probs).data(),
                "per-step log-probs diverge"
            );
        }
    }

    #[test]
    fn seq2seq_forward_batch_matches_serial_shared_input() {
        for mode in [AttentionMode::Before, AttentionMode::After] {
            let (params, placer) = setup(mode);
            // All episodes share one input tensor (the EAGLE agent's shape).
            let x = Tensor::full(6, 7, 0.3);
            assert_batch_matches_serial(&params, &placer, &[x.clone(), x.clone(), x], 11);
        }
    }

    #[test]
    fn seq2seq_forward_batch_matches_serial_distinct_inputs() {
        let (params, placer) = setup(AttentionMode::Before);
        // Distinct per-episode inputs (the HP agent's shape).
        let inputs: Vec<Tensor> =
            (0..3).map(|i| Tensor::full(6, 7, 0.1 * (i as f32 + 1.0))).collect();
        assert_batch_matches_serial(&params, &placer, &inputs, 12);
    }

    #[test]
    fn gcn_and_simple_forward_batch_match_serial() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let adj = Tensor::eye(4);
        let gcn = GcnPlacer::new(&mut params, "g", 7, 10, 5, adj, &mut rng);
        let simple = SimplePlacer::new(&mut params, "s", 7, 10, 5, &mut rng);
        let inputs: Vec<Tensor> =
            (0..4).map(|i| Tensor::full(4, 7, 0.2 * (i as f32 + 1.0))).collect();
        assert_batch_matches_serial(&params, &gcn, &inputs, 21);
        assert_batch_matches_serial(&params, &simple, &inputs, 22);
    }

    #[test]
    fn forward_batch_teacher_forcing_matches_serial() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(5, 7, 0.1);
        let forced: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3, 4], vec![4, 4, 4, 4, 4]];
        let forced_refs: Vec<&[usize]> = forced.iter().map(|a| a.as_slice()).collect();
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let outs = placer.forward_batch(&mut tape, &params, &[xv, xv], Some(&forced_refs), &mut []);
        for (a, out) in forced.iter().zip(&outs) {
            let (actions, logp, ent) = run(&params, &placer, &x, Some(a), 7);
            assert_eq!(&out.actions, a);
            assert_eq!(actions, *a);
            assert_eq!(tape.value(out.log_prob).item().to_bits(), logp.to_bits());
            assert_eq!(tape.value(out.entropy).item().to_bits(), ent.to_bits());
        }
    }

    #[test]
    fn forward_batch_gradients_match_serial_bitwise() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(4, 7, 0.2);
        let forced: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]];
        let forced_refs: Vec<&[usize]> = forced.iter().map(|a| a.as_slice()).collect();

        // Batched: one shared tape, per-episode backward in episode order.
        let mut batch_params = params.clone();
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let outs =
            placer.forward_batch(&mut tape, &batch_params, &[xv, xv], Some(&forced_refs), &mut []);
        for out in &outs {
            let loss = tape.neg(out.log_prob);
            tape.backward(loss, &mut batch_params);
        }

        // Serial reference: separate tape per episode.
        let mut serial_params = params.clone();
        for a in &forced {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let out = placer.forward(
                &mut t,
                &serial_params,
                xv,
                Some(a),
                &mut ChaCha8Rng::seed_from_u64(0),
            );
            let loss = t.neg(out.log_prob);
            t.backward(loss, &mut serial_params);
        }

        assert_eq!(
            batch_params.grad_global_norm().to_bits(),
            serial_params.grad_global_norm().to_bits(),
            "accumulated gradients diverge between batched and serial scoring"
        );
    }

    #[test]
    fn seq2seq_before_samples_valid_actions() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(6, 7, 0.3);
        let (actions, logp, ent) = run(&params, &placer, &x, None, 1);
        assert_eq!(actions.len(), 6);
        assert!(actions.iter().all(|&a| a < 5));
        assert!(logp < 0.0, "log-prob of a sample is negative");
        assert!(ent > 0.0 && ent <= (5.0f32).ln() + 1e-4, "entropy in (0, ln 5]");
    }

    #[test]
    fn seq2seq_after_mode_works_too() {
        let (params, placer) = setup(AttentionMode::After);
        let x = Tensor::full(4, 7, -0.2);
        let (actions, logp, _) = run(&params, &placer, &x, None, 2);
        assert_eq!(actions.len(), 4);
        assert!(logp.is_finite());
    }

    #[test]
    fn teacher_forcing_reproduces_log_prob() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(5, 7, 0.1);
        let (actions, logp_sampled, _) = run(&params, &placer, &x, None, 3);
        // Re-scoring the same actions must give the same joint log-probability.
        let (actions2, logp_forced, _) = run(&params, &placer, &x, Some(&actions), 99);
        assert_eq!(actions, actions2);
        assert!((logp_sampled - logp_forced).abs() < 1e-4);
    }

    #[test]
    fn different_forced_actions_change_log_prob() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(5, 7, 0.1);
        let (_, lp_a, _) = run(&params, &placer, &x, Some(&[0, 0, 0, 0, 0]), 1);
        let (_, lp_b, _) = run(&params, &placer, &x, Some(&[4, 4, 4, 4, 4]), 1);
        assert_ne!(lp_a, lp_b);
    }

    #[test]
    fn gcn_placer_shapes_and_determinism() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let adj = Tensor::eye(4);
        let placer = GcnPlacer::new(&mut params, "g", 7, 10, 5, adj, &mut rng);
        let x = Tensor::full(4, 7, 0.5);
        let (a1, lp1, ent) = run(&params, &placer, &x, None, 42);
        let (a2, lp2, _) = run(&params, &placer, &x, None, 42);
        assert_eq!(a1, a2, "same sampling seed, same actions");
        assert_eq!(lp1, lp2);
        assert!(ent > 0.0);
        assert!(a1.iter().all(|&a| a < 5));
    }

    #[test]
    fn normalize_adjacency_rows_sum_to_one() {
        use eagle_opgraph::{OpGraph, OpKind, OpNode, Phase};
        let mut g = OpGraph::new("t");
        let a = g.add_node(OpNode::new("a", OpKind::MatMul, Phase::Forward));
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward));
        let c = g.add_node(OpNode::new("c", OpKind::MatMul, Phase::Forward));
        g.add_edge(a, b);
        g.add_edge(b, c);
        let adj = normalize_adjacency(&g, &[0, 1, 1], 2);
        for r in 0..2 {
            let s: f32 = adj.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(adj.get(0, 1) > 0.0, "groups 0 and 1 are connected");
    }

    #[test]
    fn gradients_flow_through_placer() {
        let (mut params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(3, 7, 0.2);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let out = placer.forward(&mut tape, &params, xv, None, &mut rng);
        let loss = tape.neg(out.log_prob);
        tape.backward(loss, &mut params);
        assert!(params.grad_global_norm() > 0.0, "some gradient must reach the params");
    }
}
