//! Placer networks: sequence-to-sequence with Bahdanau attention (the paper's
//! choice, Fig. 3a / Fig. 4) and a graph-convolutional alternative (Fig. 3b).
//!
//! Both consume a `(k, d_in)` matrix of group embeddings and emit one device per
//! group. They expose a single `forward` that either *samples* actions or
//! *teacher-forces* a given action sequence (needed to re-evaluate log-probabilities
//! of old samples under new parameters for PPO's ratio).

use eagle_tensor::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

use crate::linear::{Activation, FeedForward, Linear};
use crate::lstm::{BiLstm, LstmCell};

/// Where the attention context enters the decoder (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMode {
    /// Context is an extra *input* to the decoder LSTM (paper's pick for EAGLE:
    /// "the attention score is applied before feeding to the decoder").
    Before,
    /// Context is combined with the decoder *output* before the softmax
    /// (Hierarchical Planner's variant).
    After,
}

/// Output of one placer forward pass.
#[derive(Debug, Clone)]
pub struct PlacerOutput {
    /// Chosen device index per group.
    pub actions: Vec<usize>,
    /// Per-group log-probability of the chosen device, `(k, 1)` on the tape.
    pub step_log_probs: Var,
    /// Sum of log-probabilities (the joint placement log-probability), `1x1`.
    pub log_prob: Var,
    /// Mean per-step policy entropy, `1x1`.
    pub entropy: Var,
}

/// Common interface of the two placer designs.
pub trait Placer {
    /// Decodes a placement for `x: (k, d_in)` group embeddings. When `forced` is
    /// given, its actions are scored instead of sampling new ones.
    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput;

    /// Number of devices the placer chooses among.
    fn num_devices(&self) -> usize;
}

/// Samples an index from one softmax probability row by inverse-CDF.
///
/// Degenerate rows — a NaN/∞ entry or a near-zero sum, both producible by
/// extreme logits overflowing the softmax — fall back to the argmax over the
/// finite entries (first index on ties, 0 if nothing is finite) instead of
/// silently returning the last device. The RNG is always advanced exactly
/// once, so healthy rows keep the identical sampling stream they had before
/// the guard existed.
fn sample_row(probs: &[f32], rng: &mut dyn rand::RngCore) -> usize {
    let r: f32 = rng.gen();
    let sum: f32 = probs.iter().sum();
    if !sum.is_finite() || sum <= 1e-12 {
        let mut best: Option<(usize, f32)> = None;
        for (i, &p) in probs.iter().enumerate() {
            if p.is_finite() && best.is_none_or(|(_, bp)| p > bp) {
                best = Some((i, p));
            }
        }
        return best.map_or(0, |(i, _)| i);
    }
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Scores and entropy for one decode step; shared by both placers.
fn step_policy(
    tape: &mut Tape,
    logits: Var,
    forced: Option<usize>,
    rng: &mut dyn rand::RngCore,
) -> (usize, Var, Var) {
    let log_probs = tape.log_softmax(logits);
    let probs = tape.softmax(logits);
    let action = match forced {
        Some(a) => a,
        None => sample_row(tape.value(probs).row(0), rng),
    };
    let logp = tape.pick_per_row(log_probs, &[action]);
    let plogp = tape.mul_elem(probs, log_probs);
    let sum = tape.sum_all(plogp);
    let ent = tape.neg(sum);
    (action, logp, ent)
}

/// The sequence-to-sequence placer (paper Fig. 3a): bi-LSTM encoder over group
/// embeddings, uni-LSTM decoder emitting one device per group, Bahdanau
/// content-based attention, previous decision fed back via a device embedding.
#[derive(Debug, Clone)]
pub struct Seq2SeqPlacer {
    input_proj: Linear,
    encoder: BiLstm,
    decoder: LstmCell,
    attn_enc: Linear,
    attn_dec: Linear,
    attn_v: ParamId,
    out: Linear,
    dev_emb: ParamId,
    mode: AttentionMode,
    hidden: usize,
    n_devices: usize,
}

impl Seq2SeqPlacer {
    /// Registers all parameters. `hidden` is the LSTM size (512 in the paper;
    /// smaller for quick experiments), `attn_dim` the attention space.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        hidden: usize,
        attn_dim: usize,
        n_devices: usize,
        mode: AttentionMode,
        rng: &mut impl Rng,
    ) -> Self {
        let emb_dim = (hidden / 4).max(4);
        let dec_in = match mode {
            AttentionMode::Before => hidden + 2 * hidden + emb_dim,
            AttentionMode::After => hidden + emb_dim,
        };
        let out_in = match mode {
            AttentionMode::Before => hidden,
            AttentionMode::After => hidden + 2 * hidden,
        };
        Self {
            input_proj: Linear::new(params, &format!("{name}/in_proj"), d_in, hidden, rng),
            encoder: BiLstm::new(params, &format!("{name}/enc"), hidden, hidden, rng),
            decoder: LstmCell::new(params, &format!("{name}/dec"), dec_in, hidden, rng),
            attn_enc: Linear::new(params, &format!("{name}/attn_enc"), 2 * hidden, attn_dim, rng),
            attn_dec: Linear::new(params, &format!("{name}/attn_dec"), hidden, attn_dim, rng),
            attn_v: params.add(format!("{name}/attn_v"), init::xavier_uniform(attn_dim, 1, rng)),
            out: Linear::new(params, &format!("{name}/out"), out_in, n_devices, rng),
            // Row n_devices is the start-of-sequence token.
            dev_emb: params
                .add(format!("{name}/dev_emb"), init::uniform(n_devices + 1, emb_dim, 0.1, rng)),
            mode,
            hidden,
            n_devices,
        }
    }

    /// The attention-application mode.
    pub fn mode(&self) -> AttentionMode {
        self.mode
    }

    /// Bahdanau context for the current decoder state.
    fn context(
        &self,
        tape: &mut Tape,
        params: &Params,
        enc_outs: Var,
        enc_proj: Var,
        dec_h: Var,
    ) -> Var {
        let dec_proj = self.attn_dec.forward(tape, params, dec_h); // (1, a)
        let pre = tape.add_row_broadcast(enc_proj, dec_proj); // (k, a)
        let act = tape.tanh(pre);
        let v = tape.param(params, self.attn_v);
        let scores = tape.matmul(act, v); // (k, 1)
        let scores_row = tape.transpose(scores); // (1, k)
        let alpha = tape.softmax(scores_row); // (1, k)
        tape.matmul(alpha, enc_outs) // (1, 2h)
    }
}

impl Placer for Seq2SeqPlacer {
    fn num_devices(&self) -> usize {
        self.n_devices
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput {
        let k = tape.value(x).rows();
        if let Some(f) = forced {
            assert_eq!(f.len(), k, "forced actions must cover every group");
        }
        let xs = self.input_proj.forward(tape, params, x); // (k, h)
        let (enc_outs, enc_last) = self.encoder.forward(tape, params, xs); // (k, 2h)
        let enc_proj = self.attn_enc.forward(tape, params, enc_outs); // (k, a)

        let mut state =
            crate::lstm::LstmState { h: enc_last.h, c: tape.leaf(Tensor::zeros(1, self.hidden)) };
        let dev_table = tape.param(params, self.dev_emb);
        let mut prev_action = self.n_devices; // start token
        let mut actions = Vec::with_capacity(k);
        let mut logps = Vec::with_capacity(k);
        let mut ents = Vec::with_capacity(k);

        for i in 0..k {
            let x_i = tape.slice_rows(xs, i, 1); // (1, h)
            let prev_emb = tape.select_rows(dev_table, &[prev_action]); // (1, e)
            let (h_i, logits) = match self.mode {
                AttentionMode::Before => {
                    let ctx = self.context(tape, params, enc_outs, enc_proj, state.h);
                    let inp = tape.concat_cols(&[x_i, ctx, prev_emb]);
                    state = self.decoder.step(tape, params, inp, state);
                    (state.h, self.out.forward(tape, params, state.h))
                }
                AttentionMode::After => {
                    let inp = tape.concat_cols(&[x_i, prev_emb]);
                    state = self.decoder.step(tape, params, inp, state);
                    let ctx = self.context(tape, params, enc_outs, enc_proj, state.h);
                    let combined = tape.concat_cols(&[state.h, ctx]);
                    (state.h, self.out.forward(tape, params, combined))
                }
            };
            let _ = h_i;
            let (a, logp, ent) = step_policy(tape, logits, forced.map(|f| f[i]), rng);
            actions.push(a);
            prev_action = a;
            logps.push(logp);
            ents.push(ent);
        }

        let step_log_probs = tape.concat_rows(&logps);
        let log_prob = tape.sum_all(step_log_probs);
        let ent_stack = tape.concat_rows(&ents);
        let entropy = tape.mean_all(ent_stack);
        PlacerOutput { actions, step_log_probs, log_prob, entropy }
    }
}

/// The two-layer GCN placer (paper Fig. 3b): graph convolutions over the *group*
/// graph, then an independent softmax per group. Requires the group adjacency,
/// provided as a row-normalized matrix with self-loops.
#[derive(Debug, Clone)]
pub struct GcnPlacer {
    l1: FeedForward,
    l2: Linear,
    adj: Tensor,
    n_devices: usize,
}

impl GcnPlacer {
    /// Registers the two graph-convolution layers. `adj` must be `(k, k)`,
    /// row-normalized with self-loops (see [`normalize_adjacency`]).
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        hidden: usize,
        n_devices: usize,
        adj: Tensor,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        Self {
            l1: FeedForward::new(
                params,
                &format!("{name}/gc1"),
                &[d_in, hidden],
                Activation::Identity,
                rng,
            ),
            l2: Linear::new(params, &format!("{name}/gc2"), hidden, n_devices, rng),
            adj,
            n_devices,
        }
    }
}

impl Placer for GcnPlacer {
    fn num_devices(&self) -> usize {
        self.n_devices
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput {
        let k = tape.value(x).rows();
        assert_eq!(self.adj.rows(), k, "adjacency size must match group count");
        if let Some(f) = forced {
            assert_eq!(f.len(), k, "forced actions must cover every group");
        }
        let a = tape.leaf(self.adj.clone());
        let xw = self.l1.forward(tape, params, x);
        let ax = tape.matmul(a, xw);
        let h1 = tape.relu(ax);
        let hw = self.l2.forward(tape, params, h1);
        let logits = tape.matmul(a, hw); // (k, nd)

        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);
        let actions: Vec<usize> = (0..k)
            .map(|i| match forced {
                Some(f) => f[i],
                None => sample_row(tape.value(probs).row(i), rng),
            })
            .collect();
        let step_log_probs = tape.pick_per_row(log_probs, &actions);
        let log_prob = tape.sum_all(step_log_probs);
        let plogp = tape.mul_elem(probs, log_probs);
        let total = tape.sum_all(plogp);
        let scaled = tape.scale(total, -1.0 / k as f32);
        PlacerOutput { actions, step_log_probs, log_prob, entropy: scaled }
    }
}

/// Post's "simple neural network" placer: an MLP mapping each group embedding to an
/// independent categorical over devices. No recurrence, no attention — the paper
/// credits its stability (and blames its local optima) on exactly this simplicity.
#[derive(Debug, Clone)]
pub struct SimplePlacer {
    net: FeedForward,
    n_devices: usize,
}

impl SimplePlacer {
    /// Registers a `d_in -> hidden -> n_devices` ReLU MLP.
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        hidden: usize,
        n_devices: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            net: FeedForward::new(params, name, &[d_in, hidden, n_devices], Activation::Relu, rng),
            n_devices,
        }
    }
}

impl Placer for SimplePlacer {
    fn num_devices(&self) -> usize {
        self.n_devices
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        x: Var,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> PlacerOutput {
        let k = tape.value(x).rows();
        if let Some(f) = forced {
            assert_eq!(f.len(), k, "forced actions must cover every group");
        }
        let logits = self.net.forward(tape, params, x);
        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);
        let actions: Vec<usize> = (0..k)
            .map(|i| match forced {
                Some(f) => f[i],
                None => sample_row(tape.value(probs).row(i), rng),
            })
            .collect();
        let step_log_probs = tape.pick_per_row(log_probs, &actions);
        let log_prob = tape.sum_all(step_log_probs);
        let plogp = tape.mul_elem(probs, log_probs);
        let total = tape.sum_all(plogp);
        let entropy = tape.scale(total, -1.0 / k as f32);
        PlacerOutput { actions, step_log_probs, log_prob, entropy }
    }
}

/// Builds the row-normalized group adjacency (with self-loops) the GCN placer
/// expects, from a hard op-to-group assignment.
pub fn normalize_adjacency(graph: &eagle_opgraph::OpGraph, group_of: &[usize], k: usize) -> Tensor {
    let mut adj = Tensor::zeros(k, k);
    for (u, v) in graph.edges() {
        let (gu, gv) = (group_of[u.index()], group_of[v.index()]);
        if gu != gv {
            adj.set(gu, gv, 1.0);
            adj.set(gv, gu, 1.0);
        }
    }
    for i in 0..k {
        adj.set(i, i, 1.0);
    }
    for r in 0..k {
        let sum: f32 = adj.row(r).iter().sum();
        for c in 0..k {
            let v = adj.get(r, c) / sum;
            adj.set(r, c, v);
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(mode: AttentionMode) -> (Params, Seq2SeqPlacer) {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let placer = Seq2SeqPlacer::new(&mut params, "p", 7, 12, 8, 5, mode, &mut rng);
        (params, placer)
    }

    fn run(
        params: &Params,
        placer: &impl Placer,
        x: &Tensor,
        forced: Option<&[usize]>,
        seed: u64,
    ) -> (Vec<usize>, f32, f32) {
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = placer.forward(&mut tape, params, xv, forced, &mut rng);
        (out.actions.clone(), tape.value(out.log_prob).item(), tape.value(out.entropy).item())
    }

    #[test]
    fn sample_row_degenerate_rows_fall_back_to_finite_argmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // NaN poisons the sum: argmax over the finite entries wins.
        assert_eq!(sample_row(&[f32::NAN, 0.2, 0.7], &mut rng), 2);
        // Overflowed softmax (∞ entry): the ∞ is skipped, not "last device".
        assert_eq!(sample_row(&[0.3, f32::INFINITY, 0.1], &mut rng), 0);
        // Near-zero mass (all-underflowed row): first index on ties.
        assert_eq!(sample_row(&[0.0, 0.0, 0.0], &mut rng), 0);
        // Nothing finite at all: index 0, not a panic.
        assert_eq!(sample_row(&[f32::NAN, f32::NAN], &mut rng), 0);
        // Negative-underflow garbage still picks the largest finite entry.
        assert_eq!(sample_row(&[-1.0, f32::NAN, -0.5], &mut rng), 2);
    }

    #[test]
    fn sample_row_healthy_rows_keep_their_rng_stream() {
        // The degenerate guard must consume exactly one draw, like the healthy
        // path: interleaving degenerate calls cannot shift healthy samples.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let healthy = [0.1f32, 0.7, 0.2];
        let _ = sample_row(&healthy, &mut a);
        let first_a = sample_row(&healthy, &mut a);
        let _ = sample_row(&[f32::NAN, 1.0], &mut b);
        let first_b = sample_row(&healthy, &mut b);
        assert_eq!(first_a, first_b);
        // And a healthy row samples by inverse-CDF: probability-1 mass on one
        // index always returns it.
        for _ in 0..16 {
            assert_eq!(sample_row(&[0.0, 1.0, 0.0], &mut a), 1);
        }
    }

    #[test]
    fn seq2seq_before_samples_valid_actions() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(6, 7, 0.3);
        let (actions, logp, ent) = run(&params, &placer, &x, None, 1);
        assert_eq!(actions.len(), 6);
        assert!(actions.iter().all(|&a| a < 5));
        assert!(logp < 0.0, "log-prob of a sample is negative");
        assert!(ent > 0.0 && ent <= (5.0f32).ln() + 1e-4, "entropy in (0, ln 5]");
    }

    #[test]
    fn seq2seq_after_mode_works_too() {
        let (params, placer) = setup(AttentionMode::After);
        let x = Tensor::full(4, 7, -0.2);
        let (actions, logp, _) = run(&params, &placer, &x, None, 2);
        assert_eq!(actions.len(), 4);
        assert!(logp.is_finite());
    }

    #[test]
    fn teacher_forcing_reproduces_log_prob() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(5, 7, 0.1);
        let (actions, logp_sampled, _) = run(&params, &placer, &x, None, 3);
        // Re-scoring the same actions must give the same joint log-probability.
        let (actions2, logp_forced, _) = run(&params, &placer, &x, Some(&actions), 99);
        assert_eq!(actions, actions2);
        assert!((logp_sampled - logp_forced).abs() < 1e-4);
    }

    #[test]
    fn different_forced_actions_change_log_prob() {
        let (params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(5, 7, 0.1);
        let (_, lp_a, _) = run(&params, &placer, &x, Some(&[0, 0, 0, 0, 0]), 1);
        let (_, lp_b, _) = run(&params, &placer, &x, Some(&[4, 4, 4, 4, 4]), 1);
        assert_ne!(lp_a, lp_b);
    }

    #[test]
    fn gcn_placer_shapes_and_determinism() {
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let adj = Tensor::eye(4);
        let placer = GcnPlacer::new(&mut params, "g", 7, 10, 5, adj, &mut rng);
        let x = Tensor::full(4, 7, 0.5);
        let (a1, lp1, ent) = run(&params, &placer, &x, None, 42);
        let (a2, lp2, _) = run(&params, &placer, &x, None, 42);
        assert_eq!(a1, a2, "same sampling seed, same actions");
        assert_eq!(lp1, lp2);
        assert!(ent > 0.0);
        assert!(a1.iter().all(|&a| a < 5));
    }

    #[test]
    fn normalize_adjacency_rows_sum_to_one() {
        use eagle_opgraph::{OpGraph, OpKind, OpNode, Phase};
        let mut g = OpGraph::new("t");
        let a = g.add_node(OpNode::new("a", OpKind::MatMul, Phase::Forward));
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward));
        let c = g.add_node(OpNode::new("c", OpKind::MatMul, Phase::Forward));
        g.add_edge(a, b);
        g.add_edge(b, c);
        let adj = normalize_adjacency(&g, &[0, 1, 1], 2);
        for r in 0..2 {
            let s: f32 = adj.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(adj.get(0, 1) > 0.0, "groups 0 and 1 are connected");
    }

    #[test]
    fn gradients_flow_through_placer() {
        let (mut params, placer) = setup(AttentionMode::Before);
        let x = Tensor::full(3, 7, 0.2);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let out = placer.forward(&mut tape, &params, xv, None, &mut rng);
        let loss = tape.neg(out.log_prob);
        tape.backward(loss, &mut params);
        assert!(params.grad_global_norm() > 0.0, "some gradient must reach the params");
    }
}
