//! Property-based tests of the placer networks: probabilistic invariants that must
//! hold for arbitrary embeddings, sizes and seeds.

use eagle_nn::{AttentionMode, GcnPlacer, Placer, Seq2SeqPlacer, SimplePlacer};
use eagle_tensor::{init, Params, Tape, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn embeddings(k: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    init::uniform(k, d, 1.0, &mut rng)
}

fn check_placer(placer: &dyn Placer, params: &Params, x: &Tensor, nd: usize, seed: u64) {
    let k = x.rows();
    // Sample.
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = placer.forward(&mut tape, params, xv, None, &mut rng);
    assert_eq!(out.actions.len(), k);
    assert!(out.actions.iter().all(|&a| a < nd));
    let logp = tape.value(out.log_prob).item();
    assert!(logp <= 0.0 && logp.is_finite(), "joint log-prob in (-inf, 0]: {logp}");
    // Per-step log-probs sum to the joint.
    let sum: f32 = tape.value(out.step_log_probs).data().iter().sum();
    assert!((sum - logp).abs() < 1e-3);
    // Entropy within [0, ln nd].
    let ent = tape.value(out.entropy).item();
    assert!(ent >= -1e-5 && ent <= (nd as f32).ln() + 1e-4, "entropy {ent}");
    // Teacher-forcing the sampled actions reproduces the joint log-prob.
    let mut tape2 = Tape::new();
    let xv2 = tape2.leaf(x.clone());
    let mut noop = ChaCha8Rng::seed_from_u64(0);
    let out2 = placer.forward(&mut tape2, params, xv2, Some(&out.actions), &mut noop);
    assert_eq!(out2.actions, out.actions);
    assert!((tape2.value(out2.log_prob).item() - logp).abs() < 1e-3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn seq2seq_invariants(k in 1usize..8, nd in 2usize..6, seed in 0u64..300, before in any::<bool>()) {
        let d = 5;
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mode = if before { AttentionMode::Before } else { AttentionMode::After };
        let placer = Seq2SeqPlacer::new(&mut params, "p", d, 10, 6, nd, mode, &mut rng);
        let x = embeddings(k, d, seed + 1);
        check_placer(&placer, &params, &x, nd, seed + 2);
    }

    #[test]
    fn gcn_invariants(k in 1usize..8, nd in 2usize..6, seed in 0u64..300) {
        let d = 5;
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placer = GcnPlacer::new(&mut params, "g", d, 8, nd, Tensor::eye(k), &mut rng);
        let x = embeddings(k, d, seed + 1);
        check_placer(&placer, &params, &x, nd, seed + 2);
    }

    #[test]
    fn simple_invariants(k in 1usize..10, nd in 2usize..6, seed in 0u64..300) {
        let d = 5;
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placer = SimplePlacer::new(&mut params, "s", d, 8, nd, &mut rng);
        let x = embeddings(k, d, seed + 1);
        check_placer(&placer, &params, &x, nd, seed + 2);
    }
}
