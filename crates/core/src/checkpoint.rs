//! Checkpointing: persist and restore the complete training state.
//!
//! Training against real hardware costs hours (the paper's setting), so being able
//! to stop and resume an agent — or to re-evaluate a trained placement later — is
//! table stakes for a usable system. This module persists three kinds of artifact:
//!
//! * **Parameters** ([`save_params`] / [`load_params`]) and **curves**
//!   ([`save_curve`] / [`load_curve`]) — plain JSON files for post-hoc analysis.
//! * **Checkpoints** ([`save_checkpoint`] / [`load_checkpoint`]) — the full
//!   [`TrainerState`] manifest a run needs to resume *bit-identically*: policy
//!   parameters, all three optimizers' Adam moments, the trainer RNG position,
//!   the EMA baseline, the CE elite history, the curve so far, and the complete
//!   environment state (noise RNG, placement cache, wall-clock, counters).
//!
//! Every write goes through [`eagle_obs::write_atomic`] (tmp + fsync + rename),
//! so a crash mid-save never corrupts the previous checkpoint.
//!
//! # File format
//!
//! A checkpoint is a JSON header line followed by a JSON payload:
//!
//! ```text
//! {"magic":"eagle-checkpoint","schema_version":1,"checksum":...,"payload_bytes":...}
//! {"samples":120,"minibatches":12,...}
//! ```
//!
//! The header carries a schema version (bumped whenever [`TrainerState`] changes
//! shape) and an FNV-1a 64-bit checksum over the payload bytes. [`load_checkpoint`]
//! verifies magic, version, length, and checksum before decoding, and reports any
//! mismatch as a typed [`CheckpointError`] — never a panic — so callers can decide
//! between "start fresh" (missing file) and "refuse to clobber" (corrupt file).

use std::io;
use std::path::Path;

use eagle_devsim::{EnvSnapshot, EnvState, Placement, RngState};
use eagle_rl::EmaBaseline;
use eagle_tensor::optim::Adam;
use eagle_tensor::Params;

use crate::curve::Curve;
use crate::source::{GraphOrigin, SourceState};

/// First byte sequence of every checkpoint header; identifies the file type.
pub const CHECKPOINT_MAGIC: &str = "eagle-checkpoint";

/// Current checkpoint schema version. Bump whenever [`TrainerState`] (or the
/// types it embeds) changes shape; [`load_checkpoint`] rejects other versions
/// with [`CheckpointError::SchemaVersion`] instead of misdecoding silently.
///
/// v2: multi-graph trainer state — the single `baseline`/`best`/`env` fields
/// became a vector of per-graph [`GraphEntryState`]s, plus the graph-source
/// cursor (`source`), the trainer-level wall-clock (`wall`) and the
/// retired-environment counter snapshot (`retired_snapshot`).
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 2;

/// Conventional checkpoint file name inside a `--checkpoint-dir` directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Why a checkpoint could not be read (or written).
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error (the missing-file case callers usually treat as
    /// "start fresh"; see [`CheckpointError::is_not_found`]).
    Io(io::Error),
    /// The file has no header/payload structure or the header line is not the
    /// expected JSON object.
    Header(String),
    /// The header's schema version does not match this build's.
    SchemaVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// The payload is shorter than the header declares (torn or truncated file).
    Truncated {
        /// Payload bytes the header declares.
        expected: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload bytes do not hash to the header's checksum (bit rot or a
    /// hand-edited file).
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The payload passed integrity checks but is not a valid [`TrainerState`].
    Decode(String),
}

impl CheckpointError {
    /// True when the error is "the file does not exist" — the one failure a
    /// resuming caller should treat as "no checkpoint yet, start fresh" rather
    /// than a corrupt artifact worth aborting over.
    pub fn is_not_found(&self) -> bool {
        matches!(self, CheckpointError::Io(e) if e.kind() == io::ErrorKind::NotFound)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Header(m) => write!(f, "bad checkpoint header: {m}"),
            CheckpointError::SchemaVersion { found, expected } => write!(
                f,
                "checkpoint schema version {found} is not the supported version {expected}"
            ),
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: header declares {expected} payload bytes, found {actual}"
            ),
            CheckpointError::Checksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            CheckpointError::Decode(m) => write!(f, "checkpoint payload did not decode: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One resident graph of the trainer's environment pool, as checkpointed:
/// the graph's origin (rebuildable from the source), its complete environment
/// state, its reward baseline and its best placement.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GraphEntryState {
    /// Source origin the graph is rebuilt from on resume.
    pub origin: GraphOrigin,
    /// Human-readable graph name.
    pub name: String,
    /// Complete environment state: noise-RNG position, counters, simulated
    /// wall-clock, best placement, and the full placement cache in FIFO order.
    pub env: EnvState,
    /// Per-graph EMA reward baseline.
    pub baseline: EmaBaseline,
    /// Best placement sampled on this graph and its measured per-step time.
    pub best: Option<(f64, Placement)>,
    /// Training samples spent on this graph.
    pub graph_samples: u64,
}

/// The complete mutable state of a training run at a minibatch boundary.
///
/// Everything the resumable loop in [`crate::Trainer::train_from`] needs to
/// continue exactly where the interrupted run stopped: restoring this state and
/// re-running produces bit-identical curves, parameters, and best placements to
/// the uninterrupted run (locked by `tests/checkpoint_resume.rs`). The immutable
/// inputs — graph source, machine, agent architecture, [`crate::TrainerConfig`]
/// — are *not* stored; the caller reconstructs those and must pass the same
/// ones.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainerState {
    /// Samples drawn so far.
    pub samples: u64,
    /// Minibatches completed so far.
    pub minibatches: u64,
    /// Invalid (OOM) samples seen so far.
    pub num_invalid: u64,
    /// Samples accumulated since the last cross-entropy update.
    pub since_ce: u64,
    /// Trainer sampling-RNG position.
    pub rng: RngState,
    /// Graph-source cursor position (stream RNG + draw count), so a resumed
    /// multi-graph run continues the *same* graph sequence.
    pub source: SourceState,
    /// Trainer-level simulated wall-clock (the curve's x-axis), summed across
    /// all graphs in episode order.
    pub wall: f64,
    /// Rolling window of sampled action sequences (CE elite pool), oldest first.
    pub history_actions: Vec<Vec<usize>>,
    /// Rewards aligned with `history_actions`.
    pub history_rewards: Vec<f64>,
    /// The training curve so far (its label doubles as the agent identity check
    /// on resume).
    pub curve: Curve,
    /// Policy parameters.
    pub params: Params,
    /// REINFORCE optimizer state (Adam step count + moments).
    pub opt_reinforce: Adam,
    /// PPO optimizer state.
    pub opt_ppo: Adam,
    /// Cross-entropy optimizer state.
    pub opt_ce: Adam,
    /// Resident per-graph pool entries in FIFO (insertion) order — one entry
    /// for single-graph sources.
    pub entries: Vec<GraphEntryState>,
    /// Accumulated counters of environments evicted from the pool, so run
    /// telemetry describes the whole run even after evictions.
    pub retired_snapshot: EnvSnapshot,
    /// Aggregate environment snapshot taken when the run *started* — the
    /// baseline the end-of-run telemetry diff is computed against, carried
    /// across resumes so the final [`eagle_obs::Telemetry`] describes the
    /// whole logical run.
    pub start_snapshot: EnvSnapshot,
}

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty for torn-write detection
/// (this guards against accidents, not adversaries). Public so downstream
/// consumers (the serving policy store) can derive stable content versions
/// with the same hash the checkpoint header uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Header line of the checkpoint file; see the module docs for the format.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Header {
    magic: String,
    schema_version: u64,
    checksum: u64,
    payload_bytes: u64,
}

/// Atomically writes `state` as a versioned, checksummed checkpoint at `path`.
///
/// The write goes through [`eagle_obs::write_atomic`], so a crash mid-save
/// leaves the previous checkpoint (if any) intact.
pub fn save_checkpoint(
    state: &TrainerState,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let payload =
        serde_json::to_string(state).map_err(|e| CheckpointError::Decode(e.to_string()))?;
    let header = Header {
        magic: CHECKPOINT_MAGIC.to_string(),
        schema_version: CHECKPOINT_SCHEMA_VERSION,
        checksum: fnv1a64(payload.as_bytes()),
        payload_bytes: payload.len() as u64,
    };
    let header_json =
        serde_json::to_string(&header).map_err(|e| CheckpointError::Decode(e.to_string()))?;
    let mut bytes = Vec::with_capacity(header_json.len() + 1 + payload.len());
    bytes.extend_from_slice(header_json.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(payload.as_bytes());
    eagle_obs::write_atomic(path, &bytes)?;
    Ok(())
}

/// Reads and verifies a checkpoint written by [`save_checkpoint`].
///
/// Verifies, in order: the header parses and carries the right magic, the
/// schema version matches, the payload length matches the header's declaration
/// (catching truncation), and the FNV-1a checksum matches (catching corruption)
/// — each failure is a distinct [`CheckpointError`] variant, never a panic.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<TrainerState, CheckpointError> {
    let bytes = std::fs::read(path)?;
    let text =
        String::from_utf8(bytes).map_err(|e| CheckpointError::Header(format!("not UTF-8: {e}")))?;
    let Some((header_line, payload)) = text.split_once('\n') else {
        return Err(CheckpointError::Header("missing header/payload separator".into()));
    };
    let header: Header =
        serde_json::from_str(header_line).map_err(|e| CheckpointError::Header(e.to_string()))?;
    if header.magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::Header(format!("unknown magic '{}'", header.magic)));
    }
    if header.schema_version != CHECKPOINT_SCHEMA_VERSION {
        return Err(CheckpointError::SchemaVersion {
            found: header.schema_version,
            expected: CHECKPOINT_SCHEMA_VERSION,
        });
    }
    let actual_len = payload.len() as u64;
    if actual_len < header.payload_bytes {
        return Err(CheckpointError::Truncated {
            expected: header.payload_bytes,
            actual: actual_len,
        });
    }
    if actual_len > header.payload_bytes {
        return Err(CheckpointError::Header(format!(
            "payload has {actual_len} bytes but header declares {}",
            header.payload_bytes
        )));
    }
    let actual = fnv1a64(payload.as_bytes());
    if actual != header.checksum {
        return Err(CheckpointError::Checksum { expected: header.checksum, actual });
    }
    serde_json::from_str(payload).map_err(|e| CheckpointError::Decode(e.to_string()))
}

/// Serializes a parameter store to JSON at `path` (atomic write).
pub fn save_params(params: &Params, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string(params).map_err(io::Error::other)?;
    eagle_obs::write_atomic(path, json.as_bytes())
}

/// Restores a parameter store saved by [`save_params`].
pub fn load_params(path: impl AsRef<Path>) -> io::Result<Params> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Serializes a training curve to JSON at `path` (atomic write).
pub fn save_curve(curve: &Curve, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string(curve).map_err(io::Error::other)?;
    eagle_obs::write_atomic(path, json.as_bytes())
}

/// Restores a curve saved by [`save_curve`].
pub fn load_curve(path: impl AsRef<Path>) -> io::Result<Curve> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{EagleAgent, PlacementAgent};
    use crate::scale::AgentScale;
    use eagle_devsim::{Benchmark, Environment, Machine, MeasureConfig};
    use eagle_rl::StochasticPolicy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eagle-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// A small but fully populated TrainerState for format tests.
    fn sample_state() -> TrainerState {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let mut env = Environment::builder(graph.clone(), machine.clone())
            .measure(MeasureConfig::exact())
            .seed(11)
            .build()
            .unwrap();
        let p = eagle_devsim::predefined::single_gpu(&graph, &machine);
        env.evaluate(&p);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);
        let mut curve = Curve::new("format-test");
        curve.push(1, 0.5, Some(2.0));
        let mut baseline = EmaBaseline::new(0.1);
        baseline.advantage(-1.0);
        TrainerState {
            samples: 1,
            minibatches: 1,
            num_invalid: 0,
            since_ce: 1,
            rng: RngState::capture(&rng),
            source: SourceState::initial(0),
            wall: 0.5,
            history_actions: vec![vec![0, 1, 2]],
            history_rewards: vec![-1.0],
            curve,
            params,
            opt_reinforce: Adam::new(0.01),
            opt_ppo: Adam::new(0.01),
            opt_ce: Adam::new(0.01),
            entries: vec![GraphEntryState {
                origin: GraphOrigin::fixed(),
                name: graph.model_name.clone(),
                env: env.save_state(),
                baseline,
                best: Some((2.0, p)),
                graph_samples: 1,
            }],
            retired_snapshot: EnvSnapshot::default(),
            start_snapshot: EnvSnapshot::default(),
        }
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let state = sample_state();
        let path = tmp("roundtrip.json");
        save_checkpoint(&state, &path).unwrap();
        let restored = load_checkpoint(&path).unwrap();
        assert_eq!(restored.samples, state.samples);
        assert_eq!(restored.rng, state.rng);
        assert_eq!(restored.source, state.source);
        assert_eq!(restored.wall.to_bits(), state.wall.to_bits());
        assert_eq!(restored.history_actions, state.history_actions);
        assert_eq!(restored.history_rewards, state.history_rewards);
        assert_eq!(restored.curve.points, state.curve.points);
        assert_eq!(restored.entries.len(), 1);
        assert_eq!(restored.entries[0].origin, state.entries[0].origin);
        assert_eq!(restored.entries[0].name, state.entries[0].name);
        assert_eq!(restored.entries[0].env, state.entries[0].env);
        assert_eq!(restored.entries[0].baseline, state.entries[0].baseline);
        assert_eq!(restored.entries[0].graph_samples, state.entries[0].graph_samples);
        let (t0, p0) = state.entries[0].best.as_ref().unwrap();
        let (t1, p1) = restored.entries[0].best.as_ref().unwrap();
        assert_eq!(t0.to_bits(), t1.to_bits(), "float fields round-trip bit-exactly");
        assert_eq!(p0, p1);
        assert_eq!(restored.params.num_scalars(), state.params.num_scalars());
    }

    #[test]
    fn corrupted_payload_is_rejected_with_checksum_error() {
        let path = tmp("corrupt.json");
        save_checkpoint(&sample_state(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte safely inside the payload: swap a digit for another digit
        // so lengths are preserved and only the checksum can catch it.
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let target = bytes[nl..]
            .iter()
            .position(|&b| b.is_ascii_digit())
            .map(|i| nl + i)
            .expect("payload contains a digit");
        bytes[target] = if bytes[target] == b'9' { b'8' } else { b'9' };
        std::fs::write(&path, &bytes).unwrap();
        match load_checkpoint(&path) {
            Err(CheckpointError::Checksum { expected, actual }) => assert_ne!(expected, actual),
            other => panic!("expected Checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("truncated.json");
        save_checkpoint(&sample_state(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        match load_checkpoint(&path) {
            Err(CheckpointError::Truncated { expected, actual }) => assert!(actual < expected),
            other => panic!("expected Truncated error, got {other:?}"),
        }
    }

    #[test]
    fn schema_version_skew_is_rejected() {
        let path = tmp("skew.json");
        save_checkpoint(&sample_state(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let skewed = text.replacen(
            &format!("\"schema_version\":{CHECKPOINT_SCHEMA_VERSION}"),
            &format!("\"schema_version\":{}", CHECKPOINT_SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(text, skewed, "header rewrite must hit");
        std::fs::write(&path, skewed).unwrap();
        match load_checkpoint(&path) {
            Err(CheckpointError::SchemaVersion { found, expected }) => {
                assert_eq!(found, CHECKPOINT_SCHEMA_VERSION + 1);
                assert_eq!(expected, CHECKPOINT_SCHEMA_VERSION);
            }
            other => panic!("expected SchemaVersion error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_missing_files_are_typed_not_panics() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not a checkpoint at all").unwrap();
        assert!(matches!(load_checkpoint(&path), Err(CheckpointError::Header(_))));

        let missing = load_checkpoint(tmp("never-written.json")).unwrap_err();
        assert!(missing.is_not_found());
        // ... but a header error is not "not found".
        assert!(!load_checkpoint(&path).unwrap_err().is_not_found());
    }

    #[test]
    fn params_roundtrip_preserves_agent_behaviour() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);

        let path = tmp("params.json");
        save_params(&params, &path).unwrap();
        let restored = load_params(&path).unwrap();
        assert_eq!(restored.len(), params.len());
        assert_eq!(restored.num_scalars(), params.num_scalars());

        // Identical sampling behaviour with identical RNG streams.
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let (a1, lp1) = agent.sample(&params, &mut r1);
        let (a2, lp2) = agent.sample(&restored, &mut r2);
        assert_eq!(a1, a2);
        assert_eq!(lp1, lp2);
        // And identical decoded placements.
        assert_eq!(agent.decode(&params, &a1), agent.decode(&restored, &a2));
    }

    #[test]
    fn curve_roundtrip() {
        let mut curve = Curve::new("roundtrip");
        curve.push(1, 10.0, Some(2.0));
        curve.push(2, 20.0, None);
        let path = tmp("curve.json");
        save_curve(&curve, &path).unwrap();
        let restored = load_curve(&path).unwrap();
        assert_eq!(restored.label, "roundtrip");
        assert_eq!(restored.points, curve.points);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_params(tmp("nope.json")).is_err());
        assert!(load_curve(tmp("nope2.json")).is_err());
    }
}
