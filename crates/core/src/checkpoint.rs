//! Checkpointing: persist and restore agent parameters and training curves.
//!
//! Training against real hardware costs hours (the paper's setting), so being able
//! to stop and resume an agent — or to re-evaluate a trained placement later — is
//! table stakes for a usable system.

use std::io;
use std::path::Path;

use eagle_tensor::Params;

use crate::curve::Curve;

/// Serializes a parameter store to JSON at `path`.
pub fn save_params(params: &Params, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string(params).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Restores a parameter store saved by [`save_params`].
pub fn load_params(path: impl AsRef<Path>) -> io::Result<Params> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Serializes a training curve to JSON at `path`.
pub fn save_curve(curve: &Curve, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string(curve).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Restores a curve saved by [`save_curve`].
pub fn load_curve(path: impl AsRef<Path>) -> io::Result<Curve> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{EagleAgent, PlacementAgent};
    use crate::scale::AgentScale;
    use eagle_devsim::{Benchmark, Machine};
    use eagle_rl::StochasticPolicy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eagle-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn params_roundtrip_preserves_agent_behaviour() {
        let machine = Machine::paper_machine();
        let graph = Benchmark::InceptionV3.graph_for(&machine);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::tiny(), &mut rng);

        let path = tmp("params.json");
        save_params(&params, &path).unwrap();
        let restored = load_params(&path).unwrap();
        assert_eq!(restored.len(), params.len());
        assert_eq!(restored.num_scalars(), params.num_scalars());

        // Identical sampling behaviour with identical RNG streams.
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let (a1, lp1) = agent.sample(&params, &mut r1);
        let (a2, lp2) = agent.sample(&restored, &mut r2);
        assert_eq!(a1, a2);
        assert_eq!(lp1, lp2);
        // And identical decoded placements.
        assert_eq!(agent.decode(&params, &a1), agent.decode(&restored, &a2));
    }

    #[test]
    fn curve_roundtrip() {
        let mut curve = Curve::new("roundtrip");
        curve.push(1, 10.0, Some(2.0));
        curve.push(2, 20.0, None);
        let path = tmp("curve.json");
        save_curve(&curve, &path).unwrap();
        let restored = load_curve(&path).unwrap();
        assert_eq!(restored.label, "roundtrip");
        assert_eq!(restored.points, curve.points);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_params(tmp("nope.json")).is_err());
        assert!(load_curve(tmp("nope2.json")).is_err());
    }
}
